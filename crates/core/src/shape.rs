//! Shapes, column-major strides and index arithmetic.
//!
//! Array items are stored "consecutively in a column-major order commonly
//! used by math libraries written in FORTRAN such as LAPACK" (§3.5): the
//! *first* index varies fastest. All linearization in the crate goes through
//! this module.

use crate::errors::{ArrayError, Result};

/// The shape (per-dimension sizes) of an array.
///
/// Invariants enforced at construction: rank ≥ 1 and every dimension ≥ 1,
/// and the total element count does not overflow `usize`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape, validating the invariants.
    pub fn new(dims: &[usize]) -> Result<Shape> {
        if dims.is_empty() {
            return Err(ArrayError::BadRank {
                rank: 0,
                max: usize::MAX,
            });
        }
        let mut count: usize = 1;
        for (axis, &d) in dims.iter().enumerate() {
            if d == 0 {
                return Err(ArrayError::BadDimension { dim: axis, size: d });
            }
            count = count
                .checked_mul(d)
                .ok_or(ArrayError::BadDimension { dim: axis, size: d })?;
        }
        Ok(Shape {
            dims: dims.to_vec(),
        })
    }

    /// Number of dimensions.
    #[inline]
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// The per-dimension sizes.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Total number of elements (product of the dimensions).
    #[inline]
    pub fn count(&self) -> usize {
        self.dims.iter().product()
    }

    /// Column-major strides, in *elements*: `stride[0] = 1`,
    /// `stride[k] = stride[k-1] * dims[k-1]`.
    pub fn strides(&self) -> Vec<usize> {
        let mut s = Vec::with_capacity(self.dims.len());
        let mut acc = 1usize;
        for &d in &self.dims {
            s.push(acc);
            acc *= d;
        }
        s
    }

    /// Linearizes a multi-index into an element offset, validating rank and
    /// bounds (this is the `Item_N` address computation).
    pub fn linear_index(&self, idx: &[usize]) -> Result<usize> {
        if idx.len() != self.rank() {
            return Err(ArrayError::IndexRankMismatch {
                got: idx.len(),
                rank: self.rank(),
            });
        }
        let mut off = 0usize;
        let mut stride = 1usize;
        for (axis, (&i, &d)) in idx.iter().zip(&self.dims).enumerate() {
            if i >= d {
                return Err(ArrayError::IndexOutOfBounds {
                    axis,
                    index: i,
                    size: d,
                });
            }
            off += i * stride;
            stride *= d;
        }
        Ok(off)
    }

    /// Inverse of [`linear_index`](Self::linear_index): recovers the
    /// multi-index of a linear offset.
    pub fn multi_index(&self, mut linear: usize) -> Vec<usize> {
        assert!(linear < self.count());
        let mut idx = Vec::with_capacity(self.rank());
        for &d in &self.dims {
            idx.push(linear % d);
            linear /= d;
        }
        idx
    }

    /// Validates a rectangular subarray request and returns the shape of the
    /// result (before any squeeze).
    pub fn validate_subarray(&self, offset: &[usize], size: &[usize]) -> Result<Shape> {
        if offset.len() != self.rank() {
            return Err(ArrayError::IndexRankMismatch {
                got: offset.len(),
                rank: self.rank(),
            });
        }
        if size.len() != self.rank() {
            return Err(ArrayError::IndexRankMismatch {
                got: size.len(),
                rank: self.rank(),
            });
        }
        for axis in 0..self.rank() {
            if size[axis] == 0 {
                return Err(ArrayError::BadDimension { dim: axis, size: 0 });
            }
            if offset[axis] + size[axis] > self.dims[axis] {
                return Err(ArrayError::SubarrayOutOfBounds {
                    axis,
                    offset: offset[axis],
                    size: size[axis],
                    dim: self.dims[axis],
                });
            }
        }
        Shape::new(size)
    }

    /// Drops length-1 dimensions (the `Subarray` auto-lowering switch: "the
    /// last parameter specifies whether subarrays with length of one in any
    /// dimension are automatically converted to a lower dimensional array").
    /// A shape that is all ones squeezes to the 1-element vector `[1]`.
    pub fn squeeze(&self) -> Shape {
        let kept: Vec<usize> = self.dims.iter().copied().filter(|&d| d > 1).collect();
        if kept.is_empty() {
            Shape { dims: vec![1] }
        } else {
            Shape { dims: kept }
        }
    }

    /// Iterates over the *runs* of a rectangular region: maximal sequences
    /// of elements contiguous in column-major storage. Each item is
    /// `(start_element_offset_in_self, run_length_in_elements)`.
    ///
    /// A run covers the full extent of axis 0 of the region, plus any
    /// additional leading axes that span their whole parent dimension —
    /// this is what makes page-aligned blob subsetting read long sequential
    /// ranges instead of many small ones.
    pub fn region_runs<'a>(&'a self, offset: &'a [usize], size: &'a [usize]) -> RegionRuns<'a> {
        // Number of leading axes fused into a single contiguous run.
        let mut fused = 1;
        while fused < self.rank() && size[fused - 1] == self.dims[fused - 1] {
            fused += 1;
        }
        let run_len: usize = size[..fused].iter().product();
        let outer_count: usize = size[fused..].iter().product::<usize>().max(1);
        RegionRuns {
            shape: self,
            offset,
            size,
            fused,
            run_len,
            outer_count,
            cursor: 0,
        }
    }
}

/// Iterator returned by [`Shape::region_runs`].
pub struct RegionRuns<'a> {
    shape: &'a Shape,
    offset: &'a [usize],
    size: &'a [usize],
    fused: usize,
    run_len: usize,
    outer_count: usize,
    cursor: usize,
}

impl<'a> Iterator for RegionRuns<'a> {
    type Item = (usize, usize);

    fn next(&mut self) -> Option<(usize, usize)> {
        if self.cursor >= self.outer_count {
            return None;
        }
        // Decompose the cursor into indices over the non-fused axes.
        let mut rem = self.cursor;
        let strides = self.shape.strides();
        let mut start = 0usize;
        // Base offset contributed by the region origin on all axes.
        for (axis, stride) in strides.iter().enumerate() {
            start += self.offset[axis] * stride;
        }
        for (size, stride) in self.size[self.fused..].iter().zip(&strides[self.fused..]) {
            let i = rem % size;
            rem /= size;
            start += i * stride;
        }
        self.cursor += 1;
        Some((start, self.run_len))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.outer_count - self.cursor;
        (left, Some(left))
    }
}

impl<'a> ExactSizeIterator for RegionRuns<'a> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty_and_zero_dims() {
        assert!(Shape::new(&[]).is_err());
        assert!(Shape::new(&[3, 0, 2]).is_err());
        assert!(Shape::new(&[usize::MAX, 2]).is_err());
    }

    #[test]
    fn column_major_strides() {
        let s = Shape::new(&[4, 3, 2]).unwrap();
        assert_eq!(s.strides(), vec![1, 4, 12]);
        assert_eq!(s.count(), 24);
    }

    #[test]
    fn linear_index_is_column_major() {
        // In column-major order, (1, 0) of a 2x2 matrix is the second
        // stored element; (0, 1) is the third.
        let m = Shape::new(&[2, 2]).unwrap();
        assert_eq!(m.linear_index(&[0, 0]).unwrap(), 0);
        assert_eq!(m.linear_index(&[1, 0]).unwrap(), 1);
        assert_eq!(m.linear_index(&[0, 1]).unwrap(), 2);
        assert_eq!(m.linear_index(&[1, 1]).unwrap(), 3);
    }

    #[test]
    fn linear_and_multi_index_are_inverse() {
        let s = Shape::new(&[3, 4, 5]).unwrap();
        for lin in 0..s.count() {
            let idx = s.multi_index(lin);
            assert_eq!(s.linear_index(&idx).unwrap(), lin);
        }
    }

    #[test]
    fn index_errors() {
        let s = Shape::new(&[2, 3]).unwrap();
        assert!(matches!(
            s.linear_index(&[0]),
            Err(ArrayError::IndexRankMismatch { got: 1, rank: 2 })
        ));
        assert!(matches!(
            s.linear_index(&[2, 0]),
            Err(ArrayError::IndexOutOfBounds { axis: 0, .. })
        ));
        assert!(matches!(
            s.linear_index(&[0, 3]),
            Err(ArrayError::IndexOutOfBounds { axis: 1, .. })
        ));
    }

    #[test]
    fn subarray_validation() {
        let s = Shape::new(&[10, 10]).unwrap();
        let sub = s.validate_subarray(&[2, 3], &[4, 5]).unwrap();
        assert_eq!(sub.dims(), &[4, 5]);
        assert!(s.validate_subarray(&[8, 0], &[4, 1]).is_err());
        assert!(s.validate_subarray(&[0, 0], &[0, 1]).is_err());
        assert!(s.validate_subarray(&[0], &[1, 1]).is_err());
    }

    #[test]
    fn squeeze_drops_unit_dims() {
        assert_eq!(Shape::new(&[1, 5, 1, 3]).unwrap().squeeze().dims(), &[5, 3]);
        assert_eq!(Shape::new(&[1, 1]).unwrap().squeeze().dims(), &[1]);
        assert_eq!(Shape::new(&[4]).unwrap().squeeze().dims(), &[4]);
    }

    #[test]
    fn region_runs_cover_region_exactly() {
        let s = Shape::new(&[4, 3, 2]).unwrap();
        let offset = [1, 0, 0];
        let size = [2, 2, 2];
        let mut touched = vec![];
        for (start, len) in s.region_runs(&offset, &size) {
            for e in start..start + len {
                touched.push(e);
            }
        }
        // Reference: enumerate the region elementwise.
        let mut expected = vec![];
        for k in 0..2 {
            for j in 0..2 {
                for i in 0..2 {
                    expected.push(s.linear_index(&[1 + i, j, k]).unwrap());
                }
            }
        }
        touched.sort_unstable();
        expected.sort_unstable();
        assert_eq!(touched, expected);
    }

    #[test]
    fn region_runs_fuse_full_leading_axes() {
        // Region spans all of axis 0 and axis 1, so the axis-2 slab
        // [1, 3) is a single contiguous byte range.
        let s = Shape::new(&[4, 3, 5]).unwrap();
        let runs: Vec<_> = s.region_runs(&[0, 0, 1], &[4, 3, 2]).collect();
        assert_eq!(runs, vec![(12, 24)]);

        // A partial axis 1 can still fuse with a full axis 0 (one slab per
        // axis-2 index), but no further.
        let runs: Vec<_> = s.region_runs(&[0, 1, 0], &[4, 2, 2]).collect();
        assert_eq!(runs, vec![(4, 8), (16, 8)]);

        // A partial axis 0 forbids all fusion: one run per (j, k) pair.
        let runs: Vec<_> = s.region_runs(&[1, 0, 0], &[2, 2, 2]).collect();
        assert_eq!(runs, vec![(1, 2), (5, 2), (13, 2), (17, 2)]);
    }

    #[test]
    fn region_runs_single_full_array_is_one_run() {
        let s = Shape::new(&[4, 3, 5]).unwrap();
        let runs: Vec<_> = s.region_runs(&[0, 0, 0], &[4, 3, 5]).collect();
        assert_eq!(runs, vec![(0, 60)]);
    }

    #[test]
    fn region_runs_1d() {
        let s = Shape::new(&[10]).unwrap();
        let runs: Vec<_> = s.region_runs(&[3], &[4]).collect();
        assert_eq!(runs, vec![(3, 4)]);
    }
}
