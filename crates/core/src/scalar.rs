//! Dynamically typed scalar values and the numeric conversion lattice.
//!
//! T-SQL callers see array items as SQL scalars of whatever base type the
//! array carries; `Scalar` is the Rust-side equivalent used by the dynamic
//! (non-generic) API and by the query engine's `Value` bridge.

use crate::complex::{Complex32, Complex64};
use crate::element::{Element, ElementType};
use crate::errors::{ArrayError, Result};
use std::fmt;

/// A single array element of any supported base type.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scalar {
    /// 8-bit signed integer.
    I8(i8),
    /// 16-bit signed integer.
    I16(i16),
    /// 32-bit signed integer.
    I32(i32),
    /// 64-bit signed integer.
    I64(i64),
    /// Single-precision float.
    F32(f32),
    /// Double-precision float.
    F64(f64),
    /// Single-precision complex.
    C32(Complex32),
    /// Double-precision complex.
    C64(Complex64),
}

impl Scalar {
    /// The element type of this value.
    pub fn element_type(&self) -> ElementType {
        match self {
            Scalar::I8(_) => ElementType::Int8,
            Scalar::I16(_) => ElementType::Int16,
            Scalar::I32(_) => ElementType::Int32,
            Scalar::I64(_) => ElementType::Int64,
            Scalar::F32(_) => ElementType::Float32,
            Scalar::F64(_) => ElementType::Float64,
            Scalar::C32(_) => ElementType::Complex32,
            Scalar::C64(_) => ElementType::Complex64,
        }
    }

    /// A zero of the given type.
    pub fn zero(t: ElementType) -> Scalar {
        match t {
            ElementType::Int8 => Scalar::I8(0),
            ElementType::Int16 => Scalar::I16(0),
            ElementType::Int32 => Scalar::I32(0),
            ElementType::Int64 => Scalar::I64(0),
            ElementType::Float32 => Scalar::F32(0.0),
            ElementType::Float64 => Scalar::F64(0.0),
            ElementType::Complex32 => Scalar::C32(Complex32::ZERO),
            ElementType::Complex64 => Scalar::C64(Complex64::ZERO),
        }
    }

    /// Real-number view. Integers and floats always succeed; complex values
    /// succeed only with a zero imaginary part.
    pub fn as_f64(&self) -> Result<f64> {
        let v = match *self {
            Scalar::I8(v) => Some(v as f64),
            Scalar::I16(v) => Some(v as f64),
            Scalar::I32(v) => Some(v as f64),
            Scalar::I64(v) => Some(v as f64),
            Scalar::F32(v) => Some(v as f64),
            Scalar::F64(v) => Some(v),
            Scalar::C32(v) => v.to_f64_checked(),
            Scalar::C64(v) => v.to_f64_checked(),
        };
        v.ok_or(ArrayError::BadConversion {
            from: self.element_type(),
            to: ElementType::Float64,
        })
    }

    /// Complex view; real values are widened with a zero imaginary part.
    pub fn as_c64(&self) -> Complex64 {
        match *self {
            Scalar::C32(v) => Complex64::from_c32(v),
            Scalar::C64(v) => v,
            ref real => Complex64::new(
                // lint:allow(L005, reason = "the C32/C64 arms above are the only variants for which as_f64 errors; this arm only sees real scalars")
                real.as_f64().expect("non-complex scalars are always real"),
                0.0,
            ),
        }
    }

    /// Converts to another element type following SQL CAST semantics for
    /// numeric types: float→int truncates toward zero, int→float may round,
    /// real→complex widens with zero imaginary part, complex→real requires
    /// a zero imaginary part.
    pub fn cast_to(&self, target: ElementType) -> Result<Scalar> {
        if self.element_type() == target {
            return Ok(*self);
        }
        let fail = || ArrayError::BadConversion {
            from: self.element_type(),
            to: target,
        };
        match target {
            ElementType::Complex32 => Ok(Scalar::C32(Complex32::from_c64(self.as_c64()))),
            ElementType::Complex64 => Ok(Scalar::C64(self.as_c64())),
            _ => {
                let v = self.as_f64().map_err(|_| fail())?;
                Ok(match target {
                    ElementType::Int8 => Scalar::I8(v as i8),
                    ElementType::Int16 => Scalar::I16(v as i16),
                    ElementType::Int32 => Scalar::I32(v as i32),
                    ElementType::Int64 => Scalar::I64(v as i64),
                    ElementType::Float32 => Scalar::F32(v as f32),
                    ElementType::Float64 => Scalar::F64(v),
                    ElementType::Complex32 | ElementType::Complex64 => unreachable!(),
                })
            }
        }
    }

    /// Extracts a concrete `T`, failing on a type mismatch. This is the
    /// runtime check the paper performs when a blob is handed to a function
    /// of the wrong schema.
    pub fn get<T: Element>(&self) -> Result<T> {
        if self.element_type() != T::TYPE {
            return Err(ArrayError::TypeMismatch {
                expected: T::TYPE,
                got: self.element_type(),
            });
        }
        let mut buf = [0u8; 16];
        self.write_le(&mut buf);
        Ok(T::read_le(&buf))
    }

    /// Serializes into the scalar's on-disk form (`element_type().size()`
    /// bytes).
    pub fn write_le(&self, out: &mut [u8]) {
        match *self {
            Scalar::I8(v) => v.write_le(out),
            Scalar::I16(v) => v.write_le(out),
            Scalar::I32(v) => v.write_le(out),
            Scalar::I64(v) => v.write_le(out),
            Scalar::F32(v) => v.write_le(out),
            Scalar::F64(v) => v.write_le(out),
            Scalar::C32(v) => v.write_le(out),
            Scalar::C64(v) => v.write_le(out),
        }
    }

    /// Deserializes a scalar of type `t` from its on-disk form.
    pub fn read_le(t: ElementType, buf: &[u8]) -> Scalar {
        match t {
            ElementType::Int8 => Scalar::I8(i8::read_le(buf)),
            ElementType::Int16 => Scalar::I16(i16::read_le(buf)),
            ElementType::Int32 => Scalar::I32(i32::read_le(buf)),
            ElementType::Int64 => Scalar::I64(i64::read_le(buf)),
            ElementType::Float32 => Scalar::F32(f32::read_le(buf)),
            ElementType::Float64 => Scalar::F64(f64::read_le(buf)),
            ElementType::Complex32 => Scalar::C32(Complex32::read_le(buf)),
            ElementType::Complex64 => Scalar::C64(Complex64::read_le(buf)),
        }
    }

    /// Parses a scalar of type `t` from its textual form.
    pub fn parse(t: ElementType, s: &str) -> Result<Scalar> {
        let s = s.trim();
        let bad = |msg: &str| ArrayError::Parse(format!("`{s}`: {msg}"));
        Ok(match t {
            ElementType::Int8 => Scalar::I8(s.parse().map_err(|_| bad("not an int8"))?),
            ElementType::Int16 => Scalar::I16(s.parse().map_err(|_| bad("not an int16"))?),
            ElementType::Int32 => Scalar::I32(s.parse().map_err(|_| bad("not an int32"))?),
            ElementType::Int64 => Scalar::I64(s.parse().map_err(|_| bad("not an int64"))?),
            ElementType::Float32 => Scalar::F32(s.parse().map_err(|_| bad("not a float32"))?),
            ElementType::Float64 => Scalar::F64(s.parse().map_err(|_| bad("not a float64"))?),
            ElementType::Complex32 => {
                let c = parse_complex(s).ok_or_else(|| bad("not a complex number"))?;
                Scalar::C32(Complex32::from_c64(c))
            }
            ElementType::Complex64 => {
                Scalar::C64(parse_complex(s).ok_or_else(|| bad("not a complex number"))?)
            }
        })
    }
}

/// Parses `a`, `bi`, or `a+bi` / `a-bi` forms.
fn parse_complex(s: &str) -> Option<Complex64> {
    let s = s.trim();
    if let Some(stripped) = s.strip_suffix('i') {
        // Either a pure imaginary `bi` or a full `a±bi`.
        // Find the split sign that is not the leading sign and not part of
        // an exponent (`e+`, `e-`).
        let bytes = stripped.as_bytes();
        let mut split = None;
        for (i, &b) in bytes.iter().enumerate().skip(1) {
            if (b == b'+' || b == b'-') && !matches!(bytes[i - 1], b'e' | b'E') {
                split = Some(i);
            }
        }
        match split {
            Some(i) => {
                let re: f64 = stripped[..i].trim().parse().ok()?;
                let im_str = stripped[i..].trim();
                let im: f64 = if im_str == "+" {
                    1.0
                } else if im_str == "-" {
                    -1.0
                } else {
                    im_str.parse().ok()?
                };
                Some(Complex64::new(re, im))
            }
            None => {
                let im: f64 = if stripped.is_empty() {
                    1.0
                } else if stripped == "-" {
                    -1.0
                } else {
                    stripped.trim().parse().ok()?
                };
                Some(Complex64::new(0.0, im))
            }
        }
    } else {
        s.parse().ok().map(|re| Complex64::new(re, 0.0))
    }
}

impl fmt::Display for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scalar::I8(v) => write!(f, "{v}"),
            Scalar::I16(v) => write!(f, "{v}"),
            Scalar::I32(v) => write!(f, "{v}"),
            Scalar::I64(v) => write!(f, "{v}"),
            Scalar::F32(v) => write!(f, "{v}"),
            Scalar::F64(v) => write!(f, "{v}"),
            Scalar::C32(v) => write!(f, "{v}"),
            Scalar::C64(v) => write!(f, "{v}"),
        }
    }
}

macro_rules! scalar_from {
    ($t:ty, $variant:ident) => {
        impl From<$t> for Scalar {
            fn from(v: $t) -> Scalar {
                Scalar::$variant(v)
            }
        }
    };
}

scalar_from!(i8, I8);
scalar_from!(i16, I16);
scalar_from!(i32, I32);
scalar_from!(i64, I64);
scalar_from!(f32, F32);
scalar_from!(f64, F64);
scalar_from!(Complex32, C32);
scalar_from!(Complex64, C64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn element_type_tags() {
        assert_eq!(Scalar::I8(1).element_type(), ElementType::Int8);
        assert_eq!(Scalar::F64(1.0).element_type(), ElementType::Float64);
        assert_eq!(
            Scalar::C64(Complex64::I).element_type(),
            ElementType::Complex64
        );
    }

    #[test]
    fn as_f64_for_real_types() {
        assert_eq!(Scalar::I16(-7).as_f64().unwrap(), -7.0);
        assert_eq!(Scalar::F32(1.5).as_f64().unwrap(), 1.5);
        assert_eq!(Scalar::C64(Complex64::new(2.0, 0.0)).as_f64().unwrap(), 2.0);
        assert!(Scalar::C64(Complex64::new(2.0, 1.0)).as_f64().is_err());
    }

    #[test]
    fn cast_truncates_float_to_int() {
        assert_eq!(
            Scalar::F64(3.9).cast_to(ElementType::Int32).unwrap(),
            Scalar::I32(3)
        );
        assert_eq!(
            Scalar::F64(-3.9).cast_to(ElementType::Int32).unwrap(),
            Scalar::I32(-3)
        );
    }

    #[test]
    fn cast_widens_to_complex() {
        assert_eq!(
            Scalar::I32(4).cast_to(ElementType::Complex64).unwrap(),
            Scalar::C64(Complex64::new(4.0, 0.0))
        );
    }

    #[test]
    fn cast_complex_to_real_requires_zero_im() {
        let ok = Scalar::C64(Complex64::new(5.0, 0.0));
        assert_eq!(ok.cast_to(ElementType::Float64).unwrap(), Scalar::F64(5.0));
        let bad = Scalar::C64(Complex64::new(5.0, 1.0));
        assert!(matches!(
            bad.cast_to(ElementType::Float64),
            Err(ArrayError::BadConversion { .. })
        ));
    }

    #[test]
    fn get_checks_type() {
        let s = Scalar::F64(2.5);
        assert_eq!(s.get::<f64>().unwrap(), 2.5);
        assert!(matches!(
            s.get::<i32>(),
            Err(ArrayError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn read_write_round_trip_all_types() {
        let values = [
            Scalar::I8(-5),
            Scalar::I16(300),
            Scalar::I32(-70000),
            Scalar::I64(1 << 40),
            Scalar::F32(0.25),
            Scalar::F64(-1e100),
            Scalar::C32(Complex32::new(1.0, -1.0)),
            Scalar::C64(Complex64::new(-2.5, 3.5)),
        ];
        for v in values {
            let mut buf = [0u8; 16];
            v.write_le(&mut buf);
            assert_eq!(Scalar::read_le(v.element_type(), &buf), v);
        }
    }

    #[test]
    fn parse_real_scalars() {
        assert_eq!(
            Scalar::parse(ElementType::Int32, " 42 ").unwrap(),
            Scalar::I32(42)
        );
        assert_eq!(
            Scalar::parse(ElementType::Float64, "-1.5e3").unwrap(),
            Scalar::F64(-1500.0)
        );
        assert!(Scalar::parse(ElementType::Int8, "1.5").is_err());
    }

    #[test]
    fn parse_complex_forms() {
        let c = |s: &str| Scalar::parse(ElementType::Complex64, s).unwrap();
        assert_eq!(c("3"), Scalar::C64(Complex64::new(3.0, 0.0)));
        assert_eq!(c("2i"), Scalar::C64(Complex64::new(0.0, 2.0)));
        assert_eq!(c("i"), Scalar::C64(Complex64::new(0.0, 1.0)));
        assert_eq!(c("-i"), Scalar::C64(Complex64::new(0.0, -1.0)));
        assert_eq!(c("1+2i"), Scalar::C64(Complex64::new(1.0, 2.0)));
        assert_eq!(c("1.5-0.5i"), Scalar::C64(Complex64::new(1.5, -0.5)));
        assert_eq!(c("1e2+3e-1i"), Scalar::C64(Complex64::new(100.0, 0.3)));
        assert!(Scalar::parse(ElementType::Complex64, "foo").is_err());
    }

    #[test]
    fn display_round_trips_through_parse() {
        let vals = [
            Scalar::I64(-12),
            Scalar::F64(2.5),
            Scalar::C64(Complex64::new(1.0, -2.0)),
        ];
        for v in vals {
            let s = v.to_string();
            let back = Scalar::parse(v.element_type(), &s).unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn from_impls() {
        assert_eq!(Scalar::from(1i8), Scalar::I8(1));
        assert_eq!(Scalar::from(2.0f64), Scalar::F64(2.0));
        assert_eq!(
            Scalar::from(Complex64::new(1.0, 1.0)),
            Scalar::C64(Complex64::new(1.0, 1.0))
        );
    }
}
