//! Complex scalar types.
//!
//! The paper adds "support for float and double complex numbers" because the
//! main application of the library is scientific data (§3.4); scalar complex
//! numbers were implemented as SQL Server UDTs. Here they are plain `Copy`
//! structs with the usual field arithmetic.

use std::fmt;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

macro_rules! complex_impl {
    ($name:ident, $t:ty, $doc:expr) => {
        #[doc = $doc]
        #[derive(Debug, Clone, Copy, PartialEq, Default)]
        pub struct $name {
            /// Real part.
            pub re: $t,
            /// Imaginary part.
            pub im: $t,
        }

        impl $name {
            /// Creates a complex number from its real and imaginary parts.
            #[inline]
            pub const fn new(re: $t, im: $t) -> Self {
                Self { re, im }
            }

            /// The additive identity.
            pub const ZERO: Self = Self::new(0.0, 0.0);
            /// The multiplicative identity.
            pub const ONE: Self = Self::new(1.0, 0.0);
            /// The imaginary unit.
            pub const I: Self = Self::new(0.0, 1.0);

            /// Complex conjugate.
            #[inline]
            pub fn conj(self) -> Self {
                Self::new(self.re, -self.im)
            }

            /// Squared modulus `re² + im²`.
            #[inline]
            pub fn norm_sqr(self) -> $t {
                self.re * self.re + self.im * self.im
            }

            /// Modulus (absolute value).
            #[inline]
            pub fn abs(self) -> $t {
                self.re.hypot(self.im)
            }

            /// Argument (phase angle) in radians.
            #[inline]
            pub fn arg(self) -> $t {
                self.im.atan2(self.re)
            }

            /// `e^{iθ}` on the unit circle; the workhorse of FFT twiddles.
            #[inline]
            pub fn cis(theta: $t) -> Self {
                Self::new(theta.cos(), theta.sin())
            }

            /// Multiplicative inverse. Returns NaN components for zero input.
            #[inline]
            pub fn recip(self) -> Self {
                let d = self.norm_sqr();
                Self::new(self.re / d, -self.im / d)
            }

            /// Scales both components by a real factor.
            #[inline]
            pub fn scale(self, k: $t) -> Self {
                Self::new(self.re * k, self.im * k)
            }

            /// True if either component is NaN.
            #[inline]
            pub fn is_nan(self) -> bool {
                self.re.is_nan() || self.im.is_nan()
            }

            /// True if both components are finite.
            #[inline]
            pub fn is_finite(self) -> bool {
                self.re.is_finite() && self.im.is_finite()
            }
        }

        impl From<$t> for $name {
            #[inline]
            fn from(re: $t) -> Self {
                Self::new(re, 0.0)
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, o: Self) -> Self {
                Self::new(self.re + o.re, self.im + o.im)
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, o: Self) -> Self {
                Self::new(self.re - o.re, self.im - o.im)
            }
        }

        impl Mul for $name {
            type Output = Self;
            #[inline]
            fn mul(self, o: Self) -> Self {
                Self::new(
                    self.re * o.re - self.im * o.im,
                    self.re * o.im + self.im * o.re,
                )
            }
        }

        impl Div for $name {
            type Output = Self;
            #[inline]
            #[allow(clippy::suspicious_arithmetic_impl)] // z/w = z * w⁻¹
            fn div(self, o: Self) -> Self {
                self * o.recip()
            }
        }

        impl Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self::new(-self.re, -self.im)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, o: Self) {
                *self = *self + o;
            }
        }
        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, o: Self) {
                *self = *self - o;
            }
        }
        impl MulAssign for $name {
            #[inline]
            fn mul_assign(&mut self, o: Self) {
                *self = *self * o;
            }
        }
        impl DivAssign for $name {
            #[inline]
            fn div_assign(&mut self, o: Self) {
                *self = *self / o;
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                if self.im < 0.0 {
                    write!(f, "{}{}i", self.re, self.im)
                } else {
                    write!(f, "{}+{}i", self.re, self.im)
                }
            }
        }
    };
}

complex_impl!(
    Complex32,
    f32,
    "Single-precision complex number (the SQL `complex` UDT over `real`)."
);
complex_impl!(
    Complex64,
    f64,
    "Double-precision complex number (the SQL `complex` UDT over `float`)."
);

impl Complex64 {
    /// Widens from single precision.
    #[inline]
    pub fn from_c32(c: Complex32) -> Self {
        Self::new(c.re as f64, c.im as f64)
    }
}

impl Complex32 {
    /// Narrows from double precision (lossy).
    #[inline]
    pub fn from_c64(c: Complex64) -> Self {
        Self::new(c.re as f32, c.im as f32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Complex64::new(1.5, -2.0);
        let b = Complex64::new(-0.5, 4.0);
        let c = a + b - b;
        assert!(close(c.re, a.re) && close(c.im, a.im));
    }

    #[test]
    fn multiplication_matches_definition() {
        // (1+2i)(3+4i) = 3+4i+6i+8i^2 = -5+10i
        let p = Complex64::new(1.0, 2.0) * Complex64::new(3.0, 4.0);
        assert!(close(p.re, -5.0) && close(p.im, 10.0));
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex64::new(2.0, -3.0);
        let b = Complex64::new(0.5, 1.5);
        let q = (a * b) / b;
        assert!(close(q.re, a.re) && close(q.im, a.im));
    }

    #[test]
    fn conj_and_norm() {
        let a = Complex64::new(3.0, 4.0);
        assert!(close(a.abs(), 5.0));
        assert!(close(a.norm_sqr(), 25.0));
        let c = a * a.conj();
        assert!(close(c.re, 25.0) && close(c.im, 0.0));
    }

    #[test]
    fn cis_lands_on_unit_circle() {
        for k in 0..16 {
            let theta = k as f64 * std::f64::consts::PI / 8.0;
            let z = Complex64::cis(theta);
            assert!(close(z.abs(), 1.0));
            assert!(close(
                z.arg().rem_euclid(2.0 * std::f64::consts::PI),
                theta.rem_euclid(2.0 * std::f64::consts::PI)
            ));
        }
    }

    #[test]
    fn i_squares_to_minus_one() {
        let m = Complex64::I * Complex64::I;
        assert!(close(m.re, -1.0) && close(m.im, 0.0));
    }

    #[test]
    fn single_precision_arithmetic() {
        let p = Complex32::new(1.0, 1.0) * Complex32::new(1.0, -1.0);
        assert_eq!(p, Complex32::new(2.0, 0.0));
        assert_eq!(
            Complex32::from_c64(Complex64::new(1.0, 2.0)),
            Complex32::new(1.0, 2.0)
        );
        assert_eq!(
            Complex64::from_c32(Complex32::new(1.0, 2.0)),
            Complex64::new(1.0, 2.0)
        );
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex64::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Complex64::new(1.0, -2.0).to_string(), "1-2i");
    }

    #[test]
    fn recip_of_zero_is_nan() {
        assert!(Complex64::ZERO.recip().is_nan());
        assert!(Complex64::ONE.is_finite());
    }
}
