//! Whole-array aggregates.
//!
//! The requirements list a "simple T-SQL interface to perform various
//! aggregate operations over arrays". Real-valued summations accumulate in
//! [`ExactSum`] — the same order-independent, exactly rounded accumulator
//! behind the engine's parallel `SUM`/`AVG` — so `agg::sum` over an array
//! equals a parallel `SUM` over the same values bit for bit, regardless of
//! element order or partitioning. `sum`/`mean` also work on complex arrays
//! (accumulating componentwise), while order statistics (`min`/`max`) are
//! defined only for real element types.

use crate::array::SqlArray;
use crate::complex::Complex64;
use crate::element::ElementType;
use crate::errors::{ArrayError, Result};
use crate::exact::ExactSum;
use crate::scalar::Scalar;

/// Sum of all elements. Complex arrays return a complex sum; real arrays a
/// double. Real (and complex-component) accumulation is exactly rounded.
pub fn sum(a: &SqlArray) -> Result<Scalar> {
    if a.elem().is_complex() {
        let mut re = ExactSum::new();
        let mut im = ExactSum::new();
        for s in a.iter_scalars() {
            let c = s.as_c64();
            re.add(c.re);
            im.add(c.im);
        }
        Ok(Scalar::C64(Complex64::new(re.value(), im.value())))
    } else {
        let mut acc = ExactSum::new();
        for s in a.iter_scalars() {
            acc.add(s.as_f64()?);
        }
        Ok(Scalar::F64(acc.value()))
    }
}

/// Arithmetic mean of all elements.
pub fn mean(a: &SqlArray) -> Result<Scalar> {
    let n = a.count() as f64;
    match sum(a)? {
        Scalar::F64(s) => Ok(Scalar::F64(s / n)),
        Scalar::C64(s) => Ok(Scalar::C64(s.scale(1.0 / n))),
        _ => unreachable!("sum returns F64 or C64"),
    }
}

/// Product of all elements (real types only).
pub fn product(a: &SqlArray) -> Result<Scalar> {
    require_real(a)?;
    let mut acc = 1.0f64;
    for s in a.iter_scalars() {
        acc *= s.as_f64()?;
    }
    Ok(Scalar::F64(acc))
}

/// Minimum element (real types only).
pub fn min(a: &SqlArray) -> Result<Scalar> {
    fold_real(a, f64::INFINITY, |acc, v| acc.min(v))
}

/// Maximum element (real types only).
pub fn max(a: &SqlArray) -> Result<Scalar> {
    fold_real(a, f64::NEG_INFINITY, |acc, v| acc.max(v))
}

/// Population standard deviation (real types only). Computed with the
/// two-pass algorithm, both passes exactly rounded.
pub fn stddev(a: &SqlArray) -> Result<Scalar> {
    require_real(a)?;
    let n = a.count() as f64;
    let mu = mean(a)?.as_f64()?;
    let mut acc = ExactSum::new();
    for s in a.iter_scalars() {
        let d = s.as_f64()? - mu;
        acc.add(d * d);
    }
    Ok(Scalar::F64((acc.value() / n).sqrt()))
}

/// Number of non-zero elements (all types; complex counts non-zero modulus).
pub fn count_nonzero(a: &SqlArray) -> usize {
    a.iter_scalars()
        .filter(|s| match s {
            Scalar::C32(c) => c.re != 0.0 || c.im != 0.0,
            Scalar::C64(c) => c.re != 0.0 || c.im != 0.0,
            other => other.as_f64().map(|v| v != 0.0).unwrap_or(true),
        })
        .count()
}

/// Euclidean (L2) norm. Complex arrays use the modulus of each element.
/// The sum of squares is exactly rounded before the square root.
pub fn norm2(a: &SqlArray) -> Result<f64> {
    let mut acc = ExactSum::new();
    for s in a.iter_scalars() {
        match s {
            Scalar::C32(c) => acc.add(c.norm_sqr() as f64),
            Scalar::C64(c) => acc.add(c.norm_sqr()),
            other => {
                let v = other.as_f64()?;
                acc.add(v * v);
            }
        }
    }
    Ok(acc.value().sqrt())
}

fn require_real(a: &SqlArray) -> Result<()> {
    if a.elem().is_complex() {
        return Err(ArrayError::BadConversion {
            from: a.elem(),
            to: ElementType::Float64,
        });
    }
    Ok(())
}

/// Order-statistic fold (`min`/`max`). Unlike the summations above it
/// carries no rounding — `min`/`max` over `f64` views are exact by
/// construction — so a plain fold is already order-independent here.
fn fold_real(a: &SqlArray, init: f64, f: impl Fn(f64, f64) -> f64) -> Result<Scalar> {
    require_real(a)?;
    let mut acc = init;
    for s in a.iter_scalars() {
        acc = f(acc, s.as_f64()?);
    }
    Ok(Scalar::F64(acc))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::short_vector;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn sum_mean_product() {
        let a = short_vector(&[1.0f64, 2.0, 3.0, 4.0]).unwrap();
        assert!(close(sum(&a).unwrap().as_f64().unwrap(), 10.0));
        assert!(close(mean(&a).unwrap().as_f64().unwrap(), 2.5));
        assert!(close(product(&a).unwrap().as_f64().unwrap(), 24.0));
    }

    #[test]
    fn sum_is_exactly_rounded_and_order_independent() {
        // A cancellation pattern a naive fold loses in one direction —
        // the same contract the engine's parallel SUM makes.
        let xs = [1e100, 1.0, -1e100, 1e-30];
        let fwd = short_vector(&xs).unwrap();
        let rev: Vec<f64> = xs.iter().rev().copied().collect();
        let bwd = short_vector(&rev).unwrap();
        assert_eq!(sum(&fwd).unwrap(), sum(&bwd).unwrap());
        assert_eq!(sum(&fwd).unwrap(), Scalar::F64(1.0 + 1e-30));
    }

    #[test]
    fn integer_arrays_aggregate_as_doubles() {
        let a = short_vector(&[1i16, 2, 3]).unwrap();
        assert_eq!(sum(&a).unwrap(), Scalar::F64(6.0));
    }

    #[test]
    fn min_max() {
        let a = short_vector(&[3.0f32, -1.0, 2.0]).unwrap();
        assert_eq!(min(&a).unwrap(), Scalar::F64(-1.0));
        assert_eq!(max(&a).unwrap(), Scalar::F64(3.0));
    }

    #[test]
    fn stddev_two_pass() {
        let a = short_vector(&[2.0f64, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!(close(stddev(&a).unwrap().as_f64().unwrap(), 2.0));
    }

    #[test]
    fn complex_sum_and_mean() {
        let a = short_vector(&[Complex64::new(1.0, 2.0), Complex64::new(3.0, -1.0)]).unwrap();
        assert_eq!(sum(&a).unwrap(), Scalar::C64(Complex64::new(4.0, 1.0)));
        assert_eq!(mean(&a).unwrap(), Scalar::C64(Complex64::new(2.0, 0.5)));
    }

    #[test]
    fn order_stats_reject_complex() {
        let a = short_vector(&[Complex64::ONE]).unwrap();
        assert!(min(&a).is_err());
        assert!(max(&a).is_err());
        assert!(stddev(&a).is_err());
        assert!(product(&a).is_err());
    }

    #[test]
    fn norm_and_nonzero() {
        let a = short_vector(&[3.0f64, 0.0, 4.0]).unwrap();
        assert!(close(norm2(&a).unwrap(), 5.0));
        assert_eq!(count_nonzero(&a), 2);
        let c = short_vector(&[Complex64::new(0.0, 0.0), Complex64::new(0.0, 2.0)]).unwrap();
        assert_eq!(count_nonzero(&c), 1);
        assert!(close(norm2(&c).unwrap(), 2.0));
    }

    #[test]
    fn aggregates_over_matrices() {
        let m = crate::build::matrix(
            crate::header::StorageClass::Short,
            2,
            2,
            &[1.0f64, 2.0, 3.0, 4.0],
        )
        .unwrap();
        assert!(close(sum(&m).unwrap().as_f64().unwrap(), 10.0));
    }
}
