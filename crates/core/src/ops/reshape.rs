//! Dimension recasting (`Reshape`).
//!
//! "The Reshape function is used to resize the array dimensions without
//! reordering the array elements (original and target sizes must not
//! differ)." (§5.1) — a header-only rewrite; the payload is untouched.

use crate::array::SqlArray;
use crate::errors::{ArrayError, Result};
use crate::header::Header;
use crate::shape::Shape;

/// Returns a copy of `a` with the new dimensions. The element count must be
/// preserved; the payload bytes are identical.
pub fn reshape(a: &SqlArray, new_dims: &[usize]) -> Result<SqlArray> {
    let new_shape = Shape::new(new_dims)?;
    if new_shape.count() != a.count() {
        return Err(ArrayError::ReshapeCountMismatch {
            from: a.count(),
            to: new_shape.count(),
        });
    }
    let header = Header::new(a.class(), a.elem(), new_shape)?;
    let mut out = vec![0u8; header.blob_len()];
    header.encode(&mut out);
    let hlen = header.header_len();
    out[hlen..].copy_from_slice(a.payload());
    SqlArray::from_blob(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::Scalar;

    #[test]
    fn reshape_preserves_storage_order() {
        let v = crate::build::short_vector(&[1.0f64, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let m = reshape(&v, &[2, 3]).unwrap();
        assert_eq!(m.dims(), &[2, 3]);
        // Column-major: first column is the first two stored elements.
        assert_eq!(m.item(&[0, 0]).unwrap(), Scalar::F64(1.0));
        assert_eq!(m.item(&[1, 0]).unwrap(), Scalar::F64(2.0));
        assert_eq!(m.item(&[0, 1]).unwrap(), Scalar::F64(3.0));
        assert_eq!(m.payload(), v.payload());
    }

    #[test]
    fn reshape_rejects_count_change() {
        let v = crate::build::short_vector(&[1i32, 2, 3]).unwrap();
        assert!(matches!(
            reshape(&v, &[2, 2]),
            Err(ArrayError::ReshapeCountMismatch { from: 3, to: 4 })
        ));
    }

    #[test]
    fn reshape_round_trip() {
        let v = crate::build::short_vector(&[1i32, 2, 3, 4, 5, 6, 7, 8]).unwrap();
        let m = reshape(&v, &[2, 2, 2]).unwrap();
        let back = reshape(&m, &[8]).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn reshape_respects_short_rank_limit() {
        let v = crate::build::short_vector(&[0u8 as i8; 128]).unwrap();
        assert!(reshape(&v, &[2, 2, 2, 2, 2, 4]).is_ok());
        assert!(reshape(&v, &[2, 2, 2, 2, 2, 2, 2]).is_err());
        // ... but a max array can take rank 7.
        let vm = crate::build::max_vector(&[0i8; 128]).unwrap();
        assert!(reshape(&vm, &[2, 2, 2, 2, 2, 2, 2]).is_ok());
    }

    #[test]
    fn max_header_length_changes_with_rank() {
        let v = crate::build::max_vector(&[1i32, 2, 3, 4]).unwrap();
        assert_eq!(v.as_blob().len(), 16 + 4 + 16);
        let m = reshape(&v, &[2, 2]).unwrap();
        assert_eq!(m.as_blob().len(), 16 + 8 + 16);
        assert_eq!(m.payload(), v.payload());
    }
}
