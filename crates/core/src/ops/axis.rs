//! Reductions over a single axis.
//!
//! "Higher dimensional spectrum processing would require subsetting arrays
//! and summation over certain axes to get, for example, the overall
//! spectrum of an object that was originally observed with an integral
//! field spectrograph." (§2.2)

use crate::array::SqlArray;
use crate::element::ElementType;
use crate::errors::{ArrayError, Result};
use crate::header::Header;
use crate::shape::Shape;

/// The reduction applied along an axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AxisReduce {
    /// Sum of the elements along the axis.
    Sum,
    /// Arithmetic mean along the axis.
    Mean,
    /// Minimum along the axis (real types only).
    Min,
    /// Maximum along the axis (real types only).
    Max,
}

/// Reduces `a` along `axis`, producing an array whose rank is one lower
/// (unless the input is 1-D, in which case the result is the 1-element
/// vector). Real inputs produce `float64` output; complex inputs support
/// `Sum`/`Mean` and produce `complex64`.
pub fn reduce_axis(a: &SqlArray, axis: usize, op: AxisReduce) -> Result<SqlArray> {
    let rank = a.rank();
    if axis >= rank {
        return Err(ArrayError::BadAxis { axis, rank });
    }
    let complex = a.elem().is_complex();
    if complex && matches!(op, AxisReduce::Min | AxisReduce::Max) {
        return Err(ArrayError::BadConversion {
            from: a.elem(),
            to: ElementType::Float64,
        });
    }

    let dims = a.dims();
    let out_dims: Vec<usize> = if rank == 1 {
        vec![1]
    } else {
        dims.iter()
            .enumerate()
            .filter(|&(i, _)| i != axis)
            .map(|(_, &d)| d)
            .collect()
    };
    let out_elem = if complex {
        ElementType::Complex64
    } else {
        ElementType::Float64
    };
    let out_shape = Shape::new(&out_dims)?;
    let header = Header::new(a.class(), out_elem, out_shape.clone())?;
    let hlen = header.header_len();
    let mut out = vec![0u8; header.blob_len()];
    header.encode(&mut out);

    let n = dims[axis] as f64;
    let strides = a.shape().strides();
    let axis_stride = strides[axis];
    let axis_len = dims[axis];
    let es = out_elem.size();

    // Iterate the output lattice; for each output cell walk the reduced
    // axis in the input.
    for out_lin in 0..out_shape.count() {
        let out_idx = out_shape.multi_index(out_lin);
        // Rebuild the input base offset with 0 on the reduced axis.
        let mut base = 0usize;
        let mut oi = 0usize;
        for (ax, &stride) in strides.iter().enumerate() {
            if ax == axis {
                continue;
            }
            let i = if rank == 1 { 0 } else { out_idx[oi] };
            base += i * stride;
            oi += 1;
        }
        if complex {
            let mut acc = crate::complex::Complex64::ZERO;
            for k in 0..axis_len {
                acc += a.item_linear(base + k * axis_stride).as_c64();
            }
            if matches!(op, AxisReduce::Mean) {
                acc = acc.scale(1.0 / n);
            }
            crate::scalar::Scalar::C64(acc).write_le(&mut out[hlen + out_lin * es..]);
        } else {
            let mut acc = match op {
                AxisReduce::Sum | AxisReduce::Mean => 0.0,
                AxisReduce::Min => f64::INFINITY,
                AxisReduce::Max => f64::NEG_INFINITY,
            };
            for k in 0..axis_len {
                let v = a.item_linear(base + k * axis_stride).as_f64()?;
                acc = match op {
                    AxisReduce::Sum | AxisReduce::Mean => acc + v,
                    AxisReduce::Min => acc.min(v),
                    AxisReduce::Max => acc.max(v),
                };
            }
            if matches!(op, AxisReduce::Mean) {
                acc /= n;
            }
            crate::scalar::Scalar::F64(acc).write_le(&mut out[hlen + out_lin * es..]);
        }
    }
    SqlArray::from_blob(out)
}

/// Sums along an axis (the common case).
pub fn sum_axis(a: &SqlArray, axis: usize) -> Result<SqlArray> {
    reduce_axis(a, axis, AxisReduce::Sum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::matrix;
    use crate::header::StorageClass;

    #[test]
    fn sum_over_matrix_axes() {
        // m = [[1,2,3],[4,5,6]]
        let m = matrix(
            StorageClass::Short,
            2,
            3,
            &[1.0f64, 2.0, 3.0, 4.0, 5.0, 6.0],
        )
        .unwrap();
        // Reducing axis 0 (rows) leaves the 3 column sums.
        let cols = sum_axis(&m, 0).unwrap();
        assert_eq!(cols.dims(), &[3]);
        assert_eq!(cols.to_vec::<f64>().unwrap(), vec![5.0, 7.0, 9.0]);
        // Reducing axis 1 (columns) leaves the 2 row sums.
        let rows = sum_axis(&m, 1).unwrap();
        assert_eq!(rows.to_vec::<f64>().unwrap(), vec![6.0, 15.0]);
    }

    #[test]
    fn mean_min_max_along_axis() {
        let m = matrix(StorageClass::Short, 2, 2, &[1.0f64, 8.0, 3.0, 4.0]).unwrap();
        let mean0 = reduce_axis(&m, 0, AxisReduce::Mean).unwrap();
        assert_eq!(mean0.to_vec::<f64>().unwrap(), vec![2.0, 6.0]);
        let min1 = reduce_axis(&m, 1, AxisReduce::Min).unwrap();
        assert_eq!(min1.to_vec::<f64>().unwrap(), vec![1.0, 3.0]);
        let max1 = reduce_axis(&m, 1, AxisReduce::Max).unwrap();
        assert_eq!(max1.to_vec::<f64>().unwrap(), vec![8.0, 4.0]);
    }

    #[test]
    fn reduce_1d_to_scalar_vector() {
        let v = crate::build::short_vector(&[1.0f64, 2.0, 3.0]).unwrap();
        let s = sum_axis(&v, 0).unwrap();
        assert_eq!(s.dims(), &[1]);
        assert_eq!(s.to_vec::<f64>().unwrap(), vec![6.0]);
    }

    #[test]
    fn ifu_cube_collapses_to_spectrum() {
        // A 3-D IFU cube (wavelength, x, y): summing over both spatial axes
        // yields the integrated spectrum (§2.2).
        let cube = SqlArray::from_fn(StorageClass::Max, &[4, 3, 2], |idx| {
            (idx[0] + 1) as f64 // flux depends only on wavelength bin
        })
        .unwrap();
        let partial = sum_axis(&cube, 2).unwrap(); // sum over y
        assert_eq!(partial.dims(), &[4, 3]);
        let spectrum = sum_axis(&partial, 1).unwrap(); // sum over x
        assert_eq!(spectrum.dims(), &[4]);
        assert_eq!(
            spectrum.to_vec::<f64>().unwrap(),
            vec![6.0, 12.0, 18.0, 24.0]
        );
    }

    #[test]
    fn integer_input_reduces_to_float() {
        let m = matrix(StorageClass::Short, 2, 2, &[1i32, 2, 3, 4]).unwrap();
        let s = sum_axis(&m, 0).unwrap();
        assert_eq!(s.elem(), ElementType::Float64);
        assert_eq!(s.to_vec::<f64>().unwrap(), vec![4.0, 6.0]);
    }

    #[test]
    fn complex_sum_axis() {
        use crate::complex::Complex64;
        let v = SqlArray::from_vec(
            StorageClass::Short,
            &[2, 2],
            &[
                Complex64::new(1.0, 1.0),
                Complex64::new(2.0, -1.0),
                Complex64::new(0.5, 0.0),
                Complex64::new(0.5, 2.0),
            ],
        )
        .unwrap();
        let s = sum_axis(&v, 0).unwrap();
        assert_eq!(s.elem(), ElementType::Complex64);
        let vals = s.to_vec::<Complex64>().unwrap();
        assert_eq!(vals[0], Complex64::new(3.0, 0.0));
        assert_eq!(vals[1], Complex64::new(1.0, 2.0));
        assert!(reduce_axis(&v, 0, AxisReduce::Min).is_err());
    }

    #[test]
    fn bad_axis_rejected() {
        let v = crate::build::short_vector(&[1.0f64]).unwrap();
        assert!(matches!(
            sum_axis(&v, 1),
            Err(ArrayError::BadAxis { axis: 1, rank: 1 })
        ));
    }
}
