//! Header prefixing and stripping (`Cast` / `Raw`).
//!
//! "The function Cast is used to treat raw binaries containing consecutive
//! numbers to be able to be treated as arrays by prefixing them with a
//! header. The opposite to this is Raw which returns the array elements as a
//! raw binary by stripping the header." (§5.1)

use crate::array::SqlArray;
use crate::element::ElementType;
use crate::errors::{ArrayError, Result};
use crate::header::{Header, StorageClass};
use crate::shape::Shape;

/// Prefixes a raw little-endian payload with an array header.
///
/// `raw.len()` must equal `product(dims) * elem.size()`.
pub fn cast(
    raw: &[u8],
    class: StorageClass,
    elem: ElementType,
    dims: &[usize],
) -> Result<SqlArray> {
    if raw.len() % elem.size() != 0 {
        return Err(ArrayError::RawSizeNotAligned {
            len: raw.len(),
            elem_size: elem.size(),
        });
    }
    let shape = Shape::new(dims)?;
    let need = shape.count() * elem.size();
    if raw.len() != need {
        return Err(ArrayError::PayloadSizeMismatch {
            got: raw.len(),
            need,
        });
    }
    let header = Header::new(class, elem, shape)?;
    let mut out = vec![0u8; header.blob_len()];
    header.encode(&mut out);
    out[header.header_len()..].copy_from_slice(raw);
    SqlArray::from_blob(out)
}

/// Casts a raw payload as a 1-D vector, inferring the length from the byte
/// count.
pub fn cast_vector(raw: &[u8], class: StorageClass, elem: ElementType) -> Result<SqlArray> {
    if raw.is_empty() || raw.len() % elem.size() != 0 {
        return Err(ArrayError::RawSizeNotAligned {
            len: raw.len(),
            elem_size: elem.size(),
        });
    }
    cast(raw, class, elem, &[raw.len() / elem.size()])
}

/// Strips the header, returning the payload bytes (`Raw`).
pub fn raw(a: &SqlArray) -> Vec<u8> {
    a.payload().to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::Scalar;

    #[test]
    fn cast_then_raw_is_identity_on_payload() {
        let payload: Vec<u8> = (0..24).collect();
        let a = cast(&payload, StorageClass::Short, ElementType::Int32, &[3, 2]).unwrap();
        assert_eq!(a.dims(), &[3, 2]);
        assert_eq!(raw(&a), payload);
    }

    #[test]
    fn raw_then_cast_round_trips_an_array() {
        let a = crate::build::short_vector(&[1.5f64, -2.5, 3.25]).unwrap();
        let bytes = raw(&a);
        let b = cast(&bytes, a.class(), a.elem(), a.dims()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn cast_validates_length() {
        let payload = vec![0u8; 10];
        assert!(matches!(
            cast(&payload, StorageClass::Short, ElementType::Int32, &[3]),
            Err(ArrayError::RawSizeNotAligned { .. })
        ));
        let payload = vec![0u8; 16];
        assert!(matches!(
            cast(&payload, StorageClass::Short, ElementType::Int32, &[3]),
            Err(ArrayError::PayloadSizeMismatch { got: 16, need: 12 })
        ));
    }

    #[test]
    fn cast_vector_infers_length() {
        let mut payload = vec![0u8; 16];
        payload[0] = 7; // little-endian i32 = 7
        let v = cast_vector(&payload, StorageClass::Short, ElementType::Int32).unwrap();
        assert_eq!(v.dims(), &[4]);
        assert_eq!(v.item(&[0]).unwrap(), Scalar::I32(7));
        assert!(cast_vector(&[], StorageClass::Short, ElementType::Int32).is_err());
    }

    #[test]
    fn cast_enforces_short_budget() {
        let payload = vec![0u8; 7990];
        assert!(matches!(
            cast_vector(&payload, StorageClass::Short, ElementType::Int8),
            Err(ArrayError::ShortTooLarge { .. })
        ));
        assert!(cast_vector(&payload, StorageClass::Max, ElementType::Int8).is_ok());
    }
}
