//! Contiguous subarray extraction (`Subarray`).
//!
//! "Sub-arrays of an array can be retrieved using the Subarray function. The
//! offset of the sub-array and the dimension sizes are the input parameters.
//! Only retrieval of contiguous parts of the arrays is supported. [...] The
//! last parameter specifies whether subarrays with length of one in any
//! dimension are automatically converted to a lower dimensional array. This
//! is useful, for example, for retrieving the column vectors of a matrix."
//! (§5.1)

use crate::array::SqlArray;
use crate::errors::Result;
use crate::header::Header;

/// Extracts the rectangular region `[offset, offset+size)` along each axis.
///
/// The result keeps the element type and storage class of the input. When
/// `squeeze` is true, axes of length 1 in the result are dropped (a
/// 5×1×5 slab becomes a 5×5 matrix; a fully scalar result becomes `[1]`).
pub fn subarray(a: &SqlArray, offset: &[usize], size: &[usize], squeeze: bool) -> Result<SqlArray> {
    let region = a.shape().validate_subarray(offset, size)?;
    let out_shape = if squeeze { region.squeeze() } else { region };
    let es = a.elem().size();

    let out_header = Header::new(a.class(), a.elem(), out_shape)?;
    let out_hlen = out_header.header_len();
    let mut out = vec![0u8; out_header.blob_len()];
    out_header.encode(&mut out);

    let payload = a.payload();
    let mut cursor = out_hlen;
    for (start_elem, run_elems) in a.shape().region_runs(offset, size) {
        let src = start_elem * es..(start_elem + run_elems) * es;
        out[cursor..cursor + run_elems * es].copy_from_slice(&payload[src]);
        cursor += run_elems * es;
    }
    assert_eq!(cursor, out.len());
    SqlArray::from_blob(out)
}

/// Extracts one full column `j` of a 2-D array as a vector — the paper's
/// motivating squeeze example.
pub fn column(a: &SqlArray, j: usize) -> Result<SqlArray> {
    let dims = a.dims().to_vec();
    subarray(a, &[0, j], &[dims[0], 1], true)
}

/// Extracts one full row `i` of a 2-D array as a vector.
pub fn row(a: &SqlArray, i: usize) -> Result<SqlArray> {
    let dims = a.dims().to_vec();
    subarray(a, &[i, 0], &[1, dims[1]], true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::header::StorageClass;
    use crate::scalar::Scalar;

    fn grid3d() -> SqlArray {
        SqlArray::from_fn(StorageClass::Max, &[6, 5, 4], |idx| {
            (100 * idx[0] + 10 * idx[1] + idx[2]) as i64
        })
        .unwrap()
    }

    #[test]
    fn paper_cube_example() {
        // Subarray(@a, Vector_3(1,4,6), Vector_3(5,5,5), 0) on a 3-D array:
        // offsets (1,4,6), sizes (5,5,5), no squeeze.
        let a = SqlArray::from_fn(StorageClass::Max, &[8, 10, 12], |idx| {
            (idx[0] + 8 * idx[1] + 80 * idx[2]) as f32
        })
        .unwrap();
        let s = subarray(&a, &[1, 4, 6], &[5, 5, 5], false).unwrap();
        assert_eq!(s.dims(), &[5, 5, 5]);
        for i in 0..5 {
            for j in 0..5 {
                for k in 0..5 {
                    assert_eq!(
                        s.item(&[i, j, k]).unwrap(),
                        a.item(&[1 + i, 4 + j, 6 + k]).unwrap()
                    );
                }
            }
        }
    }

    #[test]
    fn subarray_values_match_source() {
        let a = grid3d();
        let s = subarray(&a, &[2, 1, 0], &[3, 2, 4], false).unwrap();
        assert_eq!(s.dims(), &[3, 2, 4]);
        for i in 0..3 {
            for j in 0..2 {
                for k in 0..4 {
                    assert_eq!(
                        s.item(&[i, j, k]).unwrap(),
                        Scalar::I64((100 * (i + 2) + 10 * (j + 1) + k) as i64)
                    );
                }
            }
        }
    }

    #[test]
    fn squeeze_lowers_rank() {
        let a = grid3d();
        let s = subarray(&a, &[0, 3, 0], &[6, 1, 4], true).unwrap();
        assert_eq!(s.dims(), &[6, 4]);
        assert_eq!(s.item(&[5, 2]).unwrap(), Scalar::I64(100 * 5 + 10 * 3 + 2));
        let unsqueezed = subarray(&a, &[0, 3, 0], &[6, 1, 4], false).unwrap();
        assert_eq!(unsqueezed.dims(), &[6, 1, 4]);
    }

    #[test]
    fn scalar_region_squeezes_to_unit_vector() {
        let a = grid3d();
        let s = subarray(&a, &[3, 2, 1], &[1, 1, 1], true).unwrap();
        assert_eq!(s.dims(), &[1]);
        assert_eq!(s.item(&[0]).unwrap(), Scalar::I64(321));
    }

    #[test]
    fn matrix_column_and_row() {
        let m = crate::build::matrix(
            StorageClass::Short,
            2,
            3,
            &[1.0f64, 2.0, 3.0, 4.0, 5.0, 6.0],
        )
        .unwrap();
        // m = [[1,2,3],[4,5,6]]
        let c1 = column(&m, 1).unwrap();
        assert_eq!(c1.dims(), &[2]);
        assert_eq!(c1.to_vec::<f64>().unwrap(), vec![2.0, 5.0]);
        let r0 = row(&m, 0).unwrap();
        assert_eq!(r0.to_vec::<f64>().unwrap(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn out_of_bounds_rejected() {
        let a = grid3d();
        assert!(subarray(&a, &[4, 0, 0], &[3, 1, 1], false).is_err());
        assert!(subarray(&a, &[0, 0], &[1, 1], false).is_err());
    }

    #[test]
    fn keeps_class_and_type() {
        let a = SqlArray::from_vec(StorageClass::Short, &[4], &[1i16, 2, 3, 4]).unwrap();
        let s = subarray(&a, &[1], &[2], false).unwrap();
        assert_eq!(s.class(), StorageClass::Short);
        assert_eq!(s.elem(), crate::element::ElementType::Int16);
        assert_eq!(s.to_vec::<i16>().unwrap(), vec![2, 3]);
    }

    #[test]
    fn full_extent_subarray_is_identity() {
        let a = grid3d();
        let dims = a.dims().to_vec();
        let s = subarray(&a, &[0, 0, 0], &dims, false).unwrap();
        assert_eq!(s, a);
    }
}
