//! Elementwise arithmetic, scaling and inner products.
//!
//! The spectrum use case needs "normalization of the flux vector which
//! requires integration of the flux in given wavelength ranges and
//! multiplication by scalar" and "multiplying the flux vector with a number
//! that is a function of the wavelength" (§2.2) — i.e. array⊗array and
//! array⊗scalar kernels, including mixed-type pairs (double flux × integer
//! flags).

use crate::array::SqlArray;
use crate::complex::Complex64;
use crate::element::ElementType;
use crate::errors::{ArrayError, Result};
use crate::header::Header;
use crate::parallel::{configured_dop, scoped_try_for_ranges_mut};
use crate::scalar::Scalar;

/// Arrays with at least this many elements run the chunked parallel path
/// in [`zip`], [`scale`] and [`offset`] (when the configured DOP is > 1);
/// smaller arrays are not worth a thread spawn.
pub const PARALLEL_MIN_ELEMS: usize = 8192;

/// Picks the effective DOP for a kernel over `count` elements.
fn kernel_dop(count: usize) -> usize {
    if count >= PARALLEL_MIN_ELEMS {
        configured_dop()
    } else {
        1
    }
}

/// Fills `body` (a raw element buffer of `count` × 8-byte `f64` cells) from
/// `compute(lin)`, fanning contiguous chunks out through
/// [`scoped_try_for_ranges_mut`]. Each worker writes a disjoint sub-slice
/// and the first error is reported in chunk order, so the result is
/// bit-identical to the serial loop for any `dop`.
fn fill_f64(
    body: &mut [u8],
    count: usize,
    dop: usize,
    compute: &(impl Fn(usize) -> Result<f64> + Sync),
) -> Result<()> {
    assert_eq!(body.len(), count * 8);
    scoped_try_for_ranges_mut(body, 8, dop, |r, chunk| {
        for (slot, lin) in r.enumerate() {
            let v = compute(lin)?;
            chunk[slot * 8..slot * 8 + 8].copy_from_slice(&v.to_le_bytes());
        }
        Ok(())
    })
}

/// The binary operation of [`zip`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Elementwise addition.
    Add,
    /// Elementwise subtraction.
    Sub,
    /// Elementwise multiplication.
    Mul,
    /// Elementwise division.
    Div,
}

fn result_type(a: ElementType, b: ElementType) -> ElementType {
    if a.is_complex() || b.is_complex() {
        ElementType::Complex64
    } else {
        ElementType::Float64
    }
}

/// Applies `op` elementwise over two arrays of identical shape. The inputs
/// may have different base types (e.g. `float64` flux × `int16` flags); the
/// result is `float64`, or `complex64` if either input is complex. The
/// result inherits the storage class of `a` (falling back to max if the
/// widened payload no longer fits in a page).
pub fn zip(a: &SqlArray, b: &SqlArray, op: BinOp) -> Result<SqlArray> {
    zip_with_dop(a, b, op, kernel_dop(a.count()))
}

/// [`zip`] with an explicit degree of parallelism (1 = serial). Results are
/// bit-identical for every `dop`; [`zip`] picks the DOP from the array size
/// and the `SQLARRAY_DOP` configuration.
pub fn zip_with_dop(a: &SqlArray, b: &SqlArray, op: BinOp, dop: usize) -> Result<SqlArray> {
    if a.dims() != b.dims() {
        return Err(ArrayError::ShapeMismatch {
            left: a.dims().to_vec(),
            right: b.dims().to_vec(),
        });
    }
    let out_elem = result_type(a.elem(), b.elem());
    let header = match Header::new(a.class(), out_elem, a.shape().clone()) {
        Ok(h) => h,
        Err(ArrayError::ShortTooLarge { .. }) => Header::new(
            crate::header::StorageClass::Max,
            out_elem,
            a.shape().clone(),
        )?,
        Err(e) => return Err(e),
    };
    let hlen = header.header_len();
    let mut out = vec![0u8; header.blob_len()];
    header.encode(&mut out);
    let es = out_elem.size();

    if out_elem == ElementType::Complex64 {
        for lin in 0..a.count() {
            let x = a.item_linear(lin).as_c64();
            let y = b.item_linear(lin).as_c64();
            let r = match op {
                BinOp::Add => x + y,
                BinOp::Sub => x - y,
                BinOp::Mul => x * y,
                BinOp::Div => x / y,
            };
            Scalar::C64(r).write_le(&mut out[hlen + lin * es..]);
        }
    } else {
        let count = a.count();
        fill_f64(&mut out[hlen..hlen + count * 8], count, dop, &|lin| {
            let x = a.item_linear(lin).as_f64()?;
            let y = b.item_linear(lin).as_f64()?;
            Ok(match op {
                BinOp::Add => x + y,
                BinOp::Sub => x - y,
                BinOp::Mul => x * y,
                BinOp::Div => x / y,
            })
        })?;
    }
    SqlArray::from_blob(out)
}

/// Elementwise `a + b`.
pub fn add(a: &SqlArray, b: &SqlArray) -> Result<SqlArray> {
    zip(a, b, BinOp::Add)
}

/// Elementwise `a - b`.
pub fn sub(a: &SqlArray, b: &SqlArray) -> Result<SqlArray> {
    zip(a, b, BinOp::Sub)
}

/// Elementwise `a * b` (Hadamard product).
pub fn mul(a: &SqlArray, b: &SqlArray) -> Result<SqlArray> {
    zip(a, b, BinOp::Mul)
}

/// Elementwise `a / b`.
pub fn div(a: &SqlArray, b: &SqlArray) -> Result<SqlArray> {
    zip(a, b, BinOp::Div)
}

/// Multiplies every element by a real scalar, preserving the element type
/// family (real stays `float64`, complex stays `complex64`). Large arrays
/// run chunked over the configured DOP.
pub fn scale(a: &SqlArray, k: f64) -> Result<SqlArray> {
    affine_with_dop(a, k, 0.0, kernel_dop(a.count()))
}

/// Adds a real scalar to every element. Large arrays run chunked over the
/// configured DOP.
pub fn offset(a: &SqlArray, k: f64) -> Result<SqlArray> {
    affine_with_dop(a, 1.0, k, kernel_dop(a.count()))
}

/// `v ↦ v·mul + add` applied elementwise (componentwise for complex
/// inputs, matching what [`map_f64`] does for a linear map), with the real
/// path parallelized over `dop` chunks.
fn affine_with_dop(a: &SqlArray, mul: f64, add: f64, dop: usize) -> Result<SqlArray> {
    if a.elem().is_complex() {
        return map_c64(a, |c| Complex64::new(c.re * mul + add, c.im * mul + add));
    }
    let header = promote_header(a, ElementType::Float64)?;
    let hlen = header.header_len();
    let mut out = vec![0u8; header.blob_len()];
    header.encode(&mut out);
    let count = a.count();
    fill_f64(&mut out[hlen..hlen + count * 8], count, dop, &|lin| {
        Ok(a.item_linear(lin).as_f64()? * mul + add)
    })?;
    SqlArray::from_blob(out)
}

/// Applies a real function elementwise. Real input → `float64` output;
/// complex input applies `f` to both components independently only when it
/// is a linear map — to stay honest, complex arrays route through
/// [`map_c64`] instead and this function rejects them.
pub fn map_f64(a: &SqlArray, mut f: impl FnMut(f64) -> f64) -> Result<SqlArray> {
    if a.elem().is_complex() {
        return map_c64(a, |c| Complex64::new(f(c.re), f(c.im)));
    }
    let header = promote_header(a, ElementType::Float64)?;
    let hlen = header.header_len();
    let mut out = vec![0u8; header.blob_len()];
    header.encode(&mut out);
    for lin in 0..a.count() {
        let v = f(a.item_linear(lin).as_f64()?);
        Scalar::F64(v).write_le(&mut out[hlen + lin * 8..]);
    }
    SqlArray::from_blob(out)
}

/// Applies a complex function elementwise; any input type is widened to
/// `complex64` first.
pub fn map_c64(a: &SqlArray, mut f: impl FnMut(Complex64) -> Complex64) -> Result<SqlArray> {
    let header = promote_header(a, ElementType::Complex64)?;
    let hlen = header.header_len();
    let mut out = vec![0u8; header.blob_len()];
    header.encode(&mut out);
    for lin in 0..a.count() {
        let v = f(a.item_linear(lin).as_c64());
        Scalar::C64(v).write_le(&mut out[hlen + lin * 16..]);
    }
    SqlArray::from_blob(out)
}

fn promote_header(a: &SqlArray, elem: ElementType) -> Result<Header> {
    match Header::new(a.class(), elem, a.shape().clone()) {
        Ok(h) => Ok(h),
        Err(ArrayError::ShortTooLarge { .. }) => {
            Header::new(crate::header::StorageClass::Max, elem, a.shape().clone())
        }
        Err(e) => Err(e),
    }
}

/// Real dot product of two equal-length vectors (any real types).
pub fn dot(a: &SqlArray, b: &SqlArray) -> Result<f64> {
    if a.count() != b.count() {
        return Err(ArrayError::ShapeMismatch {
            left: a.dims().to_vec(),
            right: b.dims().to_vec(),
        });
    }
    let mut acc = 0.0f64;
    for lin in 0..a.count() {
        acc += a.item_linear(lin).as_f64()? * b.item_linear(lin).as_f64()?;
    }
    Ok(acc)
}

/// Hermitian inner product `⟨a, b⟩ = Σ conj(aᵢ)·bᵢ` for complex vectors
/// (real inputs are widened).
pub fn dot_c64(a: &SqlArray, b: &SqlArray) -> Result<Complex64> {
    if a.count() != b.count() {
        return Err(ArrayError::ShapeMismatch {
            left: a.dims().to_vec(),
            right: b.dims().to_vec(),
        });
    }
    let mut acc = Complex64::ZERO;
    for lin in 0..a.count() {
        acc += a.item_linear(lin).as_c64().conj() * b.item_linear(lin).as_c64();
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::short_vector;
    use crate::header::StorageClass;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-12
    }

    #[test]
    fn add_sub_mul_div() {
        let a = short_vector(&[1.0f64, 2.0, 3.0]).unwrap();
        let b = short_vector(&[4.0f64, 5.0, 6.0]).unwrap();
        assert_eq!(
            add(&a, &b).unwrap().to_vec::<f64>().unwrap(),
            vec![5.0, 7.0, 9.0]
        );
        assert_eq!(
            sub(&b, &a).unwrap().to_vec::<f64>().unwrap(),
            vec![3.0, 3.0, 3.0]
        );
        assert_eq!(
            mul(&a, &b).unwrap().to_vec::<f64>().unwrap(),
            vec![4.0, 10.0, 18.0]
        );
        assert_eq!(
            div(&b, &a).unwrap().to_vec::<f64>().unwrap(),
            vec![4.0, 2.5, 2.0]
        );
    }

    #[test]
    fn mixed_types_promote_to_f64() {
        // double flux × int flags: the §2.2 masking pattern.
        let flux = short_vector(&[1.5f64, 2.5, 3.5]).unwrap();
        let flags = short_vector(&[1i16, 0, 1]).unwrap();
        let masked = mul(&flux, &flags).unwrap();
        assert_eq!(masked.elem(), ElementType::Float64);
        assert_eq!(masked.to_vec::<f64>().unwrap(), vec![1.5, 0.0, 3.5]);
    }

    #[test]
    fn complex_promotes_result() {
        let a = short_vector(&[Complex64::new(1.0, 1.0)]).unwrap();
        let b = short_vector(&[2.0f64]).unwrap();
        let p = mul(&a, &b).unwrap();
        assert_eq!(p.elem(), ElementType::Complex64);
        assert_eq!(
            p.to_vec::<Complex64>().unwrap(),
            vec![Complex64::new(2.0, 2.0)]
        );
    }

    #[test]
    fn shape_mismatch_rejected() {
        let a = short_vector(&[1.0f64, 2.0]).unwrap();
        let b = short_vector(&[1.0f64, 2.0, 3.0]).unwrap();
        assert!(matches!(add(&a, &b), Err(ArrayError::ShapeMismatch { .. })));
    }

    #[test]
    fn scale_and_offset() {
        let a = short_vector(&[1.0f64, -2.0]).unwrap();
        assert_eq!(
            scale(&a, 3.0).unwrap().to_vec::<f64>().unwrap(),
            vec![3.0, -6.0]
        );
        assert_eq!(
            offset(&a, 1.0).unwrap().to_vec::<f64>().unwrap(),
            vec![2.0, -1.0]
        );
    }

    #[test]
    fn scale_complex() {
        let a = short_vector(&[Complex64::new(1.0, -2.0)]).unwrap();
        let s = scale(&a, 2.0).unwrap();
        assert_eq!(
            s.to_vec::<Complex64>().unwrap(),
            vec![Complex64::new(2.0, -4.0)]
        );
    }

    #[test]
    fn map_f64_applies_function() {
        let a = short_vector(&[1.0f64, 4.0, 9.0]).unwrap();
        let r = map_f64(&a, f64::sqrt).unwrap();
        assert_eq!(r.to_vec::<f64>().unwrap(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn dot_products() {
        let a = short_vector(&[1.0f64, 2.0, 3.0]).unwrap();
        let b = short_vector(&[4.0f64, -5.0, 6.0]).unwrap();
        assert!(close(dot(&a, &b).unwrap(), 4.0 - 10.0 + 18.0));

        let ca = short_vector(&[Complex64::new(0.0, 1.0)]).unwrap();
        let cb = short_vector(&[Complex64::new(0.0, 1.0)]).unwrap();
        // <i, i> = conj(i)*i = -i*i = 1
        let h = dot_c64(&ca, &cb).unwrap();
        assert!(close(h.re, 1.0) && close(h.im, 0.0));
    }

    #[test]
    fn parallel_zip_is_bit_identical_to_serial() {
        let n = 10_001; // odd, so chunks are non-divisible
        let xs: Vec<f64> = (0..n).map(|k| (k as f64 * 0.37).sin() * 1e3).collect();
        let ys: Vec<f64> = (0..n).map(|k| (k as f64 * 0.11).cos() + 2.0).collect();
        let a = SqlArray::from_vec(StorageClass::Max, &[n], &xs).unwrap();
        let b = SqlArray::from_vec(StorageClass::Max, &[n], &ys).unwrap();
        for op in [BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Div] {
            let serial = zip_with_dop(&a, &b, op, 1).unwrap();
            for dop in [2, 3, 8] {
                let par = zip_with_dop(&a, &b, op, dop).unwrap();
                assert_eq!(par.as_blob(), serial.as_blob(), "{op:?} dop {dop}");
            }
        }
    }

    #[test]
    fn parallel_scale_and_offset_match_serial() {
        let n = 9000;
        let xs: Vec<f64> = (0..n).map(|k| k as f64 * 0.001 - 4.0).collect();
        let a = SqlArray::from_vec(StorageClass::Max, &[n], &xs).unwrap();
        let serial_scale = affine_with_dop(&a, 2.5, 0.0, 1).unwrap();
        let serial_offset = affine_with_dop(&a, 1.0, -1.25, 1).unwrap();
        for dop in [2, 5] {
            assert_eq!(
                affine_with_dop(&a, 2.5, 0.0, dop).unwrap().as_blob(),
                serial_scale.as_blob()
            );
            assert_eq!(
                affine_with_dop(&a, 1.0, -1.25, dop).unwrap().as_blob(),
                serial_offset.as_blob()
            );
        }
    }

    #[test]
    fn int_zip_promotes_without_overflowing_page() {
        // 997 i64 elements fill a short page exactly when widened to f64
        // the byte count stays the same, so the class is preserved.
        let data: Vec<i64> = (0..997).collect();
        let a = SqlArray::from_vec(StorageClass::Short, &[997], &data).unwrap();
        let s = add(&a, &a).unwrap();
        assert_eq!(s.class(), StorageClass::Short);
        // Widening 900 i32 (3624 bytes total) to f64 (7224) still fits; but
        // widening 997×i64 to complex128 would not — checked in map_c64.
        let c = map_c64(&a, |v| v).unwrap();
        assert_eq!(c.class(), StorageClass::Max);
    }
}
