//! Array ⇄ rowset conversion (`ToTable`, `Concat`).
//!
//! "Arrays can be created from row-by-row data stored in a table [...] the
//! array is assembled from a table which has two columns: one containing the
//! index of the item (as an array of two integers) and the value" and
//! "arrays can be converted to tables by various table-valued functions,
//! e.g. ToTable, MatrixToTable" (§5.1).

use crate::array::SqlArray;
use crate::element::ElementType;
use crate::errors::{ArrayError, Result};
use crate::header::StorageClass;
use crate::scalar::Scalar;

/// One row of the table form of an array: the multi-index and the value.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayRow {
    /// Multi-dimensional index of the element.
    pub index: Vec<usize>,
    /// The element value.
    pub value: Scalar,
}

/// Explodes an array into `(index, value)` rows in column-major order — the
/// `ToTable` table-valued function.
pub fn to_table(a: &SqlArray) -> Vec<ArrayRow> {
    (0..a.count())
        .map(|lin| ArrayRow {
            index: a.shape().multi_index(lin),
            value: a.item_linear(lin),
        })
        .collect()
}

/// Explodes a 2-D array into `(row, col, value)` triples — the
/// `MatrixToTable` convenience form.
pub fn matrix_to_table(a: &SqlArray) -> Result<Vec<(usize, usize, Scalar)>> {
    if a.rank() != 2 {
        return Err(ArrayError::BadRank {
            rank: a.rank(),
            max: 2,
        });
    }
    Ok(to_table(a)
        .into_iter()
        .map(|r| (r.index[0], r.index[1], r.value))
        .collect())
}

/// Assembles an array from indexed rows — the `Concat` operation. Rows may
/// arrive in any order; each cell must be written exactly once. Cells the
/// rows never touch are zero (SQL groups with missing members), but a row
/// count that differs from the cell count is reported so bulk loaders catch
/// dropped rows.
pub fn from_rows(
    class: StorageClass,
    elem: ElementType,
    dims: &[usize],
    rows: &[ArrayRow],
) -> Result<SqlArray> {
    let mut a = SqlArray::zeros(class, elem, dims)?;
    let mut seen = vec![false; a.count()];
    for row in rows {
        let lin = a.shape().linear_index(&row.index)?;
        if seen[lin] {
            return Err(ArrayError::Parse(format!(
                "duplicate index {:?} in row stream",
                row.index
            )));
        }
        seen[lin] = true;
        a.update_item(&row.index, row.value)?;
    }
    Ok(a)
}

/// Streaming builder used by the engine's `Concat` implementations: rows
/// are appended one at a time. The builder mirrors the *scalar-function*
/// strategy the paper adopted after user-defined aggregates proved
/// prohibitively slow (§4.2): state lives in memory between rows, with no
/// per-row serialization.
#[derive(Debug)]
pub struct ConcatBuilder {
    array: SqlArray,
    filled: usize,
    seen: Vec<bool>,
    /// True once [`push_next`](Self::push_next) has been used: the builder
    /// is filling linear positions in row-stream order, which changes how
    /// two partial builders [`merge`](Self::merge).
    sequential: bool,
}

impl ConcatBuilder {
    /// Starts building an array of the given type and shape.
    pub fn new(class: StorageClass, elem: ElementType, dims: &[usize]) -> Result<Self> {
        let array = SqlArray::zeros(class, elem, dims)?;
        let n = array.count();
        Ok(ConcatBuilder {
            array,
            filled: 0,
            seen: vec![false; n],
            sequential: false,
        })
    }

    /// Appends one `(index, value)` row.
    pub fn push(&mut self, index: &[usize], value: Scalar) -> Result<()> {
        let lin = self.array.shape().linear_index(index)?;
        if self.seen[lin] {
            return Err(ArrayError::Parse(format!(
                "duplicate index {index:?} in row stream"
            )));
        }
        self.seen[lin] = true;
        self.filled += 1;
        self.array.update_item(index, value)
    }

    /// Appends a value at the next linear position (for single-column row
    /// streams ordered by the clustered index).
    pub fn push_next(&mut self, value: Scalar) -> Result<()> {
        if self.filled >= self.array.count() {
            return Err(ArrayError::IndexOutOfBounds {
                axis: 0,
                index: self.filled,
                size: self.array.count(),
            });
        }
        let lin = self.filled;
        let idx = self.array.shape().multi_index(lin);
        self.seen[lin] = true;
        self.filled += 1;
        self.sequential = true;
        self.array.update_item(&idx, value)
    }

    /// Combines a partial builder produced by a later scan partition into
    /// this one — the parallel-aggregation combine step.
    ///
    /// Indexed builders ([`push`](Self::push)) take the union of filled
    /// cells; a duplicate cell is an error, exactly as in the serial row
    /// stream. Sequential builders ([`push_next`](Self::push_next)) append:
    /// `other`'s first `other.len()` values continue at this builder's
    /// cursor, so merging partials in partition order reproduces the serial
    /// scan order bit for bit. Mixing the two modes across partials is
    /// rejected.
    pub fn merge(&mut self, other: &ConcatBuilder) -> Result<()> {
        if other.filled == 0 {
            return Ok(());
        }
        if self.array.shape().dims() != other.array.shape().dims() {
            return Err(ArrayError::ShapeMismatch {
                left: self.array.dims().to_vec(),
                right: other.array.dims().to_vec(),
            });
        }
        if self.filled > 0 && self.sequential != other.sequential {
            return Err(ArrayError::Parse(
                "cannot merge sequential and indexed Concat partials".into(),
            ));
        }
        if other.sequential {
            for lin in 0..other.filled {
                self.push_next(other.array.item_linear(lin))?;
            }
        } else {
            for (lin, seen) in other.seen.iter().enumerate() {
                if *seen {
                    let idx = self.array.shape().multi_index(lin);
                    self.push(&idx, other.array.item_linear(lin))?;
                }
            }
        }
        Ok(())
    }

    /// Number of rows consumed so far.
    pub fn len(&self) -> usize {
        self.filled
    }

    /// True if no rows have been consumed.
    pub fn is_empty(&self) -> bool {
        self.filled == 0
    }

    /// Finishes, returning the assembled array.
    pub fn finish(self) -> SqlArray {
        self.array
    }

    /// Serializes the builder state (the array-so-far plus the fill map).
    /// Exists only to model SQL Server's per-row UDA state serialization —
    /// the pathology quantified by experiment E5.
    pub fn serialize_state(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.array.as_blob().len() + self.seen.len() + 9);
        out.push(self.sequential as u8);
        out.extend_from_slice(&(self.filled as u64).to_le_bytes());
        out.extend_from_slice(self.array.as_blob());
        out.extend(self.seen.iter().map(|&b| b as u8));
        out
    }

    /// Rebuilds a builder from serialized state (the matching
    /// deserialization half of the UDA model).
    pub fn deserialize_state(buf: &[u8]) -> Result<Self> {
        if buf.len() < 9 {
            return Err(ArrayError::Io("truncated builder state".into()));
        }
        let sequential = buf[0] != 0;
        let filled = crate::le::u64_at(buf, 1) as usize;
        let rest = &buf[9..];
        // The array blob length is self-describing; decode its header to
        // find the split point.
        let header = crate::header::Header::decode(rest)?;
        let blob_len = header.blob_len();
        if rest.len() < blob_len + header.shape.count() {
            return Err(ArrayError::Io("truncated builder state".into()));
        }
        let array = SqlArray::from_blob(rest[..blob_len].to_vec())?;
        let seen = rest[blob_len..blob_len + array.count()]
            .iter()
            .map(|&b| b != 0)
            .collect();
        Ok(ConcatBuilder {
            array,
            filled,
            seen,
            sequential,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::matrix;

    #[test]
    fn to_table_lists_column_major() {
        let m = matrix(StorageClass::Short, 2, 2, &[1.0f64, 2.0, 3.0, 4.0]).unwrap();
        let rows = to_table(&m);
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].index, vec![0, 0]);
        assert_eq!(rows[1].index, vec![1, 0]);
        assert_eq!(rows[1].value, Scalar::F64(3.0)); // row 1, col 0
    }

    #[test]
    fn table_round_trip() {
        let m = matrix(StorageClass::Short, 3, 2, &[1i32, 2, 3, 4, 5, 6]).unwrap();
        let rows = to_table(&m);
        let back = from_rows(m.class(), m.elem(), m.dims(), &rows).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn from_rows_any_order_and_duplicates() {
        let mut rows = vec![
            ArrayRow {
                index: vec![1],
                value: Scalar::F64(20.0),
            },
            ArrayRow {
                index: vec![0],
                value: Scalar::F64(10.0),
            },
        ];
        let a = from_rows(StorageClass::Short, ElementType::Float64, &[2], &rows).unwrap();
        assert_eq!(a.to_vec::<f64>().unwrap(), vec![10.0, 20.0]);

        rows.push(ArrayRow {
            index: vec![0],
            value: Scalar::F64(99.0),
        });
        assert!(from_rows(StorageClass::Short, ElementType::Float64, &[2], &rows).is_err());
    }

    #[test]
    fn matrix_to_table_requires_rank_2() {
        let v = crate::build::short_vector(&[1.0f64]).unwrap();
        assert!(matrix_to_table(&v).is_err());
        let m = matrix(StorageClass::Short, 1, 1, &[5.0f64]).unwrap();
        assert_eq!(matrix_to_table(&m).unwrap(), vec![(0, 0, Scalar::F64(5.0))]);
    }

    #[test]
    fn concat_builder_sequential() {
        // The paper's Concat example: a 100x200 array assembled from rows.
        let mut b = ConcatBuilder::new(StorageClass::Max, ElementType::Float64, &[4, 3]).unwrap();
        for i in 0..12 {
            b.push_next(Scalar::F64(i as f64)).unwrap();
        }
        assert_eq!(b.len(), 12);
        let a = b.finish();
        assert_eq!(a.item(&[0, 0]).unwrap(), Scalar::F64(0.0));
        assert_eq!(a.item(&[3, 2]).unwrap(), Scalar::F64(11.0));
    }

    #[test]
    fn concat_builder_overflow() {
        let mut b = ConcatBuilder::new(StorageClass::Short, ElementType::Int32, &[2]).unwrap();
        b.push_next(Scalar::I32(1)).unwrap();
        b.push_next(Scalar::I32(2)).unwrap();
        assert!(b.push_next(Scalar::I32(3)).is_err());
    }

    #[test]
    fn builder_state_round_trip() {
        let mut b = ConcatBuilder::new(StorageClass::Short, ElementType::Float64, &[2, 2]).unwrap();
        b.push(&[0, 1], Scalar::F64(7.0)).unwrap();
        let state = b.serialize_state();
        let mut b2 = ConcatBuilder::deserialize_state(&state).unwrap();
        b2.push(&[1, 1], Scalar::F64(8.0)).unwrap();
        let a = b2.finish();
        assert_eq!(a.item(&[0, 1]).unwrap(), Scalar::F64(7.0));
        assert_eq!(a.item(&[1, 1]).unwrap(), Scalar::F64(8.0));
        assert_eq!(a.item(&[0, 0]).unwrap(), Scalar::F64(0.0));
    }

    #[test]
    fn sequential_merge_appends_in_partition_order() {
        // Three partial builders, as three scan partitions would produce.
        let mut parts: Vec<ConcatBuilder> = Vec::new();
        let splits = [0..4usize, 4..5, 5..12];
        for r in &splits {
            let mut b =
                ConcatBuilder::new(StorageClass::Max, ElementType::Float64, &[4, 3]).unwrap();
            for i in r.clone() {
                b.push_next(Scalar::F64(i as f64)).unwrap();
            }
            parts.push(b);
        }
        let mut merged = parts.remove(0);
        for p in &parts {
            merged.merge(p).unwrap();
        }
        let mut serial =
            ConcatBuilder::new(StorageClass::Max, ElementType::Float64, &[4, 3]).unwrap();
        for i in 0..12 {
            serial.push_next(Scalar::F64(i as f64)).unwrap();
        }
        assert_eq!(merged.finish().as_blob(), serial.finish().as_blob());
    }

    #[test]
    fn indexed_merge_unions_cells_and_rejects_duplicates() {
        let mut a = ConcatBuilder::new(StorageClass::Short, ElementType::Int32, &[4]).unwrap();
        a.push(&[0], Scalar::I32(10)).unwrap();
        let mut b = ConcatBuilder::new(StorageClass::Short, ElementType::Int32, &[4]).unwrap();
        b.push(&[2], Scalar::I32(30)).unwrap();
        a.merge(&b).unwrap();
        assert_eq!(a.len(), 2);
        let mut dup = ConcatBuilder::new(StorageClass::Short, ElementType::Int32, &[4]).unwrap();
        dup.push(&[0], Scalar::I32(99)).unwrap();
        assert!(a.merge(&dup).is_err());
        let arr = a.finish();
        assert_eq!(arr.item(&[0]).unwrap(), Scalar::I32(10));
        assert_eq!(arr.item(&[2]).unwrap(), Scalar::I32(30));
    }

    #[test]
    fn merge_rejects_mixed_modes_and_shapes() {
        let mut seq = ConcatBuilder::new(StorageClass::Short, ElementType::Int32, &[4]).unwrap();
        seq.push_next(Scalar::I32(1)).unwrap();
        let mut idx = ConcatBuilder::new(StorageClass::Short, ElementType::Int32, &[4]).unwrap();
        idx.push(&[3], Scalar::I32(2)).unwrap();
        assert!(seq.merge(&idx).is_err());
        let mut other_shape =
            ConcatBuilder::new(StorageClass::Short, ElementType::Int32, &[5]).unwrap();
        other_shape.push_next(Scalar::I32(7)).unwrap();
        assert!(seq.merge(&other_shape).is_err());
        // Merging an empty partial is always a no-op.
        let empty = ConcatBuilder::new(StorageClass::Short, ElementType::Int32, &[4]).unwrap();
        seq.merge(&empty).unwrap();
        assert_eq!(seq.len(), 1);
    }

    #[test]
    fn builder_rejects_duplicate_cell() {
        let mut b = ConcatBuilder::new(StorageClass::Short, ElementType::Int32, &[2]).unwrap();
        b.push(&[0], Scalar::I32(1)).unwrap();
        assert!(b.push(&[0], Scalar::I32(2)).is_err());
    }

    #[test]
    fn deserialize_rejects_garbage() {
        assert!(ConcatBuilder::deserialize_state(&[1, 2, 3]).is_err());
        let mut b = ConcatBuilder::new(StorageClass::Short, ElementType::Int32, &[2]).unwrap();
        b.push_next(Scalar::I32(5)).unwrap();
        let mut state = b.serialize_state();
        state.truncate(state.len() - 1);
        assert!(ConcatBuilder::deserialize_state(&state).is_err());
    }
}
