//! Array manipulation operations — the body of the T-SQL function surface.
//!
//! Each submodule implements one family of the original library's UDFs:
//!
//! | module        | T-SQL functions                                        |
//! |---------------|--------------------------------------------------------|
//! | [`subarray`]  | `Subarray` (contiguous subsetting, optional squeeze)   |
//! | [`reshape`]   | `Reshape` (recast dimensions, fixed element count)     |
//! | [`cast`]      | `Cast` / `Raw` (header prefix / strip)                 |
//! | [`convert`]   | base-type and storage-class conversions                |
//! | [`agg`]       | whole-array aggregates (sum, min, max, mean, std, ...) |
//! | [`axis`]      | reductions over one axis (spectrum cube summation)     |
//! | [`elementwise`]| arithmetic, scaling, dot products, norms              |
//! | [`table`]     | `ToTable` / `Concat` (array ⇄ rowset)                  |

pub mod agg;
pub mod axis;
pub mod cast;
pub mod convert;
pub mod elementwise;
pub mod reshape;
pub mod subarray;
pub mod table;
