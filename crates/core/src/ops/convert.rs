//! Base-type and storage-class conversions.
//!
//! "Conversion functions between different base types and storage classes
//! exist." (§5.1) Type conversion follows SQL CAST semantics per element
//! (see [`crate::scalar::Scalar::cast_to`]); storage-class conversion
//! re-encodes the header and revalidates the class limits.

use crate::array::SqlArray;
use crate::element::ElementType;
use crate::errors::Result;
use crate::header::{Header, StorageClass};

/// Converts every element to the target base type, keeping shape and
/// storage class. Fails if any element is not representable (complex with
/// non-zero imaginary part → real).
pub fn convert_type(a: &SqlArray, target: ElementType) -> Result<SqlArray> {
    if a.elem() == target {
        return Ok(a.clone());
    }
    let header = Header::new(a.class(), target, a.shape().clone())?;
    let hlen = header.header_len();
    let mut out = vec![0u8; header.blob_len()];
    header.encode(&mut out);
    let es = target.size();
    for lin in 0..a.count() {
        let v = a.item_linear(lin).cast_to(target)?;
        v.write_le(&mut out[hlen + lin * es..]);
    }
    SqlArray::from_blob(out)
}

/// Converts between the short and max storage classes, preserving type,
/// shape and values. Converting to short revalidates the rank/dimension/
/// page-budget limits and fails if the array does not fit.
pub fn convert_class(a: &SqlArray, target: StorageClass) -> Result<SqlArray> {
    if a.class() == target {
        return Ok(a.clone());
    }
    let header = Header::new(target, a.elem(), a.shape().clone())?;
    let hlen = header.header_len();
    let mut out = vec![0u8; header.blob_len()];
    header.encode(&mut out);
    out[hlen..].copy_from_slice(a.payload());
    SqlArray::from_blob(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::Complex64;
    use crate::errors::ArrayError;
    use crate::scalar::Scalar;

    #[test]
    fn int_to_float_and_back() {
        let a = crate::build::short_vector(&[1i32, -2, 3]).unwrap();
        let f = convert_type(&a, ElementType::Float64).unwrap();
        assert_eq!(f.to_vec::<f64>().unwrap(), vec![1.0, -2.0, 3.0]);
        let back = convert_type(&f, ElementType::Int32).unwrap();
        assert_eq!(back.to_vec::<i32>().unwrap(), vec![1, -2, 3]);
    }

    #[test]
    fn float_to_int_truncates() {
        let a = crate::build::short_vector(&[1.9f64, -1.9]).unwrap();
        let i = convert_type(&a, ElementType::Int16).unwrap();
        assert_eq!(i.to_vec::<i16>().unwrap(), vec![1, -1]);
    }

    #[test]
    fn real_to_complex_widens() {
        let a = crate::build::short_vector(&[2.0f64]).unwrap();
        let c = convert_type(&a, ElementType::Complex64).unwrap();
        assert_eq!(c.item(&[0]).unwrap(), Scalar::C64(Complex64::new(2.0, 0.0)));
    }

    #[test]
    fn complex_to_real_fails_on_nonzero_im() {
        let ok = crate::build::short_vector(&[Complex64::new(1.0, 0.0)]).unwrap();
        assert!(convert_type(&ok, ElementType::Float64).is_ok());
        let bad = crate::build::short_vector(&[Complex64::new(1.0, 0.5)]).unwrap();
        assert!(matches!(
            convert_type(&bad, ElementType::Float64),
            Err(ArrayError::BadConversion { .. })
        ));
    }

    #[test]
    fn same_type_conversion_is_clone() {
        let a = crate::build::short_vector(&[1i64, 2]).unwrap();
        assert_eq!(convert_type(&a, ElementType::Int64).unwrap(), a);
    }

    #[test]
    fn class_round_trip_preserves_values() {
        let a = crate::build::short_vector(&[1.0f32, 2.0, 3.0]).unwrap();
        let m = convert_class(&a, StorageClass::Max).unwrap();
        assert_eq!(m.class(), StorageClass::Max);
        assert_eq!(m.payload(), a.payload());
        let s = convert_class(&m, StorageClass::Short).unwrap();
        assert_eq!(s, a);
    }

    #[test]
    fn to_short_enforces_limits() {
        let big: Vec<f64> = (0..2000).map(|i| i as f64).collect();
        let m = crate::build::max_vector(&big).unwrap();
        assert!(matches!(
            convert_class(&m, StorageClass::Short),
            Err(ArrayError::ShortTooLarge { .. })
        ));
        let deep =
            SqlArray::from_vec(StorageClass::Max, &[1, 1, 1, 1, 1, 1, 2], &[1i8, 2]).unwrap();
        assert!(matches!(
            convert_class(&deep, StorageClass::Short),
            Err(ArrayError::BadRank { .. })
        ));
    }

    #[test]
    fn converting_type_can_shrink_below_page_budget() {
        // 997 doubles fill a short array exactly; converting to f32 halves
        // the payload and must stay valid.
        let data: Vec<f64> = (0..997).map(|i| i as f64).collect();
        let a = crate::build::short_vector(&data).unwrap();
        let f = convert_type(&a, ElementType::Float32).unwrap();
        assert_eq!(f.count(), 997);
        assert_eq!(f.item(&[996]).unwrap(), Scalar::F32(996.0));
    }
}
