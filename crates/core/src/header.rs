//! The binary blob header.
//!
//! "The arrays are stored as plain binary blobs decorated with a very simple
//! header. In case of short arrays the header is 24 bytes long. We have
//! flags to identify the type (short or max) and the underlying data type of
//! the array [...] The number of dimensions, the number of all elements and
//! the sizes of the dimensions (up to six in case of short arrays or any
//! number in case of max arrays) are also stored in the header. Because max
//! arrays support any number of dimensions the header size may vary." (§3.5)
//!
//! Concrete layout (little-endian):
//!
//! ```text
//! short (24 bytes):                    max (16 + 4*rank bytes):
//!   0  u8   flags (bit0 = 0)            0  u8   flags (bit0 = 1)
//!   1  u8   element type code           1  u8   element type code
//!   2  u8   rank (1..=6)                2  u8   reserved (0)
//!   3  u8   reserved (0)                3  u8   reserved (0)
//!   4  u64  element count               4  u32  rank (>= 1)
//!  12  i16  dims[0..6] (unused = 0)     8  u64  element count
//!                                      16  i32  dims[0..rank]
//! ```
//!
//! Short arrays index with `i16` and are capped at 6 dimensions; max arrays
//! index with `i32` with unbounded rank (§3.3).

use crate::element::ElementType;
use crate::errors::{ArrayError, Result};
use crate::shape::Shape;

/// Whether the blob is stored in-page (short) or out-of-page (max).
///
/// Analogous to `VARBINARY(8000)` vs `VARBINARY(MAX)` column types; the
/// storage engine places short blobs inside the row and max blobs in a
/// separate LOB B-tree (see `sqlarray-storage`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StorageClass {
    /// On-page array: ≤ [`SHORT_MAX_BYTES`] total, rank ≤ [`SHORT_MAX_RANK`],
    /// dimensions fit `i16`.
    Short,
    /// Out-of-page array: unlimited rank, dimensions fit `i32`, streamed
    /// through the LOB interface with partial-read support.
    Max,
}

impl StorageClass {
    /// Byte length of the header for an array of the given rank.
    pub const fn header_len(self, rank: usize) -> usize {
        match self {
            StorageClass::Short => SHORT_HEADER_LEN,
            StorageClass::Max => MAX_FIXED_HEADER_LEN + 4 * rank,
        }
    }
}

impl std::fmt::Display for StorageClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            StorageClass::Short => "short",
            StorageClass::Max => "max",
        })
    }
}

/// Fixed header size of short arrays (bytes).
pub const SHORT_HEADER_LEN: usize = 24;
/// Fixed (rank-independent) part of the max-array header (bytes).
pub const MAX_FIXED_HEADER_LEN: usize = 16;
/// Maximum rank of a short array.
pub const SHORT_MAX_RANK: usize = 6;
/// Maximum total blob size (header + payload) of a short array: the
/// `VARBINARY(8000)` in-page budget.
pub const SHORT_MAX_BYTES: usize = 8000;
/// Largest dimension size representable by the short index type (`i16`).
pub const SHORT_MAX_DIM: usize = i16::MAX as usize;
/// Largest dimension size representable by the max index type (`i32`).
pub const MAX_MAX_DIM: usize = i32::MAX as usize;

const FLAG_MAX_CLASS: u8 = 0b0000_0001;
/// Bits 1..7 of the flag byte are reserved and must be zero in version 1.
const FLAG_KNOWN_MASK: u8 = 0b0000_0001;

/// Decoded array header.
#[derive(Debug, Clone, PartialEq)]
pub struct Header {
    /// Storage class (short = in-page, max = out-of-page).
    pub class: StorageClass,
    /// Element base type.
    pub elem: ElementType,
    /// Array shape.
    pub shape: Shape,
}

impl Header {
    /// Builds and validates a header for a new array.
    pub fn new(class: StorageClass, elem: ElementType, shape: Shape) -> Result<Header> {
        let h = Header { class, elem, shape };
        h.validate()?;
        Ok(h)
    }

    /// Checks the storage-class constraints (rank, index width, page budget).
    pub fn validate(&self) -> Result<()> {
        let rank = self.shape.rank();
        match self.class {
            StorageClass::Short => {
                if rank > SHORT_MAX_RANK {
                    return Err(ArrayError::BadRank {
                        rank,
                        max: SHORT_MAX_RANK,
                    });
                }
                for (axis, &d) in self.shape.dims().iter().enumerate() {
                    if d > SHORT_MAX_DIM {
                        return Err(ArrayError::BadDimension { dim: axis, size: d });
                    }
                }
                let total = self.blob_len();
                if total > SHORT_MAX_BYTES {
                    return Err(ArrayError::ShortTooLarge {
                        bytes: total,
                        limit: SHORT_MAX_BYTES,
                    });
                }
            }
            StorageClass::Max => {
                for (axis, &d) in self.shape.dims().iter().enumerate() {
                    if d > MAX_MAX_DIM {
                        return Err(ArrayError::BadDimension { dim: axis, size: d });
                    }
                }
            }
        }
        Ok(())
    }

    /// Header length in bytes.
    #[inline]
    pub fn header_len(&self) -> usize {
        self.class.header_len(self.shape.rank())
    }

    /// Payload length in bytes (`count * elem_size`).
    #[inline]
    pub fn payload_len(&self) -> usize {
        self.shape.count() * self.elem.size()
    }

    /// Total blob length (header + payload).
    #[inline]
    pub fn blob_len(&self) -> usize {
        self.header_len() + self.payload_len()
    }

    /// Serializes the header into `out`, which must be at least
    /// [`header_len`](Self::header_len) bytes.
    pub fn encode(&self, out: &mut [u8]) {
        let dims = self.shape.dims();
        match self.class {
            StorageClass::Short => {
                out[0] = 0;
                out[1] = self.elem.code();
                out[2] = dims.len() as u8;
                out[3] = 0;
                out[4..12].copy_from_slice(&(self.shape.count() as u64).to_le_bytes());
                for slot in 0..SHORT_MAX_RANK {
                    let d = dims.get(slot).copied().unwrap_or(0) as i16;
                    out[12 + 2 * slot..14 + 2 * slot].copy_from_slice(&d.to_le_bytes());
                }
            }
            StorageClass::Max => {
                out[0] = FLAG_MAX_CLASS;
                out[1] = self.elem.code();
                out[2] = 0;
                out[3] = 0;
                out[4..8].copy_from_slice(&(dims.len() as u32).to_le_bytes());
                out[8..16].copy_from_slice(&(self.shape.count() as u64).to_le_bytes());
                for (slot, &d) in dims.iter().enumerate() {
                    out[16 + 4 * slot..20 + 4 * slot].copy_from_slice(&(d as i32).to_le_bytes());
                }
            }
        }
    }

    /// Serializes into a fresh buffer of exactly the header length.
    pub fn encode_vec(&self) -> Vec<u8> {
        let mut v = vec![0u8; self.header_len()];
        self.encode(&mut v);
        v
    }

    /// Decodes and validates a header from the start of `buf`.
    ///
    /// `buf` only needs to contain the header bytes, not the payload — this
    /// is what lets the max-array stream interface fetch the header first
    /// and then issue targeted partial reads for the payload.
    pub fn decode(buf: &[u8]) -> Result<Header> {
        if buf.len() < 4 {
            return Err(ArrayError::HeaderTooShort {
                got: buf.len(),
                need: 4,
            });
        }
        let flags = buf[0];
        if flags & !FLAG_KNOWN_MASK != 0 {
            return Err(ArrayError::BadFlags(flags));
        }
        let elem = ElementType::from_code(buf[1])?;
        if flags & FLAG_MAX_CLASS == 0 {
            // Short header.
            if buf.len() < SHORT_HEADER_LEN {
                return Err(ArrayError::HeaderTooShort {
                    got: buf.len(),
                    need: SHORT_HEADER_LEN,
                });
            }
            let rank = buf[2] as usize;
            if rank == 0 || rank > SHORT_MAX_RANK {
                return Err(ArrayError::BadRank {
                    rank,
                    max: SHORT_MAX_RANK,
                });
            }
            let count = crate::le::u64_at(buf, 4) as usize;
            let mut dims = Vec::with_capacity(rank);
            for slot in 0..rank {
                let d = crate::le::i16_at(buf, 12 + 2 * slot);
                if d <= 0 {
                    return Err(ArrayError::BadDimension {
                        dim: slot,
                        size: d.max(0) as usize,
                    });
                }
                dims.push(d as usize);
            }
            let shape = Shape::new(&dims)?;
            if shape.count() != count {
                return Err(ArrayError::CountMismatch {
                    dims_product: shape.count(),
                    count,
                });
            }
            Header::new(StorageClass::Short, elem, shape)
        } else {
            // Max header.
            if buf.len() < MAX_FIXED_HEADER_LEN {
                return Err(ArrayError::HeaderTooShort {
                    got: buf.len(),
                    need: MAX_FIXED_HEADER_LEN,
                });
            }
            let rank = crate::le::u32_at(buf, 4) as usize;
            if rank == 0 {
                return Err(ArrayError::BadRank {
                    rank,
                    max: usize::MAX,
                });
            }
            let need = MAX_FIXED_HEADER_LEN + 4 * rank;
            if buf.len() < need {
                return Err(ArrayError::HeaderTooShort {
                    got: buf.len(),
                    need,
                });
            }
            let count = crate::le::u64_at(buf, 8) as usize;
            let mut dims = Vec::with_capacity(rank);
            for slot in 0..rank {
                let d = crate::le::i32_at(buf, 16 + 4 * slot);
                if d <= 0 {
                    return Err(ArrayError::BadDimension {
                        dim: slot,
                        size: d.max(0) as usize,
                    });
                }
                dims.push(d as usize);
            }
            let shape = Shape::new(&dims)?;
            if shape.count() != count {
                return Err(ArrayError::CountMismatch {
                    dims_product: shape.count(),
                    count,
                });
            }
            Header::new(StorageClass::Max, elem, shape)
        }
    }

    /// Plans the blob-absolute byte runs covering the rectangular region
    /// `[offset, offset + size)` — the region → byte-run planner that
    /// `Subarray` pushdown hands to a vectored source read.
    ///
    /// Each run is `(byte_offset, byte_len)` with the header length
    /// already folded into the offsets; runs are emitted in ascending
    /// order (reusing [`Shape::region_runs`], so full leading axes fuse
    /// into long contiguous ranges) and cover exactly the region's
    /// payload bytes. The region is bounds-checked against the shape.
    pub fn region_byte_runs(
        &self,
        offset: &[usize],
        size: &[usize],
    ) -> Result<Vec<(usize, usize)>> {
        self.shape.validate_subarray(offset, size)?;
        let es = self.elem.size();
        let hlen = self.header_len();
        Ok(self
            .shape
            .region_runs(offset, size)
            .map(|(start, len)| (hlen + start * es, len * es))
            .collect())
    }

    /// How many leading bytes of a blob must be fetched before
    /// [`decode`](Self::decode) can succeed. For short blobs this is the
    /// whole fixed header; for max blobs the fixed part is enough to learn
    /// the rank, after which the caller extends the read.
    pub fn probe_len(buf: &[u8]) -> Result<usize> {
        if buf.is_empty() {
            return Err(ArrayError::HeaderTooShort { got: 0, need: 4 });
        }
        if buf[0] & FLAG_MAX_CLASS == 0 {
            Ok(SHORT_HEADER_LEN)
        } else {
            if buf.len() < 8 {
                return Err(ArrayError::HeaderTooShort {
                    got: buf.len(),
                    need: 8,
                });
            }
            let rank = crate::le::u32_at(buf, 4) as usize;
            Ok(MAX_FIXED_HEADER_LEN + 4 * rank)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape(dims: &[usize]) -> Shape {
        Shape::new(dims).unwrap()
    }

    #[test]
    fn short_header_is_24_bytes() {
        let h = Header::new(StorageClass::Short, ElementType::Float64, shape(&[5])).unwrap();
        assert_eq!(h.header_len(), 24);
        assert_eq!(h.encode_vec().len(), 24);
        assert_eq!(h.blob_len(), 24 + 5 * 8);
    }

    #[test]
    fn max_header_grows_with_rank() {
        for rank in 1..10 {
            let dims = vec![2usize; rank];
            let h = Header::new(StorageClass::Max, ElementType::Int8, shape(&dims)).unwrap();
            assert_eq!(h.header_len(), 16 + 4 * rank);
        }
    }

    #[test]
    fn round_trip_short() {
        let h = Header::new(StorageClass::Short, ElementType::Int16, shape(&[4, 3, 2])).unwrap();
        let buf = h.encode_vec();
        let d = Header::decode(&buf).unwrap();
        assert_eq!(d, h);
    }

    #[test]
    fn round_trip_max_high_rank() {
        let h = Header::new(
            StorageClass::Max,
            ElementType::Complex64,
            shape(&[2, 3, 4, 5, 6, 7, 8]),
        )
        .unwrap();
        let buf = h.encode_vec();
        assert_eq!(Header::decode(&buf).unwrap(), h);
    }

    #[test]
    fn short_rank_limit_is_six() {
        let ok = Header::new(
            StorageClass::Short,
            ElementType::Int8,
            shape(&[2, 2, 2, 2, 2, 2]),
        );
        assert!(ok.is_ok());
        let err = Header::new(
            StorageClass::Short,
            ElementType::Int8,
            shape(&[2, 2, 2, 2, 2, 2, 2]),
        );
        assert!(matches!(err, Err(ArrayError::BadRank { rank: 7, max: 6 })));
    }

    #[test]
    fn short_page_budget_enforced() {
        // 997 doubles -> 24 + 7976 = 8000 bytes: exactly at the limit.
        let ok = Header::new(StorageClass::Short, ElementType::Float64, shape(&[997]));
        assert!(ok.is_ok());
        let err = Header::new(StorageClass::Short, ElementType::Float64, shape(&[998]));
        assert!(matches!(err, Err(ArrayError::ShortTooLarge { .. })));
    }

    #[test]
    fn short_dim_must_fit_i16() {
        // A one-byte element type lets a single dimension reach the i16 cap
        // before the page budget does... but 8000 bytes < 32767, so craft a
        // rank-2 case where one dim is large.
        let err = Header::new(
            StorageClass::Max,
            ElementType::Int8,
            shape(&[MAX_MAX_DIM + 1]),
        );
        assert!(matches!(err, Err(ArrayError::BadDimension { .. })));
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Header::decode(&[]).is_err());
        assert!(Header::decode(&[0xFF, 1, 1, 0]).is_err()); // bad flags
        assert!(Header::decode(&[0, 42, 1, 0]).is_err()); // bad type code

        // Truncated short header.
        let h = Header::new(StorageClass::Short, ElementType::Int32, shape(&[3])).unwrap();
        let buf = h.encode_vec();
        assert!(matches!(
            Header::decode(&buf[..10]),
            Err(ArrayError::HeaderTooShort { .. })
        ));
    }

    #[test]
    fn decode_rejects_count_mismatch() {
        let h = Header::new(StorageClass::Short, ElementType::Int32, shape(&[3, 2])).unwrap();
        let mut buf = h.encode_vec();
        buf[4..12].copy_from_slice(&7u64.to_le_bytes()); // corrupt the count
        assert!(matches!(
            Header::decode(&buf),
            Err(ArrayError::CountMismatch {
                dims_product: 6,
                count: 7
            })
        ));
    }

    #[test]
    fn decode_rejects_zero_rank() {
        let h = Header::new(StorageClass::Max, ElementType::Int32, shape(&[3])).unwrap();
        let mut buf = h.encode_vec();
        buf[4..8].copy_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            Header::decode(&buf),
            Err(ArrayError::BadRank { .. })
        ));
    }

    #[test]
    fn probe_len_short_and_max() {
        let hs = Header::new(StorageClass::Short, ElementType::Int8, shape(&[2])).unwrap();
        assert_eq!(Header::probe_len(&hs.encode_vec()).unwrap(), 24);
        let hm = Header::new(StorageClass::Max, ElementType::Int8, shape(&[2, 2, 2])).unwrap();
        assert_eq!(Header::probe_len(&hm.encode_vec()).unwrap(), 16 + 12);
        // The probe only needs the first 8 bytes for max arrays.
        assert_eq!(Header::probe_len(&hm.encode_vec()[..8]).unwrap(), 16 + 12);
    }

    #[test]
    fn region_byte_runs_cover_the_region_in_order() {
        let h = Header::new(StorageClass::Max, ElementType::Float64, shape(&[6, 5, 4])).unwrap();
        let runs = h.region_byte_runs(&[1, 2, 0], &[3, 2, 4]).unwrap();
        let total: usize = runs.iter().map(|r| r.1).sum();
        assert_eq!(total, 3 * 2 * 4 * 8);
        let mut prev_end = h.header_len();
        for &(off, len) in &runs {
            assert!(off >= prev_end, "runs out of order or overlapping");
            assert!(off + len <= h.blob_len());
            prev_end = off + len;
        }
        // Full leading axes fuse into one long run.
        let fused = h.region_byte_runs(&[0, 0, 1], &[6, 5, 2]).unwrap();
        assert_eq!(fused, vec![(h.header_len() + 6 * 5 * 8, 6 * 5 * 2 * 8)]);
        // Bounds are enforced.
        assert!(h.region_byte_runs(&[4, 0, 0], &[3, 1, 1]).is_err());
    }

    #[test]
    fn negative_dim_rejected_on_decode() {
        let h = Header::new(StorageClass::Max, ElementType::Int8, shape(&[2, 2])).unwrap();
        let mut buf = h.encode_vec();
        buf[16..20].copy_from_slice(&(-5i32).to_le_bytes());
        assert!(matches!(
            Header::decode(&buf),
            Err(ArrayError::BadDimension { dim: 0, .. })
        ));
    }
}
