//! Strongly typed array views.
//!
//! [`TypedArray<T>`] wraps a [`SqlArray`] whose element type is known to be
//! `T`, eliminating per-call tag checks in kernels. It corresponds to the
//! per-type function schemas of the original library (`FloatArray.*` only
//! accepts double arrays; the check happens once, when the blob enters the
//! schema).

use crate::array::SqlArray;
use crate::element::Element;
use crate::errors::{ArrayError, Result};
use crate::header::StorageClass;
use std::marker::PhantomData;

/// A [`SqlArray`] with a compile-time element type.
#[derive(Debug, Clone, PartialEq)]
pub struct TypedArray<T: Element> {
    inner: SqlArray,
    _t: PhantomData<T>,
}

impl<T: Element> TypedArray<T> {
    /// Wraps a dynamically typed array, verifying the element type once.
    pub fn new(inner: SqlArray) -> Result<Self> {
        inner.expect_type::<T>()?;
        Ok(TypedArray {
            inner,
            _t: PhantomData,
        })
    }

    /// Builds directly from data (column-major order).
    pub fn from_vec(class: StorageClass, dims: &[usize], data: &[T]) -> Result<Self> {
        Ok(TypedArray {
            inner: SqlArray::from_vec(class, dims, data)?,
            _t: PhantomData,
        })
    }

    /// The underlying dynamic array.
    #[inline]
    pub fn as_dyn(&self) -> &SqlArray {
        &self.inner
    }

    /// Unwraps back into the dynamic array.
    #[inline]
    pub fn into_dyn(self) -> SqlArray {
        self.inner
    }

    /// Per-dimension sizes.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        self.inner.dims()
    }

    /// Total element count.
    #[inline]
    pub fn count(&self) -> usize {
        self.inner.count()
    }

    /// Typed multi-index read.
    pub fn get(&self, idx: &[usize]) -> Result<T> {
        let lin = self.inner.shape().linear_index(idx)?;
        Ok(self.inner.item_linear_as_unchecked::<T>(lin))
    }

    /// Typed linear read (column-major offset); bounds-checked.
    pub fn get_linear(&self, lin: usize) -> Result<T> {
        if lin >= self.count() {
            return Err(ArrayError::IndexOutOfBounds {
                axis: 0,
                index: lin,
                size: self.count(),
            });
        }
        Ok(self.inner.item_linear_as_unchecked::<T>(lin))
    }

    /// Typed multi-index write.
    pub fn set(&mut self, idx: &[usize], value: T) -> Result<()> {
        let lin = self.inner.shape().linear_index(idx)?;
        self.inner.set_linear(lin, value)
    }

    /// Iterates elements in storage (column-major) order.
    pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
        (0..self.count()).map(move |lin| self.inner.item_linear_as_unchecked::<T>(lin))
    }

    /// Copies all elements out.
    pub fn to_vec(&self) -> Vec<T> {
        self.iter().collect()
    }

    /// Applies `f` elementwise, producing a new array of the same shape and
    /// class.
    pub fn map<U: Element>(&self, mut f: impl FnMut(T) -> U) -> Result<TypedArray<U>> {
        let data: Vec<U> = self.iter().map(&mut f).collect();
        // A short array can grow beyond the page budget if U is wider than
        // T; fall back to the max class transparently in that case.
        let class = self.inner.class();
        match SqlArray::from_vec(class, self.dims(), &data) {
            Ok(a) => TypedArray::new(a),
            Err(ArrayError::ShortTooLarge { .. }) => {
                TypedArray::new(SqlArray::from_vec(StorageClass::Max, self.dims(), &data)?)
            }
            Err(e) => Err(e),
        }
    }
}

impl<T: Element> TryFrom<SqlArray> for TypedArray<T> {
    type Error = ArrayError;

    fn try_from(a: SqlArray) -> Result<Self> {
        TypedArray::new(a)
    }
}

impl<T: Element> From<TypedArray<T>> for SqlArray {
    fn from(a: TypedArray<T>) -> SqlArray {
        a.into_dyn()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrap_checks_type_once() {
        let a = SqlArray::from_vec(StorageClass::Short, &[3], &[1i32, 2, 3]).unwrap();
        assert!(TypedArray::<i32>::new(a.clone()).is_ok());
        assert!(matches!(
            TypedArray::<f64>::new(a),
            Err(ArrayError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn get_set_roundtrip() {
        let mut t =
            TypedArray::<f64>::from_vec(StorageClass::Short, &[2, 2], &[1.0, 2.0, 3.0, 4.0])
                .unwrap();
        t.set(&[0, 1], 9.5).unwrap();
        assert_eq!(t.get(&[0, 1]).unwrap(), 9.5);
        assert_eq!(t.get(&[1, 0]).unwrap(), 2.0);
        assert!(t.get(&[2, 0]).is_err());
    }

    #[test]
    fn get_linear_bounds() {
        let t = TypedArray::<i16>::from_vec(StorageClass::Short, &[3], &[7, 8, 9]).unwrap();
        assert_eq!(t.get_linear(2).unwrap(), 9);
        assert!(t.get_linear(3).is_err());
    }

    #[test]
    fn map_changes_type() {
        let t = TypedArray::<i32>::from_vec(StorageClass::Short, &[3], &[1, 2, 3]).unwrap();
        let d = t.map(|v| v as f64 * 0.5).unwrap();
        assert_eq!(d.to_vec(), vec![0.5, 1.0, 1.5]);
        assert_eq!(d.as_dyn().class(), StorageClass::Short);
    }

    #[test]
    fn map_widening_overflows_to_max_class() {
        // 900 i64 values are 7200 bytes + 24 = fits short; mapping to
        // complex128 doubles the payload beyond 8000 bytes, so the result
        // silently becomes a max array.
        let data: Vec<i64> = (0..900).collect();
        let t = TypedArray::<i64>::from_vec(StorageClass::Short, &[900], &data).unwrap();
        let c = t
            .map(|v| crate::complex::Complex64::new(v as f64, 0.0))
            .unwrap();
        assert_eq!(c.as_dyn().class(), StorageClass::Max);
        assert_eq!(c.count(), 900);
    }

    #[test]
    fn conversion_traits() {
        let t = TypedArray::<f32>::from_vec(StorageClass::Short, &[2], &[1.0, 2.0]).unwrap();
        let d: SqlArray = t.clone().into();
        let back: TypedArray<f32> = d.try_into().unwrap();
        assert_eq!(back, t);
    }
}
