//! Textual form of arrays.
//!
//! "Arrays can also be converted to and from strings" (§5.1). The grammar:
//!
//! ```text
//! array  := type '[' dims ']' '{' items '}'
//! dims   := usize (',' usize)*
//! items  := scalar (',' scalar)*        -- column-major order
//! ```
//!
//! Example: `float64[2,3]{1,2,3,4,5,6}`. The storage class is not part of
//! the text form; parsing picks it automatically
//! (short when it fits, max otherwise), matching the original library's
//! conversion functions which exist for both schemas.

use crate::array::SqlArray;
use crate::element::ElementType;
use crate::errors::{ArrayError, Result};
use crate::scalar::Scalar;
use std::fmt;

/// Renders an array in the canonical text form.
pub fn to_string(a: &SqlArray) -> String {
    let mut out = String::new();
    // lint:allow(L005, reason = "fmt::Write into a String is infallible; the Err arm is unreachable for this writer")
    render(a, &mut out).expect("string formatting cannot fail");
    out
}

fn render(a: &SqlArray, out: &mut impl fmt::Write) -> fmt::Result {
    write!(out, "{}[", a.elem())?;
    for (i, d) in a.dims().iter().enumerate() {
        if i > 0 {
            out.write_char(',')?;
        }
        write!(out, "{d}")?;
    }
    out.write_str("]{")?;
    for (i, s) in a.iter_scalars().enumerate() {
        if i > 0 {
            out.write_char(',')?;
        }
        write!(out, "{s}")?;
    }
    out.write_char('}')
}

/// Parses the canonical text form back into an array. The storage class is
/// chosen automatically from the decoded size.
pub fn from_string(s: &str) -> Result<SqlArray> {
    let s = s.trim();
    let bad = |msg: &str| ArrayError::Parse(format!("{msg} in `{s}`"));

    let lbrack = s.find('[').ok_or_else(|| bad("missing `[`"))?;
    let rbrack = s.find(']').ok_or_else(|| bad("missing `]`"))?;
    if rbrack < lbrack {
        return Err(bad("`]` before `[`"));
    }
    let elem: ElementType = s[..lbrack].trim().parse()?;

    let dims: Vec<usize> = s[lbrack + 1..rbrack]
        .split(',')
        .map(|d| d.trim().parse::<usize>().map_err(|_| bad("bad dimension")))
        .collect::<Result<_>>()?;

    let rest = s[rbrack + 1..].trim();
    let inner = rest
        .strip_prefix('{')
        .and_then(|r| r.strip_suffix('}'))
        .ok_or_else(|| bad("missing `{...}` item list"))?;

    // Complex items contain no commas in our format (`1+2i`), so a flat
    // split is unambiguous.
    let items: Vec<Scalar> = if inner.trim().is_empty() {
        Vec::new()
    } else {
        inner
            .split(',')
            .map(|tok| Scalar::parse(elem, tok))
            .collect::<Result<_>>()?
    };

    let class = SqlArray::auto_class(elem, &dims)?;
    let mut a = SqlArray::zeros(class, elem, &dims)?;
    if items.len() != a.count() {
        return Err(ArrayError::CountMismatch {
            dims_product: a.count(),
            count: items.len(),
        });
    }
    for (lin, item) in items.into_iter().enumerate() {
        let idx = a.shape().multi_index(lin);
        a.update_item(&idx, item)?;
    }
    Ok(a)
}

impl fmt::Display for SqlArray {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        render(self, f)
    }
}

impl std::str::FromStr for SqlArray {
    type Err = ArrayError;

    fn from_str(s: &str) -> Result<Self> {
        from_string(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{matrix, short_vector};
    use crate::complex::Complex64;
    use crate::header::StorageClass;

    #[test]
    fn vector_to_string() {
        let a = short_vector(&[1.0f64, 2.5, -3.0]).unwrap();
        assert_eq!(to_string(&a), "float64[3]{1,2.5,-3}");
    }

    #[test]
    fn matrix_to_string_is_column_major() {
        let m = matrix(StorageClass::Short, 2, 2, &[1i32, 2, 3, 4]).unwrap();
        assert_eq!(to_string(&m), "int32[2,2]{1,3,2,4}");
    }

    #[test]
    fn round_trip_real() {
        let a = short_vector(&[1.5f32, -0.25, 1e10]).unwrap();
        let s = to_string(&a);
        let b: SqlArray = s.parse().unwrap();
        assert_eq!(a.to_vec::<f32>().unwrap(), b.to_vec::<f32>().unwrap());
        assert_eq!(a.dims(), b.dims());
        assert_eq!(a.elem(), b.elem());
    }

    #[test]
    fn round_trip_complex() {
        let a = short_vector(&[Complex64::new(1.0, -2.0), Complex64::new(0.0, 3.0)]).unwrap();
        let s = to_string(&a);
        assert_eq!(s, "complex64[2]{1-2i,0+3i}");
        let b: SqlArray = s.parse().unwrap();
        assert_eq!(
            b.to_vec::<Complex64>().unwrap(),
            a.to_vec::<Complex64>().unwrap()
        );
    }

    #[test]
    fn parse_with_whitespace() {
        let b: SqlArray = " int16 [ 2 , 2 ] { 1 , 2 , 3 , 4 } ".parse().unwrap();
        assert_eq!(b.dims(), &[2, 2]);
        assert_eq!(b.to_vec::<i16>().unwrap(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn parse_picks_class_by_size() {
        let small: SqlArray = "int8[2]{1,2}".parse().unwrap();
        assert_eq!(small.class(), StorageClass::Short);
        let big_items: String = (0..3000)
            .map(|i| (i % 100).to_string())
            .collect::<Vec<_>>()
            .join(",");
        let big: SqlArray = format!("float64[3000]{{{big_items}}}").parse().unwrap();
        assert_eq!(big.class(), StorageClass::Max);
    }

    #[test]
    fn parse_errors() {
        assert!("float64{1,2}".parse::<SqlArray>().is_err()); // no dims
        assert!("float64[2]{1}".parse::<SqlArray>().is_err()); // count
        assert!("nosuch[1]{1}".parse::<SqlArray>().is_err()); // type
        assert!("float64[2]1,2".parse::<SqlArray>().is_err()); // braces
        assert!("float64[0]{}".parse::<SqlArray>().is_err()); // zero dim
        assert!("int32[2]{a,b}".parse::<SqlArray>().is_err()); // items
    }

    #[test]
    fn display_trait_matches_helper() {
        let a = short_vector(&[7i64]).unwrap();
        assert_eq!(format!("{a}"), to_string(&a));
    }
}
