//! Property-based tests for the transforms.

use proptest::prelude::*;
use sqlarray_core::Complex64;
use sqlarray_fft::{fft, fftn, ifft, ifftn_normalized, irfft, rfft, Direction};

fn signal(n: usize, seed: u64) -> Vec<Complex64> {
    let mut s = seed | 1;
    (0..n)
        .map(|_| {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let re = ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0;
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let im = ((s >> 33) as f64 / (1u64 << 31) as f64) - 1.0;
            Complex64::new(re, im)
        })
        .collect()
}

proptest! {
    /// `ifft(fft(x)) = x` for any length (radix-2 and Bluestein paths).
    #[test]
    fn round_trip_any_length(n in 1usize..300, seed in any::<u64>()) {
        let x = signal(n, seed);
        let back = ifft(&fft(&x));
        for (a, b) in back.iter().zip(&x) {
            prop_assert!((*a - *b).abs() < 1e-8 * (n as f64));
        }
    }

    /// Parseval: energy is conserved (with the 1/n normalization).
    #[test]
    fn parseval(n in 1usize..200, seed in any::<u64>()) {
        let x = signal(n, seed);
        let spec = fft(&x);
        let te: f64 = x.iter().map(|v| v.norm_sqr()).sum();
        let fe: f64 = spec.iter().map(|v| v.norm_sqr()).sum::<f64>() / n as f64;
        prop_assert!((te - fe).abs() < 1e-8 * (1.0 + te));
    }

    /// Linearity: F(ax + by) = aF(x) + bF(y).
    #[test]
    fn linearity(n in 2usize..128, seed in any::<u64>(), a in -3.0f64..3.0, b in -3.0f64..3.0) {
        let x = signal(n, seed);
        let y = signal(n, seed.wrapping_add(99));
        let combo: Vec<Complex64> = x.iter().zip(&y).map(|(&p, &q)| p.scale(a) + q.scale(b)).collect();
        let fc = fft(&combo);
        let fx = fft(&x);
        let fy = fft(&y);
        for k in 0..n {
            let expect = fx[k].scale(a) + fy[k].scale(b);
            prop_assert!((fc[k] - expect).abs() < 1e-7 * (n as f64));
        }
    }

    /// A circular shift multiplies the spectrum by a phase only: bin
    /// magnitudes are invariant.
    #[test]
    fn shift_preserves_magnitudes(n in 2usize..128, shift in 0usize..64, seed in any::<u64>()) {
        let x = signal(n, seed);
        let shift = shift % n;
        let shifted: Vec<Complex64> = (0..n).map(|i| x[(i + shift) % n]).collect();
        let fx = fft(&x);
        let fs = fft(&shifted);
        for k in 0..n {
            prop_assert!((fx[k].abs() - fs[k].abs()).abs() < 1e-7 * (n as f64));
        }
    }

    /// Real-transform round trip for even and odd lengths.
    #[test]
    fn rfft_round_trip(n in 2usize..200, seed in any::<u64>()) {
        let x: Vec<f64> = signal(n, seed).iter().map(|c| c.re).collect();
        let back = irfft(&rfft(&x), n);
        for (a, b) in back.iter().zip(&x) {
            prop_assert!((a - b).abs() < 1e-8 * (n as f64));
        }
    }

    /// n-D round trip over random small lattices.
    #[test]
    fn ndim_round_trip(
        dims in prop::collection::vec(1usize..8, 1..4),
        seed in any::<u64>(),
    ) {
        let count: usize = dims.iter().product();
        let x = signal(count, seed);
        let mut data = x.clone();
        fftn(&mut data, &dims, Direction::Forward);
        ifftn_normalized(&mut data, &dims);
        for (a, b) in data.iter().zip(&x) {
            prop_assert!((*a - *b).abs() < 1e-8 * (count as f64));
        }
    }
}
