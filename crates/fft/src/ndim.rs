//! Multidimensional transforms over column-major buffers.
//!
//! Applies a 1-D transform along every axis in turn, gathering strided
//! lines into a contiguous scratch buffer. The layout contract is the
//! array blob's: column-major, first index fastest — so an `n₀×n₁×n₂`
//! max-array payload transforms in place with no reshaping.

use crate::plan::{Direction, Plan};
use sqlarray_core::Complex64;

/// In-place n-dimensional DFT of column-major `data` with shape `dims`.
/// Unnormalized in both directions (like FFTW): a forward+inverse round
/// trip scales by `Πdims`.
pub fn fftn(data: &mut [Complex64], dims: &[usize], dir: Direction) {
    let count: usize = dims.iter().product();
    assert_eq!(data.len(), count, "buffer must hold the whole lattice");
    if count == 0 {
        return;
    }

    let mut stride = 1usize;
    for &n in dims {
        if n > 1 {
            transform_axis(data, count, n, stride, dir);
        }
        stride *= n;
    }
}

/// Transforms every length-`n` line along the axis with the given stride.
fn transform_axis(data: &mut [Complex64], count: usize, n: usize, stride: usize, dir: Direction) {
    let plan = Plan::new(n, dir);
    let mut line = vec![Complex64::ZERO; n];
    let lines = count / n;
    // Enumerate line origins: indices whose coordinate on this axis is 0.
    // For the axis with extent n and stride s, origins are
    // base = (block * s * n) + offset, offset in [0, s).
    let block_len = stride * n;
    let blocks = count / block_len;
    debug_assert_eq!(blocks * stride, lines);
    for b in 0..blocks {
        for off in 0..stride {
            let base = b * block_len + off;
            for (k, slot) in line.iter_mut().enumerate() {
                *slot = data[base + k * stride];
            }
            plan.execute_inplace(&mut line);
            for (k, &v) in line.iter().enumerate() {
                data[base + k * stride] = v;
            }
        }
    }
}

/// Normalized inverse n-D transform: `ifftn(fftn(x)) = x`.
pub fn ifftn_normalized(data: &mut [Complex64], dims: &[usize]) {
    fftn(data, dims, Direction::Inverse);
    let scale = 1.0 / dims.iter().product::<usize>() as f64;
    for v in data.iter_mut() {
        *v = v.scale(scale);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lattice(dims: &[usize]) -> Vec<Complex64> {
        let count: usize = dims.iter().product();
        (0..count)
            .map(|i| Complex64::new((i as f64 * 0.13).sin(), (i as f64 * 0.07).cos()))
            .collect()
    }

    #[test]
    fn round_trip_2d_and_3d() {
        for dims in [&[4usize, 8][..], &[3, 5, 7][..], &[8, 8, 8][..]] {
            let orig = lattice(dims);
            let mut data = orig.clone();
            fftn(&mut data, dims, Direction::Forward);
            ifftn_normalized(&mut data, dims);
            for (a, b) in data.iter().zip(&orig) {
                assert!((*a - *b).abs() < 1e-9, "dims {dims:?}");
            }
        }
    }

    #[test]
    fn separable_2d_matches_manual_rows_then_cols() {
        // 2-D DFT = 1-D over columns then 1-D over rows (any order).
        let dims = [4usize, 4];
        let orig = lattice(&dims);
        let mut fast = orig.clone();
        fftn(&mut fast, &dims, Direction::Forward);

        // Manual: axis 0 (contiguous columns), then axis 1 (strided).
        let mut manual = orig.clone();
        let plan = Plan::new(4, Direction::Forward);
        for c in 0..4 {
            let mut col: Vec<Complex64> = (0..4).map(|r| manual[c * 4 + r]).collect();
            plan.execute_inplace(&mut col);
            for r in 0..4 {
                manual[c * 4 + r] = col[r];
            }
        }
        for r in 0..4 {
            let mut row: Vec<Complex64> = (0..4).map(|c| manual[c * 4 + r]).collect();
            plan.execute_inplace(&mut row);
            for c in 0..4 {
                manual[c * 4 + r] = row[c];
            }
        }
        for (a, b) in fast.iter().zip(&manual) {
            assert!((*a - *b).abs() < 1e-10);
        }
    }

    #[test]
    fn plane_wave_concentrates_in_one_3d_bin() {
        let n = 8usize;
        let dims = [n, n, n];
        let (kx, ky, kz) = (2usize, 3, 1);
        let tau = 2.0 * std::f64::consts::PI / n as f64;
        let mut data = vec![Complex64::ZERO; n * n * n];
        for z in 0..n {
            for y in 0..n {
                for x in 0..n {
                    data[x + n * y + n * n * z] =
                        Complex64::cis(tau * (kx * x + ky * y + kz * z) as f64);
                }
            }
        }
        fftn(&mut data, &dims, Direction::Forward);
        let hot = kx + n * ky + n * n * kz;
        let total = (n * n * n) as f64;
        assert!((data[hot].abs() - total).abs() < 1e-6);
        for (i, v) in data.iter().enumerate() {
            if i != hot {
                assert!(v.abs() < 1e-6, "leak at {i}");
            }
        }
    }

    #[test]
    fn unit_axes_are_skipped_gracefully() {
        let dims = [1usize, 6, 1];
        let orig = lattice(&dims);
        let mut data = orig.clone();
        fftn(&mut data, &dims, Direction::Forward);
        // Equivalent to a 1-D transform of length 6.
        let expected = crate::plan::fft(&orig);
        for (a, b) in data.iter().zip(&expected) {
            assert!((*a - *b).abs() < 1e-10);
        }
    }

    #[test]
    #[should_panic(expected = "whole lattice")]
    fn shape_mismatch_panics() {
        let mut data = vec![Complex64::ZERO; 5];
        fftn(&mut data, &[2, 3], Direction::Forward);
    }
}
