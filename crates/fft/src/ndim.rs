//! Multidimensional transforms over column-major buffers.
//!
//! Applies a 1-D transform along every axis in turn, gathering strided
//! lines into a contiguous scratch buffer. The layout contract is the
//! array blob's: column-major, first index fastest — so an `n₀×n₁×n₂`
//! max-array payload transforms in place with no reshaping.
//!
//! Lattices of at least [`PARALLEL_MIN_ELEMS`] points run each axis pass
//! with **row-batch parallelism**: the independent 1-D lines of the axis
//! are fanned over `parallel::configured_dop()` workers through
//! [`scoped_for_ranges_mut`], the workspace chunking rule. Every line is
//! transformed by an identical [`Plan`], so the result is bit-identical
//! to the serial loop at any DOP — and inside a
//! `parallel::with_serial_kernels` scope (e.g. a scan worker evaluating
//! FFT UDFs) the configured DOP pins to 1 and the serial path runs.

use crate::plan::{Direction, Plan};
use sqlarray_core::parallel::{configured_dop, scoped_for_ranges_mut};
use sqlarray_core::Complex64;

/// Lattices with at least this many points run the axis passes on
/// parallel line batches (when the configured DOP is > 1); smaller
/// transforms are not worth a thread spawn.
pub const PARALLEL_MIN_ELEMS: usize = 4096;

/// In-place n-dimensional DFT of column-major `data` with shape `dims`.
/// Unnormalized in both directions (like FFTW): a forward+inverse round
/// trip scales by `Πdims`.
pub fn fftn(data: &mut [Complex64], dims: &[usize], dir: Direction) {
    let dop = if dims.iter().product::<usize>() >= PARALLEL_MIN_ELEMS {
        configured_dop()
    } else {
        1
    };
    fftn_with_dop(data, dims, dir, dop);
}

/// [`fftn`] with an explicit degree of parallelism (1 = serial). Results
/// are bit-identical for every `dop`; [`fftn`] picks the DOP from the
/// lattice size and the `SQLARRAY_DOP` configuration.
pub fn fftn_with_dop(data: &mut [Complex64], dims: &[usize], dir: Direction, dop: usize) {
    let count: usize = dims.iter().product();
    assert_eq!(data.len(), count, "buffer must hold the whole lattice");
    if count == 0 {
        return;
    }

    let mut stride = 1usize;
    for &n in dims {
        if n > 1 {
            let lines = count / n;
            if dop > 1 && lines > 1 {
                transform_axis_parallel(data, count, n, stride, dir, dop);
            } else {
                transform_axis(data, count, n, stride, dir);
            }
        }
        stride *= n;
    }
}

/// Transforms every length-`n` line along the axis with the given stride.
fn transform_axis(data: &mut [Complex64], count: usize, n: usize, stride: usize, dir: Direction) {
    let plan = Plan::new(n, dir);
    let mut line = vec![Complex64::ZERO; n];
    let lines = count / n;
    // Enumerate line origins: indices whose coordinate on this axis is 0.
    // For the axis with extent n and stride s, origins are
    // base = (block * s * n) + offset, offset in [0, s).
    let block_len = stride * n;
    let blocks = count / block_len;
    assert_eq!(blocks * stride, lines);
    for b in 0..blocks {
        for off in 0..stride {
            let base = b * block_len + off;
            for (k, slot) in line.iter_mut().enumerate() {
                *slot = data[base + k * stride];
            }
            plan.execute_inplace(&mut line);
            for (k, &v) in line.iter().enumerate() {
                data[base + k * stride] = v;
            }
        }
    }
}

/// The parallel axis pass: gather + transform every line into a scratch
/// lattice (line batches fanned over workers via
/// [`scoped_for_ranges_mut`], each line landing in its own contiguous
/// scratch slot), then scatter back over contiguous output chunks. Two
/// passes of disjoint writes with the workspace chunking rule; per-line
/// math identical to [`transform_axis`], so the result is bit-identical
/// at any `dop`.
fn transform_axis_parallel(
    data: &mut [Complex64],
    count: usize,
    n: usize,
    stride: usize,
    dir: Direction,
    dop: usize,
) {
    let plan = Plan::new(n, dir);
    let block_len = stride * n;
    // Line L = block * stride + offset occupies scratch[L*n .. (L+1)*n].
    let mut scratch = vec![Complex64::ZERO; count];
    let data_ref: &[Complex64] = data;
    scoped_for_ranges_mut(&mut scratch, n, dop, |range, mine| {
        for (slot, line) in range.enumerate() {
            let base = (line / stride) * block_len + line % stride;
            let out = &mut mine[slot * n..(slot + 1) * n];
            for (k, v) in out.iter_mut().enumerate() {
                *v = data_ref[base + k * stride];
            }
            plan.execute_inplace(out);
        }
    });
    let scratch_ref: &[Complex64] = &scratch;
    scoped_for_ranges_mut(data, 1, dop, |range, mine| {
        for (slot, idx) in range.enumerate() {
            let block = idx / block_len;
            let rem = idx % block_len;
            let line = block * stride + rem % stride;
            mine[slot] = scratch_ref[line * n + rem / stride];
        }
    });
}

/// Normalized inverse n-D transform: `ifftn(fftn(x)) = x`.
pub fn ifftn_normalized(data: &mut [Complex64], dims: &[usize]) {
    fftn(data, dims, Direction::Inverse);
    let scale = 1.0 / dims.iter().product::<usize>() as f64;
    for v in data.iter_mut() {
        *v = v.scale(scale);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lattice(dims: &[usize]) -> Vec<Complex64> {
        let count: usize = dims.iter().product();
        (0..count)
            .map(|i| Complex64::new((i as f64 * 0.13).sin(), (i as f64 * 0.07).cos()))
            .collect()
    }

    #[test]
    fn round_trip_2d_and_3d() {
        for dims in [&[4usize, 8][..], &[3, 5, 7][..], &[8, 8, 8][..]] {
            let orig = lattice(dims);
            let mut data = orig.clone();
            fftn(&mut data, dims, Direction::Forward);
            ifftn_normalized(&mut data, dims);
            for (a, b) in data.iter().zip(&orig) {
                assert!((*a - *b).abs() < 1e-9, "dims {dims:?}");
            }
        }
    }

    #[test]
    fn separable_2d_matches_manual_rows_then_cols() {
        // 2-D DFT = 1-D over columns then 1-D over rows (any order).
        let dims = [4usize, 4];
        let orig = lattice(&dims);
        let mut fast = orig.clone();
        fftn(&mut fast, &dims, Direction::Forward);

        // Manual: axis 0 (contiguous columns), then axis 1 (strided).
        let mut manual = orig.clone();
        let plan = Plan::new(4, Direction::Forward);
        for c in 0..4 {
            let mut col: Vec<Complex64> = (0..4).map(|r| manual[c * 4 + r]).collect();
            plan.execute_inplace(&mut col);
            for r in 0..4 {
                manual[c * 4 + r] = col[r];
            }
        }
        for r in 0..4 {
            let mut row: Vec<Complex64> = (0..4).map(|c| manual[c * 4 + r]).collect();
            plan.execute_inplace(&mut row);
            for c in 0..4 {
                manual[c * 4 + r] = row[c];
            }
        }
        for (a, b) in fast.iter().zip(&manual) {
            assert!((*a - *b).abs() < 1e-10);
        }
    }

    #[test]
    fn plane_wave_concentrates_in_one_3d_bin() {
        let n = 8usize;
        let dims = [n, n, n];
        let (kx, ky, kz) = (2usize, 3, 1);
        let tau = 2.0 * std::f64::consts::PI / n as f64;
        let mut data = vec![Complex64::ZERO; n * n * n];
        for z in 0..n {
            for y in 0..n {
                for x in 0..n {
                    data[x + n * y + n * n * z] =
                        Complex64::cis(tau * (kx * x + ky * y + kz * z) as f64);
                }
            }
        }
        fftn(&mut data, &dims, Direction::Forward);
        let hot = kx + n * ky + n * n * kz;
        let total = (n * n * n) as f64;
        assert!((data[hot].abs() - total).abs() < 1e-6);
        for (i, v) in data.iter().enumerate() {
            if i != hot {
                assert!(v.abs() < 1e-6, "leak at {i}");
            }
        }
    }

    #[test]
    fn unit_axes_are_skipped_gracefully() {
        let dims = [1usize, 6, 1];
        let orig = lattice(&dims);
        let mut data = orig.clone();
        fftn(&mut data, &dims, Direction::Forward);
        // Equivalent to a 1-D transform of length 6.
        let expected = crate::plan::fft(&orig);
        for (a, b) in data.iter().zip(&expected) {
            assert!((*a - *b).abs() < 1e-10);
        }
    }

    #[test]
    #[should_panic(expected = "whole lattice")]
    fn shape_mismatch_panics() {
        let mut data = vec![Complex64::ZERO; 5];
        fftn(&mut data, &[2, 3], Direction::Forward);
    }

    #[test]
    fn parallel_axis_passes_are_bit_identical_to_serial() {
        // Shapes chosen to hit every decomposition: contiguous first axis
        // (stride 1, many blocks), middle axes, and the last axis (one
        // block, stride = lines) — plus non-power-of-two extents through
        // the Bluestein path and lines that don't divide the DOP evenly.
        for dims in [
            &[16usize, 16][..],
            &[8, 4, 8][..],
            &[5, 7, 9][..],
            &[64, 3][..],
        ] {
            let orig = lattice(dims);
            for dir in [Direction::Forward, Direction::Inverse] {
                let mut serial = orig.clone();
                fftn_with_dop(&mut serial, dims, dir, 1);
                for dop in [2usize, 3, 8] {
                    let mut par = orig.clone();
                    fftn_with_dop(&mut par, dims, dir, dop);
                    for (i, (a, b)) in serial.iter().zip(&par).enumerate() {
                        assert!(
                            a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits(),
                            "dims {dims:?} dir {dir:?} dop {dop} diverged at {i}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn serial_kernel_scope_pins_fftn_to_one_lane() {
        // Inside a scan worker's with_serial_kernels scope the configured
        // DOP is 1, so even a large lattice takes the serial path — and
        // either way the bits match.
        let dims = [32usize, 32, 4]; // 4096 points: at the parallel gate
        let orig = lattice(&dims);
        let mut inside = orig.clone();
        sqlarray_core::parallel::with_serial_kernels(|| {
            fftn(&mut inside, &dims, Direction::Forward);
        });
        let mut outside = orig.clone();
        fftn(&mut outside, &dims, Direction::Forward);
        for (a, b) in inside.iter().zip(&outside) {
            assert!(a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits());
        }
    }
}
