//! Real-input transforms and spectral helpers.

use crate::plan::{fft, ifft};
use sqlarray_core::Complex64;

/// Forward DFT of a real signal, returning the non-redundant half spectrum
/// (`n/2 + 1` bins, like FFTW's `r2c`).
pub fn rfft(input: &[f64]) -> Vec<Complex64> {
    let n = input.len();
    let complex: Vec<Complex64> = input.iter().map(|&v| Complex64::new(v, 0.0)).collect();
    let full = fft(&complex);
    full[..n / 2 + 1].to_vec()
}

/// Inverse of [`rfft`]: reconstructs the length-`n` real signal from the
/// half spectrum using Hermitian symmetry.
pub fn irfft(spectrum: &[Complex64], n: usize) -> Vec<f64> {
    assert_eq!(spectrum.len(), n / 2 + 1, "need n/2+1 bins for length n");
    let mut full = vec![Complex64::ZERO; n];
    full[..spectrum.len()].copy_from_slice(spectrum);
    for k in spectrum.len()..n {
        full[k] = spectrum[n - k].conj();
    }
    ifft(&full).iter().map(|c| c.re).collect()
}

/// Two-sided power spectrum `|X[k]|²/n` of a real signal.
pub fn power_spectrum(input: &[f64]) -> Vec<f64> {
    let n = input.len() as f64;
    rfft(input).iter().map(|c| c.norm_sqr() / n).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfft_of_cosine_peaks_at_tone_bin() {
        let n = 64;
        let f = 5.0;
        let x: Vec<f64> = (0..n)
            .map(|j| (2.0 * std::f64::consts::PI * f * j as f64 / n as f64).cos())
            .collect();
        let spec = rfft(&x);
        assert_eq!(spec.len(), 33);
        // cos splits into two half-amplitude bins; the half spectrum keeps
        // bin 5 with magnitude n/2.
        assert!((spec[5].abs() - n as f64 / 2.0).abs() < 1e-9);
        for (k, c) in spec.iter().enumerate() {
            if k != 5 {
                assert!(c.abs() < 1e-9, "leak at {k}");
            }
        }
    }

    #[test]
    fn rfft_irfft_round_trip_even_and_odd() {
        for n in [16usize, 25] {
            let x: Vec<f64> = (0..n).map(|j| (j as f64 * 0.37).sin() + 0.1).collect();
            let back = irfft(&rfft(&x), n);
            for (a, b) in back.iter().zip(&x) {
                assert!((a - b).abs() < 1e-9, "n={n}");
            }
        }
    }

    #[test]
    fn hermitian_symmetry_holds() {
        let x: Vec<f64> = (0..32).map(|j| (j as f64).cos() * 0.5 + 0.25).collect();
        let complex: Vec<Complex64> = x.iter().map(|&v| Complex64::new(v, 0.0)).collect();
        let full = fft(&complex);
        for k in 1..32 {
            let a = full[k];
            let b = full[32 - k].conj();
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn power_spectrum_parseval() {
        let x: Vec<f64> = (0..128).map(|j| (j as f64 * 0.81).sin()).collect();
        let ps = power_spectrum(&x);
        // Sum over the FULL spectrum equals the time-domain energy; the
        // half spectrum double-counts interior bins.
        let mut total = ps[0];
        for p in &ps[1..ps.len() - 1] {
            total += 2.0 * p;
        }
        total += ps[ps.len() - 1];
        let energy: f64 = x.iter().map(|v| v * v).sum();
        assert!((total - energy).abs() < 1e-9 * energy);
    }

    #[test]
    fn dc_signal_concentrates_in_bin_zero() {
        let x = vec![2.5f64; 20];
        let ps = power_spectrum(&x);
        assert!((ps[0] - 2.5f64 * 2.5 * 20.0).abs() < 1e-9);
        assert!(ps[1..].iter().all(|&p| p < 1e-18));
    }
}
