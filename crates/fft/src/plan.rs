//! FFT plans — the FFTW-style entry point.
//!
//! "FFTW requires specially aligned memory buffers to perform well. When
//! calling FFTW, a memory copy into a pre-aligned buffer is necessary but
//! the performance gain is usually worth the otherwise expensive
//! operation." (§5.3) A [`Plan`] owns its twiddles and a reusable aligned
//! scratch buffer; executing out-of-place through the plan models exactly
//! that copy.

use crate::bluestein::Bluestein;
use crate::radix2::{fft_pow2, Twiddles};
use sqlarray_core::Complex64;

pub use crate::radix2::Direction;

enum Kind {
    Radix2(Twiddles),
    Bluestein(Bluestein),
}

/// A reusable transform plan for one `(size, direction)` pair.
pub struct Plan {
    n: usize,
    dir: Direction,
    kind: Kind,
    /// Reusable buffer standing in for FFTW's aligned allocation.
    scratch: Vec<Complex64>,
}

impl Plan {
    /// Plans a transform of length `n` (any size ≥ 1; powers of two take
    /// the radix-2 path, everything else Bluestein).
    pub fn new(n: usize, dir: Direction) -> Plan {
        assert!(n >= 1, "cannot plan a zero-length transform");
        let kind = if n.is_power_of_two() {
            Kind::Radix2(Twiddles::new(n, dir))
        } else {
            Kind::Bluestein(Bluestein::new(n, dir))
        };
        Plan {
            n,
            dir,
            kind,
            scratch: vec![Complex64::ZERO; n],
        }
    }

    /// The planned size.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True only for an (unconstructible) empty plan.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The planned direction.
    pub fn direction(&self) -> Direction {
        self.dir
    }

    /// Executes in place (data must already live in a caller-managed
    /// buffer of the planned size).
    pub fn execute_inplace(&self, data: &mut [Complex64]) {
        assert_eq!(data.len(), self.n, "data length must match the plan");
        match &self.kind {
            Kind::Radix2(tw) => fft_pow2(data, tw),
            Kind::Bluestein(b) => b.execute(data),
        }
    }

    /// Executes via the plan's internal buffer: copy in, transform, copy
    /// out — the FFTW aligned-buffer round trip. Slightly slower than
    /// [`execute_inplace`](Self::execute_inplace); benchmark E7 quantifies
    /// the difference.
    pub fn execute(&mut self, input: &[Complex64], output: &mut [Complex64]) {
        assert_eq!(input.len(), self.n);
        assert_eq!(output.len(), self.n);
        self.scratch.copy_from_slice(input);
        match &self.kind {
            Kind::Radix2(tw) => fft_pow2(&mut self.scratch, tw),
            Kind::Bluestein(b) => b.execute(&mut self.scratch),
        }
        output.copy_from_slice(&self.scratch);
    }
}

/// One-shot forward DFT (plans internally; use [`Plan`] for repeated
/// transforms).
pub fn fft(input: &[Complex64]) -> Vec<Complex64> {
    let mut out = input.to_vec();
    Plan::new(input.len(), Direction::Forward).execute_inplace(&mut out);
    out
}

/// One-shot inverse DFT, normalized by `1/n` so that `ifft(fft(x)) = x`.
pub fn ifft(input: &[Complex64]) -> Vec<Complex64> {
    let n = input.len();
    let mut out = input.to_vec();
    Plan::new(n, Direction::Inverse).execute_inplace(&mut out);
    let scale = 1.0 / n as f64;
    for v in &mut out {
        *v = v.scale(scale);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe(n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|j| Complex64::new((j as f64 * 1.1).sin(), (j as f64 * 0.2).cos() - 0.4))
            .collect()
    }

    #[test]
    fn fft_ifft_round_trip_both_paths() {
        for n in [8usize, 100] {
            let x = probe(n);
            let back = ifft(&fft(&x));
            for (a, b) in back.iter().zip(&x) {
                assert!((*a - *b).abs() < 1e-9, "n={n}");
            }
        }
    }

    #[test]
    fn plan_reuse_matches_oneshot() {
        let x = probe(24);
        let mut plan = Plan::new(24, Direction::Forward);
        let mut out = vec![Complex64::ZERO; 24];
        plan.execute(&x, &mut out);
        let reference = fft(&x);
        for (a, b) in out.iter().zip(&reference) {
            assert!((*a - *b).abs() < 1e-10);
        }
        // Second execution through the same plan (scratch reuse).
        let mut out2 = vec![Complex64::ZERO; 24];
        plan.execute(&x, &mut out2);
        assert_eq!(out, out2);
    }

    #[test]
    fn inplace_and_buffered_agree() {
        let x = probe(33);
        let mut a = x.clone();
        let plan = Plan::new(33, Direction::Forward);
        plan.execute_inplace(&mut a);
        let mut plan2 = Plan::new(33, Direction::Forward);
        let mut b = vec![Complex64::ZERO; 33];
        plan2.execute(&x, &mut b);
        for (p, q) in a.iter().zip(&b) {
            assert!((*p - *q).abs() < 1e-12);
        }
    }

    #[test]
    fn linearity() {
        let x = probe(50);
        let y: Vec<Complex64> = probe(50).iter().map(|v| v.scale(-0.5)).collect();
        let sum: Vec<Complex64> = x.iter().zip(&y).map(|(&a, &b)| a + b).collect();
        let fx = fft(&x);
        let fy = fft(&y);
        let fsum = fft(&sum);
        for k in 0..50 {
            assert!((fx[k] + fy[k] - fsum[k]).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "match the plan")]
    fn size_mismatch_panics() {
        let plan = Plan::new(8, Direction::Forward);
        let mut wrong = vec![Complex64::ZERO; 4];
        plan.execute_inplace(&mut wrong);
    }
}
