//! # sqlarray-fft
//!
//! Discrete Fourier transforms standing in for FFTW (Dobos et al., EDBT
//! 2011, §3.6/§5.3): planned complex transforms (radix-2 Cooley–Tukey for
//! powers of two, Bluestein for everything else), real-input helpers, and
//! n-dimensional transforms over the array library's column-major layout.
//!
//! Plans own their twiddle tables and a reusable scratch buffer that
//! models FFTW's aligned-allocation requirement: executing through
//! [`plan::Plan::execute`] pays the copy the paper describes, while
//! [`plan::Plan::execute_inplace`] is the raw kernel.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bluestein;
pub mod ndim;
pub mod plan;
pub mod radix2;
pub mod real;

pub use ndim::{fftn, fftn_with_dop, ifftn_normalized};
pub use plan::{fft, ifft, Direction, Plan};
pub use real::{irfft, power_spectrum, rfft};
