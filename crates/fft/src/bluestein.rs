//! Bluestein's chirp-z algorithm: DFT of arbitrary length via a padded
//! power-of-two convolution. Covers the non-power-of-two grids of the
//! science workloads (e.g. the 100³ Fourier cubes the N-body pipeline
//! dumps, §2.3).

use crate::radix2::{fft_pow2, Direction, Twiddles};
use sqlarray_core::Complex64;

/// Precomputed state for a Bluestein transform of size `n`.
#[derive(Debug, Clone)]
pub struct Bluestein {
    n: usize,
    dir: Direction,
    m: usize, // padded power-of-two convolution size ≥ 2n-1
    chirp: Vec<Complex64>,
    /// Forward FFT of the zero-padded conjugate chirp (the convolution
    /// kernel), reused across executions.
    kernel_spec: Vec<Complex64>,
    fwd: Twiddles,
    inv: Twiddles,
}

impl Bluestein {
    /// Builds the plan for size `n ≥ 1`.
    pub fn new(n: usize, dir: Direction) -> Bluestein {
        assert!(n >= 1);
        let m = (2 * n - 1).next_power_of_two();
        let sign = dir.sign();
        // chirp[j] = e^{sign·πi·j²/n}
        let chirp: Vec<Complex64> = (0..n)
            .map(|j| {
                let jj = (j * j) % (2 * n); // j² mod 2n keeps the angle exact
                Complex64::cis(sign * std::f64::consts::PI * jj as f64 / n as f64)
            })
            .collect();
        let fwd = Twiddles::new(m, Direction::Forward);
        let inv = Twiddles::new(m, Direction::Inverse);

        // Kernel b[j] = conj(chirp[j]) wrapped circularly.
        let mut kernel = vec![Complex64::ZERO; m];
        kernel[0] = chirp[0].conj();
        for j in 1..n {
            let c = chirp[j].conj();
            kernel[j] = c;
            kernel[m - j] = c;
        }
        fft_pow2(&mut kernel, &fwd);
        Bluestein {
            n,
            dir,
            m,
            chirp,
            kernel_spec: kernel,
            fwd,
            inv,
        }
    }

    /// The transform size.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True only for the degenerate size-0 plan (not constructible).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The direction the plan was built for.
    pub fn direction(&self) -> Direction {
        self.dir
    }

    /// Executes the transform in place.
    pub fn execute(&self, data: &mut [Complex64]) {
        assert_eq!(data.len(), self.n, "data length must match the plan");
        let n = self.n;
        if n == 1 {
            return;
        }
        // a[j] = x[j]·chirp[j], zero-padded to m.
        let mut a = vec![Complex64::ZERO; self.m];
        for j in 0..n {
            a[j] = data[j] * self.chirp[j];
        }
        fft_pow2(&mut a, &self.fwd);
        for (av, &kv) in a.iter_mut().zip(&self.kernel_spec) {
            *av *= kv;
        }
        fft_pow2(&mut a, &self.inv);
        let scale = 1.0 / self.m as f64;
        for k in 0..n {
            data[k] = a[k].scale(scale) * self.chirp[k];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dft_naive(input: &[Complex64], dir: Direction) -> Vec<Complex64> {
        let n = input.len();
        let step = dir.sign() * 2.0 * std::f64::consts::PI / n as f64;
        (0..n)
            .map(|k| {
                let mut acc = Complex64::ZERO;
                for (j, &x) in input.iter().enumerate() {
                    acc += x * Complex64::cis(step * (j as f64) * (k as f64));
                }
                acc
            })
            .collect()
    }

    fn probe(n: usize) -> Vec<Complex64> {
        (0..n)
            .map(|j| Complex64::new((j as f64 * 0.9).sin() + 0.2, (j as f64 * 0.4).cos()))
            .collect()
    }

    #[test]
    fn matches_naive_for_awkward_sizes() {
        for n in [3usize, 5, 7, 12, 100, 129] {
            let input = probe(n);
            let mut data = input.clone();
            Bluestein::new(n, Direction::Forward).execute(&mut data);
            let reference = dft_naive(&input, Direction::Forward);
            for (k, (a, b)) in data.iter().zip(&reference).enumerate() {
                assert!(
                    (*a - *b).abs() < 1e-8 * n as f64,
                    "n={n} bin {k}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn matches_radix2_on_powers_of_two() {
        let n = 64;
        let input = probe(n);
        let mut b = input.clone();
        Bluestein::new(n, Direction::Forward).execute(&mut b);
        let r = crate::radix2::fft_forward_pow2(&input);
        for (a, c) in b.iter().zip(&r) {
            assert!((*a - *c).abs() < 1e-9);
        }
    }

    #[test]
    fn round_trip_arbitrary_size() {
        let n = 100; // the N-body Fourier cube edge
        let input = probe(n);
        let mut data = input.clone();
        Bluestein::new(n, Direction::Forward).execute(&mut data);
        Bluestein::new(n, Direction::Inverse).execute(&mut data);
        for (a, &b) in data.iter().zip(&input) {
            assert!((a.scale(1.0 / n as f64) - b).abs() < 1e-9);
        }
    }

    #[test]
    fn size_one_is_identity() {
        let mut data = vec![Complex64::new(3.0, -1.0)];
        Bluestein::new(1, Direction::Forward).execute(&mut data);
        assert_eq!(data[0], Complex64::new(3.0, -1.0));
    }

    #[test]
    fn plan_is_reusable() {
        let plan = Bluestein::new(9, Direction::Forward);
        let x1 = probe(9);
        let x2: Vec<Complex64> = probe(9).iter().map(|v| v.scale(2.0)).collect();
        let mut y1 = x1.clone();
        let mut y2 = x2.clone();
        plan.execute(&mut y1);
        plan.execute(&mut y2);
        // Linearity: transform(2x) = 2·transform(x).
        for (a, b) in y1.iter().zip(&y2) {
            assert!((a.scale(2.0) - *b).abs() < 1e-9);
        }
    }
}
