//! Iterative radix-2 Cooley–Tukey FFT for power-of-two lengths.

use sqlarray_core::Complex64;

/// Transform direction. Following FFTW's convention, neither direction
/// normalizes: `inverse(forward(x)) = n·x`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// `X[k] = Σ x[j]·e^{-2πi jk/n}`.
    Forward,
    /// `x[j] = Σ X[k]·e^{+2πi jk/n}` (unnormalized).
    Inverse,
}

impl Direction {
    /// Sign of the exponent.
    #[inline]
    pub fn sign(self) -> f64 {
        match self {
            Direction::Forward => -1.0,
            Direction::Inverse => 1.0,
        }
    }
}

/// Precomputed twiddle factors for a power-of-two size.
#[derive(Debug, Clone)]
pub struct Twiddles {
    n: usize,
    dir: Direction,
    /// `w[k] = e^{sign·2πi·k/n}` for `k < n/2`.
    w: Vec<Complex64>,
}

impl Twiddles {
    /// Builds the table for size `n` (must be a power of two ≥ 1).
    pub fn new(n: usize, dir: Direction) -> Twiddles {
        assert!(n.is_power_of_two(), "radix-2 needs a power-of-two size");
        let step = dir.sign() * 2.0 * std::f64::consts::PI / n as f64;
        let w = (0..n / 2)
            .map(|k| Complex64::cis(step * k as f64))
            .collect();
        Twiddles { n, dir, w }
    }

    /// The transform size.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for the degenerate size-1 table.
    pub fn is_empty(&self) -> bool {
        self.n <= 1
    }

    /// The direction the table was built for.
    pub fn direction(&self) -> Direction {
        self.dir
    }
}

/// In-place radix-2 FFT of `data` (length must equal the twiddle size).
pub fn fft_pow2(data: &mut [Complex64], tw: &Twiddles) {
    let n = data.len();
    assert_eq!(n, tw.n, "data length must match the plan size");
    if n <= 1 {
        return;
    }

    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            data.swap(i, j);
        }
    }

    // Butterflies: stage sizes 2, 4, ..., n.
    let mut len = 2usize;
    while len <= n {
        let half = len / 2;
        let stride = n / len; // twiddle index stride into the size-n table
        for start in (0..n).step_by(len) {
            let mut tw_idx = 0usize;
            for k in start..start + half {
                let w = tw.w[tw_idx];
                let u = data[k];
                let t = data[k + half] * w;
                data[k] = u + t;
                data[k + half] = u - t;
                tw_idx += stride;
            }
        }
        len <<= 1;
    }
}

/// Convenience: out-of-place forward transform of a power-of-two slice.
pub fn fft_forward_pow2(input: &[Complex64]) -> Vec<Complex64> {
    let mut data = input.to_vec();
    let tw = Twiddles::new(input.len(), Direction::Forward);
    fft_pow2(&mut data, &tw);
    data
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cnear(a: Complex64, b: Complex64, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    /// Reference O(n²) DFT.
    pub fn dft_naive(input: &[Complex64], dir: Direction) -> Vec<Complex64> {
        let n = input.len();
        let step = dir.sign() * 2.0 * std::f64::consts::PI / n as f64;
        (0..n)
            .map(|k| {
                let mut acc = Complex64::ZERO;
                for (j, &x) in input.iter().enumerate() {
                    acc += x * Complex64::cis(step * (j * k % n) as f64);
                }
                acc
            })
            .collect()
    }

    #[test]
    fn impulse_transforms_to_flat_spectrum() {
        let mut data = vec![Complex64::ZERO; 8];
        data[0] = Complex64::ONE;
        let tw = Twiddles::new(8, Direction::Forward);
        fft_pow2(&mut data, &tw);
        for v in data {
            assert!(cnear(v, Complex64::ONE, 1e-12));
        }
    }

    #[test]
    fn constant_transforms_to_impulse() {
        let mut data = vec![Complex64::ONE; 16];
        let tw = Twiddles::new(16, Direction::Forward);
        fft_pow2(&mut data, &tw);
        assert!(cnear(data[0], Complex64::new(16.0, 0.0), 1e-12));
        for v in &data[1..] {
            assert!(cnear(*v, Complex64::ZERO, 1e-12));
        }
    }

    #[test]
    fn single_tone_lands_in_one_bin() {
        // x[j] = e^{2πi·3j/32} → spectrum concentrated in bin 3.
        let n = 32;
        let mut data: Vec<Complex64> = (0..n)
            .map(|j| Complex64::cis(2.0 * std::f64::consts::PI * 3.0 * j as f64 / n as f64))
            .collect();
        let tw = Twiddles::new(n, Direction::Forward);
        fft_pow2(&mut data, &tw);
        assert!(cnear(data[3], Complex64::new(n as f64, 0.0), 1e-9));
        for (k, v) in data.iter().enumerate() {
            if k != 3 {
                assert!(v.abs() < 1e-9, "leak in bin {k}");
            }
        }
    }

    #[test]
    fn matches_naive_dft() {
        for n in [1usize, 2, 4, 8, 64] {
            let input: Vec<Complex64> = (0..n)
                .map(|j| Complex64::new((j as f64 * 0.7).sin(), (j as f64 * 1.3).cos()))
                .collect();
            let fast = fft_forward_pow2(&input);
            let slow = dft_naive(&input, Direction::Forward);
            for (a, b) in fast.iter().zip(&slow) {
                assert!(cnear(*a, *b, 1e-9 * n as f64));
            }
        }
    }

    #[test]
    fn forward_inverse_round_trip() {
        let n = 128;
        let input: Vec<Complex64> = (0..n)
            .map(|j| Complex64::new((j as f64).sin(), (j as f64 * 0.5).cos()))
            .collect();
        let mut data = input.clone();
        let fw = Twiddles::new(n, Direction::Forward);
        let bw = Twiddles::new(n, Direction::Inverse);
        fft_pow2(&mut data, &fw);
        fft_pow2(&mut data, &bw);
        for (a, &b) in data.iter().zip(&input) {
            assert!(cnear(a.scale(1.0 / n as f64), b, 1e-10));
        }
    }

    #[test]
    fn parseval_energy_conservation() {
        let n = 64;
        let input: Vec<Complex64> = (0..n)
            .map(|j| Complex64::new((j as f64 * 2.1).cos(), 0.3 * (j as f64).sin()))
            .collect();
        let spec = fft_forward_pow2(&input);
        let time_energy: f64 = input.iter().map(|v| v.norm_sqr()).sum();
        let freq_energy: f64 = spec.iter().map(|v| v.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-9 * time_energy);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_power_of_two_panics() {
        let _ = Twiddles::new(12, Direction::Forward);
    }
}
