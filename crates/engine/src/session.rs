//! Sessions: cheap per-connection state over a shared [`Engine`],
//! executing T-SQL batches.
//!
//! A session owns only what is genuinely per-connection — variables, DOP,
//! batch size, the hosting-cost model, UDA mode, row limit. Everything
//! heavy (store, catalog, registries, plan cache, scheduler) lives in the
//! engine and is shared by every session cloned off it.

use crate::aggregate::{UdaMode, UdaRegistry};
use crate::engine::Engine;
use crate::exec::{
    exec_delete, exec_select, exec_update, DmlCtx, ExecCtx, QueryResult, QueryStats,
    DEFAULT_ROW_LIMIT,
};
use crate::expr::{eval, EvalEnv};
use crate::hosting::HostingModel;
use crate::plancache::CachedPlan;
use crate::tsql::Stmt;
use crate::udf::UdfRegistry;
use crate::value::{EngineError, Result, Value};
use sqlarray_core::le;
use sqlarray_core::lifecycle::{CancelHandle, QueryCtx, QueryLimits};
use sqlarray_storage::{ColType, DiskImage, PageStore, Recovery, RowValue, Schema, Table};
use std::collections::HashMap;
use std::sync::{Arc, RwLockReadGuard, RwLockWriteGuard};

/// A database: one page store plus its tables.
pub struct Database {
    /// The page store all tables live in.
    pub store: PageStore,
    /// Tables by lowercase name.
    pub tables: HashMap<String, Table>,
}

impl Database {
    /// An empty database with default store settings.
    pub fn new() -> Database {
        Database {
            store: PageStore::new(),
            tables: HashMap::new(),
        }
    }

    /// An empty database over a custom store (pool size, disk profile).
    pub fn with_store(store: PageStore) -> Database {
        Database {
            store,
            tables: HashMap::new(),
        }
    }

    /// Creates a table.
    pub fn create_table(&mut self, name: &str, schema: Schema) -> Result<()> {
        let key = name.to_ascii_lowercase();
        if self.tables.contains_key(&key) {
            return Err(EngineError::Storage(format!("table `{name}` exists")));
        }
        let t = Table::create(&mut self.store, name, schema)?;
        self.tables.insert(key, t);
        Ok(())
    }

    /// Inserts a row into a table.
    pub fn insert(&mut self, table: &str, key: i64, values: &[RowValue]) -> Result<()> {
        let t = self
            .tables
            .get_mut(&table.to_ascii_lowercase())
            .ok_or_else(|| EngineError::Unknown(format!("table `{table}`")))?;
        t.insert(&mut self.store, key, values)?;
        Ok(())
    }

    /// Bulk-loads an **empty** table from key-sorted rows through the
    /// parallel ingest path, at the environment-configured DOP
    /// (`SQLARRAY_DOP`, else the core count; serial inside
    /// `parallel::with_serial_kernels` — the same knob the scan
    /// executor, `fftn`, and the dense linalg kernels read). The
    /// resulting layout, pool state and I/O accounting are identical at
    /// every DOP.
    pub fn bulk_insert(&mut self, table: &str, rows: &[(i64, Vec<RowValue>)]) -> Result<()> {
        self.bulk_insert_with_dop(table, rows, sqlarray_core::parallel::configured_dop())
    }

    /// [`bulk_insert`](Self::bulk_insert) with an explicit degree of
    /// parallelism for the encode/leaf-build stages.
    pub fn bulk_insert_with_dop(
        &mut self,
        table: &str,
        rows: &[(i64, Vec<RowValue>)],
        dop: usize,
    ) -> Result<()> {
        let t = self
            .tables
            .get_mut(&table.to_ascii_lowercase())
            .ok_or_else(|| EngineError::Unknown(format!("table `{table}`")))?;
        t.bulk_load(&mut self.store, rows, dop)?;
        Ok(())
    }

    /// Looks a table up by name.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(&name.to_ascii_lowercase())
    }

    /// Commits the current state: writes a WAL commit record carrying the
    /// serialized catalog (every table's name, schema, and B-tree
    /// geometry). Everything logged up to here survives a crash; anything
    /// after is rolled back by [`Database::recover`].
    pub fn commit(&mut self) {
        let catalog = self.catalog_bytes();
        self.store.commit(&catalog);
    }

    /// The catalog image a commit record carries. Tables serialize in
    /// name order, so the byte stream is independent of hash-map
    /// iteration order.
    fn catalog_bytes(&self) -> Vec<u8> {
        let mut names: Vec<&String> = self.tables.keys().collect();
        names.sort();
        let mut out = Vec::new();
        le::push_u32(&mut out, self.tables.len() as u32);
        for key in names {
            // lint:allow(L005, reason = "iterating the map's own keys")
            let t = &self.tables[key];
            le::push_bytes(&mut out, t.name().as_bytes());
            let schema = t.schema();
            le::push_u32(&mut out, schema.columns.len() as u32);
            for col in &schema.columns {
                le::push_bytes(&mut out, col.name.as_bytes());
                out.push(ctype_tag(col.ctype));
            }
            let (root, first_leaf, rows, depth) = t.tree_parts();
            le::push_u64(&mut out, root);
            le::push_u64(&mut out, first_leaf);
            le::push_u64(&mut out, rows);
            le::push_u32(&mut out, depth);
        }
        out
    }

    /// Recovers a database from a crashed disk image: replays the WAL to
    /// the last complete commit, discards the torn tail, and rebuilds the
    /// table catalog from that commit's payload.
    pub fn recover(image: &DiskImage) -> Result<Database> {
        Database::from_recovery(PageStore::open(image)?)
    }

    /// Builds a database from an already-recovered store — for callers
    /// that ran [`PageStore::open_with`] themselves (custom pool size or
    /// disk profile) or need [`Recovery`]'s replay counters.
    pub fn from_recovery(rec: Recovery) -> Result<Database> {
        let mut db = Database::with_store(rec.store);
        let Some(catalog) = rec.catalog else {
            return Ok(db);
        };
        db.tables = parse_catalog(&catalog).ok_or_else(|| {
            EngineError::Storage("commit record carries a malformed catalog".into())
        })?;
        Ok(db)
    }
}

fn ctype_tag(t: ColType) -> u8 {
    match t {
        ColType::I64 => 0,
        ColType::I32 => 1,
        ColType::F64 => 2,
        ColType::F32 => 3,
        ColType::Blob => 4,
    }
}

fn ctype_from_tag(tag: u8) -> Option<ColType> {
    Some(match tag {
        0 => ColType::I64,
        1 => ColType::I32,
        2 => ColType::F64,
        3 => ColType::F32,
        4 => ColType::Blob,
        _ => return None,
    })
}

/// Parses a catalog image back into the table map; `None` on any
/// truncation or bad tag — the commit checksum already vouched for the
/// bytes, so a parse failure means a version mismatch, not corruption in
/// flight.
fn parse_catalog(buf: &[u8]) -> Option<HashMap<String, Table>> {
    let mut tables = HashMap::new();
    if buf.len() < 4 {
        return None;
    }
    let n_tables = le::u32_at(buf, 0) as usize;
    let mut off = 4usize;
    for _ in 0..n_tables {
        let (name, next) = le::take_bytes(buf, off)?;
        let name = String::from_utf8(name.to_vec()).ok()?;
        off = next;
        if buf.len() < off + 4 {
            return None;
        }
        let n_cols = le::u32_at(buf, off) as usize;
        off += 4;
        let mut columns = Vec::with_capacity(n_cols);
        for _ in 0..n_cols {
            let (cname, next) = le::take_bytes(buf, off)?;
            off = next;
            let tag = *buf.get(off)?;
            off += 1;
            columns.push(sqlarray_storage::Column {
                name: String::from_utf8(cname.to_vec()).ok()?,
                ctype: ctype_from_tag(tag)?,
            });
        }
        if buf.len() < off + 8 + 8 + 8 + 4 {
            return None;
        }
        let root = le::u64_at(buf, off);
        let first_leaf = le::u64_at(buf, off + 8);
        let rows = le::u64_at(buf, off + 16);
        let depth = le::u32_at(buf, off + 24);
        off += 28;
        let key = name.to_ascii_lowercase();
        let t = Table::from_parts(name, Schema { columns }, (root, first_leaf, rows, depth));
        tables.insert(key, t);
    }
    if off != buf.len() {
        return None;
    }
    Some(tables)
}

impl Default for Database {
    fn default() -> Self {
        Database::new()
    }
}

/// The session default for rows per column batch: `SQLARRAY_BATCH_ROWS`
/// when set and parseable (0 disables vectorized execution), otherwise
/// [`sqlarray_core::batch::DEFAULT_BATCH_ROWS`].
fn configured_batch_rows() -> usize {
    sqlarray_core::env_usize("SQLARRAY_BATCH_ROWS")
        .unwrap_or(sqlarray_core::batch::DEFAULT_BATCH_ROWS)
}

/// The session default statement timeout: `SQLARRAY_STATEMENT_TIMEOUT_MS`
/// when set and non-zero, otherwise no deadline.
fn configured_statement_timeout_ms() -> Option<u64> {
    sqlarray_core::env_usize("SQLARRAY_STATEMENT_TIMEOUT_MS")
        .filter(|&ms| ms > 0)
        .map(|ms| ms as u64)
}

/// The session default per-statement memory budget:
/// `SQLARRAY_QUERY_MEM_BYTES` when set (0 = unlimited), otherwise
/// unlimited.
fn configured_query_mem_bytes() -> u64 {
    sqlarray_core::env_usize("SQLARRAY_QUERY_MEM_BYTES").unwrap_or(0) as u64
}

/// A prepared statement: the batch's cached parse (and, per SELECT, its
/// compiled-plan slot) pinned so repeated executions skip both the cache
/// lookup and — for var-free statements — recompilation. Cheap to clone;
/// executable from any session of the same engine.
#[derive(Clone)]
pub struct Prepared {
    plan: Arc<CachedPlan>,
}

impl Prepared {
    /// The normalized statement text this plan was cached under.
    pub fn key(&self) -> &str {
        &self.plan.key
    }
}

/// An interactive session: per-connection state over a shared [`Engine`].
///
/// Constructing a session from a [`Database`] (the single-connection
/// convenience) wraps it in a fresh engine; [`Engine::session`] spawns
/// additional sessions over the same data. Statement isolation is
/// single-writer/multi-reader: see the [`crate::engine`] module docs.
pub struct Session {
    engine: Arc<Engine>,
    /// CLR hosting-cost model (per-session: forks into scan workers and
    /// accumulates this session's call counters).
    pub hosting: HostingModel,
    /// How UDA state is maintained between rows.
    pub uda_mode: UdaMode,
    /// Row cap for projections without TOP.
    pub row_limit: usize,
    /// Maximum degree of parallelism for scans (≥ 1).
    dop: usize,
    /// Target rows per column batch for vectorized scans; 0 runs every
    /// query row-at-a-time.
    batch_rows: usize,
    vars: HashMap<String, Value>,
    /// The cancellation flag every statement of this session polls;
    /// [`Session::cancel_handle`] clones it out for other threads.
    cancel: CancelHandle,
    /// Statement timeout; `None` = no deadline.
    statement_timeout_ms: Option<u64>,
    /// Per-statement memory budget in bytes; 0 = unlimited.
    query_mem_bytes: u64,
    /// Kill-matrix knob: trip the N-th lifecycle check of the next
    /// statements ([`QueryLimits::cancel_after_checks`]).
    cancel_after_checks: Option<u64>,
    /// Measurements of the most recent *aborted* statement (cancel,
    /// timeout, budget, worker panic); `None` after a successful one.
    last_partial: Option<QueryStats>,
    /// Lifecycle context of the most recent statement — exposes its
    /// check count and charged bytes after the fact.
    last_query: Option<QueryCtx>,
}

impl Session {
    /// A single-connection session over its own fresh engine, with the
    /// full array library registered and the paper's 2 µs CLR hosting
    /// cost.
    pub fn new(db: Database) -> Session {
        Session::with_hosting(db, HostingModel::paper_clr())
    }

    /// A single-connection session with an explicit hosting model (e.g.
    /// [`HostingModel::free`] for the native-cost counterfactual).
    pub fn with_hosting(db: Database, hosting: HostingModel) -> Session {
        Engine::new(db).session_with_hosting(hosting)
    }

    pub(crate) fn on_engine(engine: Arc<Engine>, hosting: HostingModel) -> Session {
        Session {
            engine,
            hosting,
            uda_mode: UdaMode::InMemory,
            row_limit: DEFAULT_ROW_LIMIT,
            dop: sqlarray_core::parallel::configured_dop(),
            batch_rows: configured_batch_rows(),
            vars: HashMap::new(),
            cancel: CancelHandle::new(),
            statement_timeout_ms: configured_statement_timeout_ms(),
            query_mem_bytes: configured_query_mem_bytes(),
            cancel_after_checks: None,
            last_partial: None,
            last_query: None,
        }
    }

    /// The shared engine this session runs on. Clone the `Arc` to spawn
    /// concurrent sessions over the same database.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Read access to the shared database — for inspecting the store or
    /// catalog (`s.db().store.stats()`). Excludes writers; drop the guard
    /// before executing statements.
    pub fn db(&self) -> RwLockReadGuard<'_, Database> {
        self.engine.db()
    }

    /// Exclusive access to the shared database — for loading data
    /// (`s.db_mut().bulk_insert(...)`) or direct mutation. Drop the guard
    /// before executing statements.
    pub fn db_mut(&self) -> RwLockWriteGuard<'_, Database> {
        self.engine.db_mut()
    }

    /// The engine's scalar-UDF registry (all array schemas + math
    /// bindings pre-registered).
    pub fn udfs(&self) -> &UdfRegistry {
        self.engine.udfs()
    }

    /// The engine's UDA registry (array aggregates pre-registered).
    pub fn udas(&self) -> &UdaRegistry {
        self.engine.udas()
    }

    /// The session's degree of parallelism: how many workers a scan may
    /// fan out over. Defaults to the `SQLARRAY_DOP` environment variable
    /// when set, otherwise the number of available cores.
    pub fn dop(&self) -> usize {
        self.dop
    }

    /// Sets the degree of parallelism (clamped to ≥ 1). `set_dop(1)`
    /// forces serial execution; results are bit-identical at every
    /// setting.
    pub fn set_dop(&mut self, dop: usize) {
        self.dop = dop.max(1);
    }

    /// The target rows per column batch for vectorized scans. Defaults to
    /// the `SQLARRAY_BATCH_ROWS` environment variable when set, otherwise
    /// [`sqlarray_core::batch::DEFAULT_BATCH_ROWS`]; 0 means batch
    /// execution is disabled.
    pub fn batch_rows(&self) -> usize {
        self.batch_rows
    }

    /// Sets the target rows per column batch. `set_batch_rows(0)` disables
    /// the vectorized path entirely — every query runs the row-at-a-time
    /// interpreter; results are bit-identical at every setting.
    pub fn set_batch_rows(&mut self, rows: usize) {
        self.batch_rows = rows;
    }

    /// A cancellation handle for this session's statements. Clone-cheap
    /// and thread-safe: call [`CancelHandle::cancel`] from any thread to
    /// abort the statement currently running (or the next one to start)
    /// with [`EngineError::Cancelled`]. The session clears the flag once
    /// a statement has consumed it, so subsequent statements run.
    pub fn cancel_handle(&self) -> CancelHandle {
        self.cancel.clone()
    }

    /// The statement timeout, milliseconds; `None` = no deadline.
    /// Defaults to `SQLARRAY_STATEMENT_TIMEOUT_MS` (unset or 0 = none).
    pub fn statement_timeout_ms(&self) -> Option<u64> {
        self.statement_timeout_ms
    }

    /// Sets the statement timeout. A statement past its deadline aborts
    /// with [`EngineError::Timeout`] within one batch worth of work —
    /// including while it is still queued for admission.
    pub fn set_statement_timeout_ms(&mut self, ms: Option<u64>) {
        self.statement_timeout_ms = ms.filter(|&ms| ms > 0);
    }

    /// The per-statement memory budget in bytes; 0 = unlimited. Defaults
    /// to `SQLARRAY_QUERY_MEM_BYTES`.
    pub fn query_mem_bytes(&self) -> u64 {
        self.query_mem_bytes
    }

    /// Sets the per-statement memory budget. Statements whose cumulative
    /// charges (batch lanes, aggregation state, LOB materialization)
    /// exceed it abort with [`EngineError::ResourceExhausted`].
    pub fn set_query_mem_bytes(&mut self, bytes: u64) {
        self.query_mem_bytes = bytes;
    }

    /// Arms a deterministic trip point for the kill-matrix tests: the
    /// N-th lifecycle check of each following statement reports
    /// cancellation ([`QueryLimits::cancel_after_checks`]; `u64::MAX`
    /// counts checks without tripping). `None` disarms.
    pub fn set_cancel_after_checks(&mut self, n: Option<u64>) {
        self.cancel_after_checks = n;
    }

    /// Measurements of the most recent aborted statement — the partial
    /// work a cancel/timeout/budget/panic abort left behind. `None` when
    /// the last statement succeeded (its stats ride in its
    /// [`QueryResult`]) or failed before reaching the executor.
    pub fn partial_stats(&self) -> Option<&QueryStats> {
        self.last_partial.as_ref()
    }

    /// The lifecycle context of the most recent statement: its observed
    /// check count (when counting was armed) and charged bytes.
    pub fn last_query_ctx(&self) -> Option<&QueryCtx> {
        self.last_query.as_ref()
    }

    /// Mints the lifecycle context for one statement. Minting happens at
    /// statement start so the deadline measures statement time (admission
    /// wait included), not batch time.
    fn mint_query(&mut self) -> QueryCtx {
        let query = QueryCtx::with_limits(
            self.cancel.clone(),
            &QueryLimits {
                timeout_ms: self.statement_timeout_ms,
                mem_limit_bytes: self.query_mem_bytes,
                cancel_after_checks: self.cancel_after_checks,
            },
        );
        self.last_partial = None;
        self.last_query = Some(query.clone());
        query
    }

    /// A statement that reports [`EngineError::Cancelled`] has consumed
    /// the session's cancel request: clear the sticky flag so the *next*
    /// statement runs instead of aborting instantly.
    fn settle<T>(&mut self, r: Result<T>) -> Result<T> {
        if let Err(EngineError::Cancelled) = &r {
            self.cancel.clear();
        }
        r
    }

    /// Reads a session variable (case-insensitive, no allocation for
    /// already-lowercase names).
    pub fn var(&self, name: &str) -> Option<&Value> {
        crate::expr::lookup_var(&self.vars, name)
    }

    /// Sets a session variable directly (bypassing SQL). Names normalize
    /// to lowercase once, here at insert.
    pub fn set_var(&mut self, name: &str, v: Value) {
        self.vars.insert(name.to_ascii_lowercase(), v);
    }

    /// Prepares a batch: parses it through the engine's plan cache and
    /// pins the result. Repeated [`execute_prepared`](Self::execute_prepared)
    /// calls skip the parser; var-free SELECTs also reuse their compiled
    /// batch plan.
    pub fn prepare(&self, sql: &str) -> Result<Prepared> {
        Ok(Prepared {
            plan: self.engine.plans().get_or_parse(sql)?,
        })
    }

    /// Executes a previously prepared batch.
    pub fn execute_prepared(&mut self, prepared: &Prepared) -> Result<Vec<QueryResult>> {
        self.run_plan(&prepared.plan)
    }

    /// Executes a batch; returns the result of each SELECT, UPDATE and
    /// DELETE in order (DML results carry no rows — their
    /// `stats.rows_affected` is the row count). The parse comes from the
    /// engine's plan cache, shared with every other session.
    pub fn execute(&mut self, sql: &str) -> Result<Vec<QueryResult>> {
        let plan = self.engine.plans().get_or_parse(sql)?;
        self.run_plan(&plan)
    }

    /// Runs one cached batch, statement by statement.
    ///
    /// Lock discipline, per statement: admission ticket first, database
    /// lock second, and both drop before the next statement — a session
    /// never carries a lock between statements, so a long batch cannot
    /// starve the engine.
    fn run_plan(&mut self, cached: &CachedPlan) -> Result<Vec<QueryResult>> {
        let mut results = Vec::new();
        for (i, stmt) in cached.stmts.iter().enumerate() {
            match stmt {
                Stmt::Declare { name, init } => {
                    let v = match init {
                        Some(e) => self.eval_expr(e)?,
                        None => Value::Null,
                    };
                    self.vars.insert(name.to_ascii_lowercase(), v);
                }
                Stmt::Set { name, expr } => {
                    let key = name.to_ascii_lowercase();
                    if !self.vars.contains_key(&key) {
                        return Err(EngineError::Unknown(format!(
                            "variable `@{name}` (DECLARE it first)"
                        )));
                    }
                    let v = self.eval_expr(expr)?;
                    self.vars.insert(key, v);
                }
                Stmt::Select(sel) => {
                    let query = self.mint_query();
                    let outcome = {
                        // Ticket before lock: a queued session must not
                        // hold the database lock while it waits, or it
                        // would block the very writers whose release
                        // frees the budget. The admission wait itself
                        // polls the statement's lifecycle (deadline,
                        // cancel) and can refuse with a typed error.
                        match self.engine.sched().acquire(self.dop, &query) {
                            Err(e) => Err(e),
                            Ok(ticket) => {
                                let db = self.engine.db();
                                let mut ctx = ExecCtx {
                                    store: &db.store,
                                    tables: &db.tables,
                                    udfs: self.engine.udfs(),
                                    udas: self.engine.udas(),
                                    hosting: &mut self.hosting,
                                    vars: &self.vars,
                                    uda_mode: self.uda_mode,
                                    row_limit: self.row_limit,
                                    dop: ticket.granted(),
                                    batch_rows: self.batch_rows,
                                    cached: cached.slot(i),
                                    query: query.clone(),
                                    partial: &mut self.last_partial,
                                };
                                exec_select(&mut ctx, sel)
                            }
                        }
                    };
                    let result = self.settle(outcome)?;
                    for (name, v) in &result.assignments {
                        self.vars.insert(name.to_ascii_lowercase(), v.clone());
                    }
                    results.push(result);
                }
                Stmt::Update(u) => {
                    let result = self.run_dml(|ctx| exec_update(ctx, u))?;
                    results.push(result);
                }
                Stmt::Delete(d) => {
                    let result = self.run_dml(|ctx| exec_delete(ctx, d))?;
                    results.push(result);
                }
            }
        }
        Ok(results)
    }

    /// Runs one mutating statement under the engine's write guard and
    /// commits before releasing it — concurrent readers blocked by the
    /// guard therefore only ever observe committed state.
    fn run_dml(
        &mut self,
        f: impl FnOnce(&mut DmlCtx<'_>) -> Result<QueryResult>,
    ) -> Result<QueryResult> {
        let query = self.mint_query();
        let outcome = match self.engine.sched().acquire(self.dop, &query) {
            Err(e) => Err(e),
            Ok(ticket) => {
                let mut guard = self.engine.db_mut();
                let db = &mut *guard;
                let result = {
                    let mut ctx = DmlCtx {
                        store: &mut db.store,
                        tables: &mut db.tables,
                        udfs: self.engine.udfs(),
                        hosting: &mut self.hosting,
                        vars: &self.vars,
                        dop: ticket.granted(),
                        query: query.clone(),
                        partial: &mut self.last_partial,
                    };
                    f(&mut ctx)
                };
                match result {
                    // Statement-level autocommit: each DML statement is a
                    // durability point, written while this session is
                    // still the exclusive owner. An aborted match phase
                    // commits nothing — no page or WAL byte has changed.
                    Ok(r) => {
                        db.commit();
                        Ok(r)
                    }
                    Err(e) => Err(e),
                }
            }
        };
        self.settle(outcome)
    }

    /// Executes a batch written in the §8 array-notation sugar (`@a[3]`,
    /// `v[1:4]`, `SET @a[0] = x`), translating it through
    /// [`crate::sugar::desugar`] first.
    pub fn execute_sugar(
        &mut self,
        sql: &str,
        types: &crate::sugar::SugarTypes,
    ) -> Result<Vec<QueryResult>> {
        let plain = crate::sugar::desugar(sql, types)?;
        self.execute(&plain)
    }

    /// Sugar variant of [`query`](Self::query).
    pub fn query_sugar(
        &mut self,
        sql: &str,
        types: &crate::sugar::SugarTypes,
    ) -> Result<QueryResult> {
        self.execute_sugar(sql, types)?
            .pop()
            .ok_or_else(|| EngineError::Unsupported("batch contains no SELECT".into()))
    }

    /// Executes a batch and returns the last SELECT's result.
    pub fn query(&mut self, sql: &str) -> Result<QueryResult> {
        self.execute(sql)?
            .pop()
            .ok_or_else(|| EngineError::Unsupported("batch contains no SELECT".into()))
    }

    /// Executes a batch expecting a single scalar result.
    pub fn query_scalar(&mut self, sql: &str) -> Result<Value> {
        Ok(self.query(sql)?.scalar()?.clone())
    }

    /// Evaluates a standalone expression (DECLARE/SET initializers) under
    /// a read guard. LOB-typed variables resolve through a one-partition
    /// scan reader, whose I/O folds back into the store like any scan.
    fn eval_expr(&mut self, e: &crate::expr::Expr) -> Result<Value> {
        let db = self.engine.db();
        let scan = db.store.begin_scan();
        let mut r = db.store.reader(&scan, 0);
        let out = {
            let mut env = EvalEnv {
                udfs: self.engine.udfs(),
                hosting: &mut self.hosting,
                vars: &self.vars,
                lobs: Some(&mut r),
            };
            eval(e, None, &mut env)
        };
        let io = r.finish();
        db.store.finish_scan([&io]);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlarray_storage::ColType;

    fn session_with_tables(rows: i64) -> Session {
        let mut db = Database::new();
        db.create_table(
            "Tscalar",
            Schema::new(&[
                ("id", ColType::I64),
                ("v1", ColType::F64),
                ("v2", ColType::F64),
                ("v3", ColType::F64),
                ("v4", ColType::F64),
                ("v5", ColType::F64),
            ]),
        )
        .unwrap();
        db.create_table(
            "Tvector",
            Schema::new(&[("id", ColType::I64), ("v", ColType::Blob)]),
        )
        .unwrap();
        for k in 0..rows {
            let comps: Vec<f64> = (0..5).map(|i| k as f64 + i as f64 * 0.25).collect();
            let scalar_row: Vec<RowValue> = std::iter::once(RowValue::I64(k))
                .chain(comps.iter().map(|&c| RowValue::F64(c)))
                .collect();
            db.insert("Tscalar", k, &scalar_row).unwrap();
            let arr = sqlarray_core::build::short_vector(&comps).unwrap();
            db.insert(
                "Tvector",
                k,
                &[RowValue::I64(k), RowValue::Bytes(arr.into_blob())],
            )
            .unwrap();
        }
        // Keep unit tests fast: no hosting spin.
        Session::with_hosting(db, HostingModel::free())
    }

    #[test]
    fn paper_queries_1_through_5() {
        let mut s = session_with_tables(200);
        // Q1 / Q2: COUNT(*).
        let q1 = s
            .query_scalar("SELECT COUNT(*) FROM Tscalar WITH (NOLOCK)")
            .unwrap();
        assert_eq!(q1, Value::I64(200));
        let q2 = s
            .query_scalar("SELECT COUNT(*) FROM Tvector WITH (NOLOCK)")
            .unwrap();
        assert_eq!(q2, Value::I64(200));
        // Q3: native column sum.
        let q3 = s
            .query_scalar("SELECT SUM(v1) FROM Tscalar WITH (NOLOCK)")
            .unwrap();
        let expected: f64 = (0..200).map(|k| k as f64).sum();
        assert_eq!(q3, Value::F64(expected));
        // Q4: sum through the array UDF.
        let q4 = s
            .query_scalar("SELECT SUM(floatarray.Item_1(v, 0)) FROM Tvector WITH (NOLOCK)")
            .unwrap();
        assert_eq!(q4, Value::F64(expected));
        // Q5: the empty managed function.
        let q5 = s
            .query_scalar("SELECT SUM(dbo.EmptyFunction(v, 0)) FROM Tvector WITH (NOLOCK)")
            .unwrap();
        assert_eq!(q5, Value::F64(0.0));
    }

    #[test]
    fn q4_charges_one_udf_call_per_row() {
        let mut s = session_with_tables(150);
        let r = s
            .query("SELECT SUM(floatarray.Item_1(v, 0)) FROM Tvector")
            .unwrap();
        assert_eq!(r.stats.rows_scanned, 150);
        assert_eq!(r.stats.udf_calls, 150);
        // Q3 makes none.
        let r3 = s.query("SELECT SUM(v1) FROM Tscalar").unwrap();
        assert_eq!(r3.stats.udf_calls, 0);
    }

    #[test]
    fn declare_set_select_variables() {
        let mut s = session_with_tables(0);
        let results = s
            .execute(
                "DECLARE @a VARBINARY(100) = FloatArray.Vector_5(1.0, 2.0, 3.0, 4.0, 5.0);\
                 SELECT FloatArray.Item_1(@a, 3)",
            )
            .unwrap();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].rows[0][0], Value::F64(4.0));
        // SET without DECLARE fails.
        assert!(s.execute("SET @zzz = 1").is_err());
    }

    #[test]
    fn where_and_projection() {
        let mut s = session_with_tables(20);
        let r = s
            .query("SELECT TOP 3 id, v1 FROM Tscalar WHERE id >= 5")
            .unwrap();
        assert_eq!(r.columns, vec!["id", "v1"]);
        assert_eq!(r.rows.len(), 3);
        assert_eq!(r.rows[0][0], Value::I64(5));
        assert_eq!(r.rows[2][0], Value::I64(7));
    }

    #[test]
    fn group_by_aggregation() {
        let mut s = session_with_tables(10);
        let r = s
            .query("SELECT id % 2, COUNT(*), SUM(v1) FROM Tscalar GROUP BY id % 2")
            .unwrap();
        assert_eq!(r.rows.len(), 2);
        // Insertion order: group of id=0 (even) first.
        assert_eq!(r.rows[0][1], Value::I64(5));
        assert_eq!(r.rows[1][1], Value::I64(5));
        let even: f64 = (0..10).step_by(2).map(|k| k as f64).sum();
        assert_eq!(r.rows[0][2], Value::F64(even));
    }

    #[test]
    fn min_max_avg() {
        let mut s = session_with_tables(9);
        let r = s
            .query("SELECT MIN(v1), MAX(v1), AVG(v1), COUNT(v1) FROM Tscalar")
            .unwrap();
        assert_eq!(r.rows[0][0], Value::F64(0.0));
        assert_eq!(r.rows[0][1], Value::F64(8.0));
        assert_eq!(r.rows[0][2], Value::F64(4.0));
        assert_eq!(r.rows[0][3], Value::I64(9));
    }

    #[test]
    fn concat_uda_via_sql() {
        let mut s = session_with_tables(6);
        // Assemble all six v1 values into one vector, in scan order.
        let results = s
            .execute(
                "DECLARE @l VARBINARY(100) = IntArray.Vector_1(6);\
                 DECLARE @a VARBINARY(MAX);\
                 SELECT @a = FloatArrayMax.Concat(@l, v1) FROM Tscalar",
            )
            .unwrap();
        assert_eq!(results.len(), 1);
        let a = s.var("a").unwrap().as_array().unwrap();
        assert_eq!(a.dims(), &[6]);
        assert_eq!(
            a.to_vec::<f64>().unwrap(),
            vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]
        );
    }

    #[test]
    fn vector_avg_group_composite() {
        let mut s = session_with_tables(8);
        let r = s
            .query("SELECT id % 2, FloatArrayMax.VectorAvg(v) FROM Tvector GROUP BY id % 2")
            .unwrap();
        assert_eq!(r.rows.len(), 2);
        let even = r.rows[0][1].as_array().unwrap();
        // Rows 0,2,4,6: v1 mean = 3.0.
        assert_eq!(even.item(&[0]).unwrap().as_f64().unwrap(), 3.0);
    }

    #[test]
    fn stats_track_io() {
        let mut s = session_with_tables(2000);
        s.db().store.clear_cache();
        let r = s.query("SELECT COUNT(*) FROM Tscalar").unwrap();
        assert!(r.stats.io.pages_read > 5);
        assert!(r.stats.sim_io_seconds > 0.0);
        assert!(r.stats.exec_seconds() > 0.0);
        assert!(r.stats.cpu_percent() <= 100.0);
        // Cached re-run does less physical I/O.
        let r2 = s.query("SELECT COUNT(*) FROM Tscalar").unwrap();
        assert!(r2.stats.io.pages_read < r.stats.io.pages_read);
    }

    #[test]
    fn parallel_execution_matches_serial_bit_for_bit() {
        // 3000 rows span ~30 leaf pages, so DOP 4 genuinely splits the
        // scan. Every query class must return identical rows at any DOP.
        let queries = [
            "SELECT COUNT(*) FROM Tscalar",
            "SELECT SUM(v1), AVG(v2), MIN(v3), MAX(v4), COUNT(v5) FROM Tscalar",
            "SELECT SUM(floatarray.Item_1(v, 0)) FROM Tvector",
            "SELECT id % 3, COUNT(*), SUM(v1) FROM Tscalar GROUP BY id % 3",
            "SELECT TOP 11 id, v1 + v2 FROM Tscalar WHERE id >= 100",
            "SELECT id % 2, FloatArrayMax.VectorAvg(v) FROM Tvector GROUP BY id % 2",
        ];
        for q in queries {
            let mut serial = session_with_tables(3000);
            serial.set_dop(1);
            let a = serial.query(q).unwrap();
            assert_eq!(a.stats.dop, 1);
            for dop in [2, 3, 8] {
                let mut par = session_with_tables(3000);
                par.set_dop(dop);
                let b = par.query(q).unwrap();
                assert_eq!(a.columns, b.columns);
                assert_eq!(a.rows, b.rows, "rows differ at dop {dop}: {q}");
                assert!(b.stats.dop >= 2, "dop {dop} did not fan out: {q}");
            }
        }
    }

    #[test]
    fn parallel_stats_merge_workers() {
        let mut s = session_with_tables(3000);
        s.set_dop(4);
        s.db().store.clear_cache();
        let r = s
            .query("SELECT SUM(floatarray.Item_1(v, 0)) FROM Tvector")
            .unwrap();
        assert_eq!(r.stats.rows_scanned, 3000);
        assert_eq!(r.stats.udf_calls, 3000);
        assert_eq!(r.stats.dop, 4);
        assert!(r.stats.io.pages_read > 10);
        assert!(r.stats.wall_seconds > 0.0);
        // Summed CPU can never be less than the wall clock by more than
        // scheduling noise, and cpu_percent stays a percentage.
        assert!((0.0..=100.0).contains(&r.stats.cpu_percent()));
        assert!(r.stats.measured_speedup() > 0.0);
    }

    #[test]
    fn parallel_scan_errors_propagate() {
        let mut s = session_with_tables(2000);
        s.set_dop(4);
        // Integer division by zero on row id = 500 hits one worker
        // mid-scan; it must surface as an error, not a panic or a partial
        // result.
        let err = s.query("SELECT id / (id - 500) FROM Tscalar");
        assert!(err.is_err());
        // The failed query must leave the session's accounting coherent:
        // the pages its successful workers read are in the pool, and the
        // next query runs normally with consistent stats.
        let r = s.query("SELECT COUNT(*) FROM Tscalar").unwrap();
        assert_eq!(r.rows[0][0], Value::I64(2000));
        assert_eq!(r.stats.udf_calls, 0);
        assert!(r.stats.io.logical_reads() > 0);
    }

    #[test]
    fn concat_uda_is_order_preserving_under_parallelism() {
        let mut s = session_with_tables(2000);
        s.set_dop(5);
        s.execute(
            "DECLARE @l VARBINARY(100) = IntArray.Vector_1(2000);\
             DECLARE @a VARBINARY(MAX);\
             SELECT @a = FloatArrayMax.Concat(@l, v1) FROM Tscalar",
        )
        .unwrap();
        let a = s.var("a").unwrap().as_array().unwrap();
        assert_eq!(a.dims(), &[2000]);
        let vals = a.to_vec::<f64>().unwrap();
        // v1 of row k is k (session_with_tables fills k + 0·0.25).
        assert!(vals.iter().enumerate().all(|(k, &v)| v == k as f64));
    }

    #[test]
    fn bulk_insert_matches_row_inserts_through_sql() {
        // Two databases with the same logical content — one loaded row by
        // row, one bulk-loaded in parallel — must answer every query
        // identically at every DOP.
        let mut by_row = session_with_tables(2500);
        let rows: Vec<(i64, Vec<RowValue>)> = (0..2500)
            .map(|k| {
                let comps: Vec<f64> = (0..5).map(|i| k as f64 + i as f64 * 0.25).collect();
                let v: Vec<RowValue> = std::iter::once(RowValue::I64(k))
                    .chain(comps.iter().map(|&c| RowValue::F64(c)))
                    .collect();
                (k, v)
            })
            .collect();
        let mut db = Database::new();
        db.create_table(
            "Tscalar",
            Schema::new(&[
                ("id", ColType::I64),
                ("v1", ColType::F64),
                ("v2", ColType::F64),
                ("v3", ColType::F64),
                ("v4", ColType::F64),
                ("v5", ColType::F64),
            ]),
        )
        .unwrap();
        db.bulk_insert_with_dop("Tscalar", &rows, 4).unwrap();
        let mut bulk = Session::with_hosting(db, HostingModel::free());
        for q in [
            "SELECT COUNT(*) FROM Tscalar",
            "SELECT SUM(v1), AVG(v3), MIN(v2), MAX(v5) FROM Tscalar",
            "SELECT TOP 7 id, v1 FROM Tscalar WHERE id >= 1000",
        ] {
            for dop in [1usize, 4] {
                by_row.set_dop(dop);
                bulk.set_dop(dop);
                let a = by_row.query(q).unwrap();
                let b = bulk.query(q).unwrap();
                assert_eq!(a.rows, b.rows, "{q} at dop {dop}");
            }
        }
        // Bulk loading a non-empty table errors.
        assert!(bulk.db_mut().bulk_insert("Tscalar", &rows).is_err());
    }

    #[test]
    fn unknown_names_error() {
        let mut s = session_with_tables(1);
        assert!(s.query("SELECT COUNT(*) FROM nope").is_err());
        assert!(s.query("SELECT nocol FROM Tscalar").is_err());
        assert!(s.query("SELECT no.such.fn(1)").is_err());
    }

    #[test]
    fn selects_without_from() {
        let mut s = session_with_tables(0);
        let v = s.query_scalar("SELECT 1 + 2 * 3").unwrap();
        assert_eq!(v, Value::I64(7));
    }

    #[test]
    fn prepared_statements_reuse_the_cached_plan() {
        let mut s = session_with_tables(300);
        let p = s.prepare("SELECT SUM(v1) FROM Tscalar").unwrap();
        let a = s.execute_prepared(&p).unwrap();
        let b = s.execute_prepared(&p).unwrap();
        assert_eq!(a[0].rows, b[0].rows);
        // The second execution reused the compiled batch plan.
        let stats = s.engine().stats();
        assert!(stats.plans.compiled_reuses >= 1, "{stats:?}");
        // Ad-hoc execution of the same (differently spaced) text hits the
        // parsed-plan cache rather than re-parsing.
        let hits_before = s.engine().stats().plans.hits;
        s.query("SELECT  SUM(v1)\nFROM Tscalar").unwrap();
        assert!(s.engine().stats().plans.hits > hits_before);
    }

    #[test]
    fn var_bearing_selects_compile_fresh_per_execution() {
        let mut s = session_with_tables(100);
        s.execute("DECLARE @lo FLOAT = 10.0").unwrap();
        let p = s
            .prepare("SELECT COUNT(*) FROM Tscalar WHERE v1 >= @lo")
            .unwrap();
        let a = s.execute_prepared(&p).unwrap();
        assert_eq!(a[0].rows[0][0], Value::I64(90));
        // Changing the variable must change the result: the plan embeds
        // variable values, so it is recompiled, not reused.
        s.execute("SET @lo = 50.0").unwrap();
        let b = s.execute_prepared(&p).unwrap();
        assert_eq!(b[0].rows[0][0], Value::I64(50));
    }

    #[test]
    fn sessions_share_one_engine() {
        let s = session_with_tables(50);
        let engine = std::sync::Arc::clone(s.engine());
        let mut s1 = engine.session_with_hosting(HostingModel::free());
        let mut s2 = engine.session_with_hosting(HostingModel::free());
        let a = s1.query_scalar("SELECT SUM(v1) FROM Tscalar").unwrap();
        let b = s2.query_scalar("SELECT SUM(v1) FROM Tscalar").unwrap();
        assert_eq!(a, b);
        // The second session's identical text hit the shared plan cache.
        assert!(engine.stats().plans.hits >= 1);
        // Sessions do not share variables.
        s1.set_var("x", Value::I64(1));
        assert!(s2.var("x").is_none());
        // Both admissions went through the scheduler.
        assert!(engine.stats().sched.admitted >= 2);
    }

    #[test]
    fn var_reads_are_case_insensitive_without_insert_normalization_loss() {
        let mut s = session_with_tables(0);
        s.set_var("MiXeD", Value::I64(7));
        assert_eq!(s.var("mixed"), Some(&Value::I64(7)));
        assert_eq!(s.var("MIXED"), Some(&Value::I64(7)));
        assert_eq!(s.var("MiXeD"), Some(&Value::I64(7)));
        assert!(s.var("other").is_none());
    }
}
