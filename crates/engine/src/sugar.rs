//! Array-notation syntactic sugar — the §8 wishlist item.
//!
//! "A syntactic sugar to T-SQL and a pre-parser would be desirable that
//! translates a special flavor of SQL designed for array notation to
//! standard T-SQL with function calls. This could be achieved by writing
//! a specialized .NET database connector that provides the translation."
//! (§8)
//!
//! This module is that pre-parser. It rewrites, purely textually (like
//! the connector-level translator the paper envisions):
//!
//! | sugar                     | translation                                         |
//! |---------------------------|-----------------------------------------------------|
//! | `@a[i]`, `@a[i, j]`       | `Schema.Item(@a, i, j)`                             |
//! | `@a[i0:i1]`               | `Schema.Subarray(@a, IntArray.Vector(i0), IntArray.Vector(i1 - i0), 1)` |
//! | `@a[i0:i1, j0:j1]`        | ditto with rank-2 offset/size vectors               |
//! | `@a[i] = e` (in SET)      | `SET @a = Schema.UpdateItem(@a, i, e)`              |
//! | mixed `@a[2, j0:j1]`      | point indices become width-1 slice axes             |
//!
//! The element schema of each sugared identifier comes from a declared
//! type map (the connector would read it from the catalog); untyped
//! identifiers default to `FloatArray`/`FloatArrayMax`.

use crate::value::{EngineError, Result};
use std::collections::HashMap;

/// Which function schema a sugared identifier's array belongs to.
#[derive(Debug, Clone)]
pub struct SugarTypes {
    map: HashMap<String, String>,
    default_schema: String,
}

impl Default for SugarTypes {
    fn default() -> Self {
        SugarTypes {
            map: HashMap::new(),
            default_schema: "FloatArray".to_string(),
        }
    }
}

impl SugarTypes {
    /// Empty map with `FloatArray` as the default schema.
    pub fn new() -> SugarTypes {
        SugarTypes::default()
    }

    /// Sets the schema used for identifiers without an explicit entry.
    pub fn with_default(mut self, schema: &str) -> SugarTypes {
        self.default_schema = schema.to_string();
        self
    }

    /// Declares the schema of one identifier (variable name without `@`,
    /// or column name).
    pub fn declare(&mut self, ident: &str, schema: &str) {
        self.map
            .insert(ident.to_ascii_lowercase(), schema.to_string());
    }

    fn schema_of(&self, ident: &str) -> &str {
        self.map
            .get(&ident.to_ascii_lowercase())
            .map(String::as_str)
            .unwrap_or(&self.default_schema)
    }
}

/// One parsed bracket axis: a point index or a half-open slice.
enum Axis {
    Point(String),
    Slice(String, String),
}

/// Translates array-notation sugar into plain T-SQL. Text outside
/// brackets passes through untouched; strings and comments are respected.
pub fn desugar(src: &str, types: &SugarTypes) -> Result<String> {
    let bytes = src.as_bytes();
    let mut out = String::with_capacity(src.len() + 64);
    let mut i = 0usize;

    while i < bytes.len() {
        let c = bytes[i];
        match c {
            // String literals pass through verbatim.
            b'\'' => {
                let start = i;
                i += 1;
                while i < bytes.len() {
                    if bytes[i] == b'\'' {
                        if bytes.get(i + 1) == Some(&b'\'') {
                            i += 2;
                            continue;
                        }
                        i += 1;
                        break;
                    }
                    i += 1;
                }
                out.push_str(&src[start..i]);
            }
            // Line comments pass through verbatim.
            b'-' if bytes.get(i + 1) == Some(&b'-') => {
                let start = i;
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
                out.push_str(&src[start..i]);
            }
            b'@' | b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                // Read an identifier (optionally @-prefixed), then check
                // for a bracket.
                let start = i;
                if c == b'@' {
                    i += 1;
                }
                let ident_start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let ident = &src[ident_start..i];
                let full = &src[start..i];
                // Skip whitespace to find a bracket.
                let mut j = i;
                while j < bytes.len() && (bytes[j] == b' ' || bytes[j] == b'\t') {
                    j += 1;
                }
                if ident.is_empty() || j >= bytes.len() || bytes[j] != b'[' {
                    out.push_str(full);
                    continue;
                }
                // Parse the bracket body; both parentheses and nested
                // brackets (`@a[@ix[0]]`) may appear inside indices.
                let body_start = j + 1;
                let mut depth = 0i32;
                let mut bracket_depth = 0i32;
                let mut k = body_start;
                while k < bytes.len() {
                    match bytes[k] {
                        b'(' => depth += 1,
                        b')' => depth -= 1,
                        b'[' => bracket_depth += 1,
                        b']' if bracket_depth > 0 => bracket_depth -= 1,
                        b']' if depth == 0 => break,
                        _ => {}
                    }
                    k += 1;
                }
                if k >= bytes.len() {
                    return Err(EngineError::Parse {
                        pos: j,
                        msg: "unterminated `[` in array notation".to_string(),
                    });
                }
                let body = &src[body_start..k];
                i = k + 1;

                let axes = parse_axes(body, body_start)?;
                let schema = types.schema_of(ident);

                // Assignment form: `@a[i] = expr` inside SET (detected by
                // a following single `=` that is not `==`/`<=`/`>=`).
                let mut m = i;
                while m < bytes.len() && (bytes[m] == b' ' || bytes[m] == b'\t') {
                    m += 1;
                }
                let is_assign = m < bytes.len()
                    && bytes[m] == b'='
                    && bytes.get(m + 1) != Some(&b'=')
                    && out.trim_end().to_ascii_lowercase().ends_with("set");
                if is_assign {
                    // Consume `=` and the RHS up to the statement end
                    // (`;` or end of input).
                    let rhs_start = m + 1;
                    let mut e = rhs_start;
                    let mut depth = 0i32;
                    while e < bytes.len() {
                        match bytes[e] {
                            b'(' => depth += 1,
                            b')' => depth -= 1,
                            b';' if depth == 0 => break,
                            _ => {}
                        }
                        e += 1;
                    }
                    let rhs = desugar(&src[rhs_start..e], types)?;
                    i = e;
                    let points: Vec<&String> = axes
                        .iter()
                        .map(|a| match a {
                            Axis::Point(p) => Ok(p),
                            Axis::Slice(..) => Err(EngineError::Unsupported(
                                "slice assignment is not supported".to_string(),
                            )),
                        })
                        .collect::<Result<_>>()?;
                    // `SET @a[...] = rhs` became: the `SET ` is already in
                    // `out`; emit `@a = Schema.UpdateItem(@a, idx..., rhs)`.
                    out.push_str(full);
                    out.push_str(" = ");
                    out.push_str(schema);
                    out.push_str(".UpdateItem(");
                    out.push_str(full);
                    for p in points {
                        out.push_str(", ");
                        out.push_str(p.trim());
                    }
                    out.push_str(", ");
                    out.push_str(rhs.trim());
                    out.push(')');
                    continue;
                }

                if axes.iter().all(|a| matches!(a, Axis::Point(_))) {
                    // Pure item access.
                    out.push_str(schema);
                    out.push_str(".Item(");
                    out.push_str(full);
                    for a in &axes {
                        if let Axis::Point(p) = a {
                            out.push_str(", ");
                            out.push_str(desugar(p, types)?.trim());
                        }
                    }
                    out.push(')');
                } else {
                    // Slice: offsets and sizes as IntArray vectors; point
                    // axes become width-1 slices and are squeezed away.
                    let mut offsets = Vec::new();
                    let mut sizes = Vec::new();
                    for a in &axes {
                        match a {
                            Axis::Point(p) => {
                                let p = desugar(p, types)?;
                                offsets.push(p.trim().to_string());
                                sizes.push("1".to_string());
                            }
                            Axis::Slice(lo, hi) => {
                                let lo = desugar(lo, types)?.trim().to_string();
                                let hi = desugar(hi, types)?.trim().to_string();
                                sizes.push(format!("({hi}) - ({lo})"));
                                offsets.push(lo);
                            }
                        }
                    }
                    out.push_str(schema);
                    out.push_str(".Subarray(");
                    out.push_str(full);
                    out.push_str(", IntArray.Vector(");
                    out.push_str(&offsets.join(", "));
                    out.push_str("), IntArray.Vector(");
                    out.push_str(&sizes.join(", "));
                    out.push_str("), 1)");
                }
            }
            _ => {
                out.push(c as char);
                i += 1;
            }
        }
    }
    Ok(out)
}

/// Splits a bracket body into comma-separated axes, honoring nested
/// parentheses; each axis is a point or a `lo:hi` slice.
fn parse_axes(body: &str, pos: usize) -> Result<Vec<Axis>> {
    let mut axes = Vec::new();
    let bytes = body.as_bytes();
    let mut depth = 0i32;
    let mut start = 0usize;
    let mut colon: Option<usize> = None;
    let flush = |start: usize, end: usize, colon: Option<usize>| -> Result<Axis> {
        let seg = body[start..end].trim();
        if seg.is_empty() {
            return Err(EngineError::Parse {
                pos,
                msg: "empty axis in array notation".to_string(),
            });
        }
        Ok(match colon {
            Some(c) => Axis::Slice(
                body[start..c].trim().to_string(),
                body[c + 1..end].trim().to_string(),
            ),
            None => Axis::Point(seg.to_string()),
        })
    };
    for (k, &b) in bytes.iter().enumerate() {
        match b {
            b'(' | b'[' => depth += 1,
            b')' | b']' => depth -= 1,
            b':' if depth == 0 => {
                if colon.is_some() {
                    return Err(EngineError::Parse {
                        pos,
                        msg: "multiple `:` in one axis".to_string(),
                    });
                }
                colon = Some(k);
            }
            b',' if depth == 0 => {
                axes.push(flush(start, k, colon)?);
                start = k + 1;
                colon = None;
            }
            _ => {}
        }
    }
    axes.push(flush(start, body.len(), colon)?);
    Ok(axes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{Database, Session};
    use crate::value::Value;

    fn t() -> SugarTypes {
        SugarTypes::new()
    }

    #[test]
    fn item_access_rewrites() {
        let out = desugar("SELECT @a[3]", &t()).unwrap();
        assert_eq!(out, "SELECT FloatArray.Item(@a, 3)");
        let out = desugar("SELECT @m[1, 0]", &t()).unwrap();
        assert_eq!(out, "SELECT FloatArray.Item(@m, 1, 0)");
    }

    #[test]
    fn slice_rewrites_to_subarray() {
        let out = desugar("SELECT @a[1:4]", &t()).unwrap();
        assert_eq!(
            out,
            "SELECT FloatArray.Subarray(@a, IntArray.Vector(1), IntArray.Vector((4) - (1)), 1)"
        );
    }

    #[test]
    fn mixed_point_and_slice() {
        let out = desugar("SELECT @m[2, 0:3]", &t()).unwrap();
        assert_eq!(
            out,
            "SELECT FloatArray.Subarray(@m, IntArray.Vector(2, 0), \
             IntArray.Vector(1, (3) - (0)), 1)"
        );
    }

    #[test]
    fn schema_map_and_columns() {
        let mut types = t();
        types.declare("flux", "FloatArrayMax");
        types.declare("flags", "SmallIntArray");
        let out = desugar("SELECT flux[0], flags[2] FROM spectra", &types).unwrap();
        assert_eq!(
            out,
            "SELECT FloatArrayMax.Item(flux, 0), SmallIntArray.Item(flags, 2) FROM spectra"
        );
    }

    #[test]
    fn assignment_becomes_update_item() {
        let out = desugar("SET @a[2] = 9.5", &t()).unwrap();
        assert_eq!(out, "SET @a = FloatArray.UpdateItem(@a, 2, 9.5)");
        // Slice assignment is rejected.
        assert!(desugar("SET @a[0:2] = 1", &t()).is_err());
    }

    #[test]
    fn strings_and_comments_untouched() {
        let out = desugar("SELECT 'a[1]' -- @x[2]\n", &t()).unwrap();
        assert_eq!(out, "SELECT 'a[1]' -- @x[2]\n");
    }

    #[test]
    fn nested_expressions_in_indices() {
        let out = desugar("SELECT @a[(1 + 2) * 1]", &t()).unwrap();
        assert_eq!(out, "SELECT FloatArray.Item(@a, (1 + 2) * 1)");
        // Index expressions can themselves be sugared.
        let out = desugar("SELECT @a[@ix[0]]", &t()).unwrap();
        assert_eq!(out, "SELECT FloatArray.Item(@a, FloatArray.Item(@ix, 0))");
    }

    #[test]
    fn errors_on_malformed_brackets() {
        assert!(desugar("SELECT @a[1", &t()).is_err());
        assert!(desugar("SELECT @a[]", &t()).is_err());
        assert!(desugar("SELECT @a[1:2:3]", &t()).is_err());
    }

    #[test]
    fn end_to_end_through_the_session() {
        let mut s = Session::new(Database::new());
        s.execute("DECLARE @a VARBINARY(100) = FloatArray.Vector_5(1.0, 2.0, 3.0, 4.0, 5.0)")
            .unwrap();
        // SELECT @a[3] via the sugar API.
        let v = s.query_sugar("SELECT @a[3]", &t()).unwrap();
        assert_eq!(v.rows[0][0], Value::F64(4.0));
        // Slice + aggregate: sum of @a[1:4] = 2+3+4.
        let v = s
            .query_sugar("SELECT FloatArray.Sum(@a[1:4])", &t())
            .unwrap();
        assert_eq!(v.rows[0][0], Value::F64(9.0));
        // Element assignment.
        s.execute_sugar("SET @a[0] = 10.0", &t()).unwrap();
        let v = s.query_sugar("SELECT @a[0]", &t()).unwrap();
        assert_eq!(v.rows[0][0], Value::F64(10.0));
    }

    #[test]
    fn sugared_query_over_table_columns() {
        use sqlarray_storage::{ColType, RowValue, Schema};
        let mut db = Database::new();
        db.create_table(
            "vecs",
            Schema::new(&[("id", ColType::I64), ("v", ColType::Blob)]),
        )
        .unwrap();
        for k in 0..10 {
            let a = sqlarray_core::build::short_vector(&[k as f64, 2.0 * k as f64]).unwrap();
            db.insert(
                "vecs",
                k,
                &[RowValue::I64(k), RowValue::Bytes(a.into_blob())],
            )
            .unwrap();
        }
        let mut s = Session::with_hosting(db, crate::hosting::HostingModel::free());
        // Q4 of Table 1, in sugar: SELECT SUM(v[1]) FROM vecs.
        let v = s.query_sugar("SELECT SUM(v[1]) FROM vecs", &t()).unwrap();
        let expect: f64 = (0..10).map(|k| 2.0 * k as f64).sum();
        assert_eq!(v.rows[0][0], Value::F64(expect));
    }
}
