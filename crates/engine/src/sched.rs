//! Admission control: DOP tickets from a global worker budget.
//!
//! Every statement that fans out asks the engine's [`DopScheduler`] for a
//! ticket before touching the database. The scheduler arbitrates a global
//! **worker budget** (how many scan workers the whole engine may run at
//! once) between however many queries are in flight:
//!
//! * a **lone** query is granted its full request, even past the budget —
//!   single-session behavior is exactly what it was before admission
//!   control existed (the scan is the parallel unit, and oversubscribing
//!   an idle engine is the session's choice);
//! * **concurrent** queries share the budget fairly: each is granted at
//!   most `max(1, budget / active_queries)` workers, further clamped to
//!   the workers still unclaimed — but never below 1, so read-only
//!   queries always make progress;
//! * when every budgeted worker is claimed, new arrivals **queue** on a
//!   condvar — but never unboundedly. Waits are sliced with
//!   `wait_timeout` so a queued statement keeps polling its
//!   [`QueryCtx`]: cancellation surfaces as a typed
//!   [`EngineError::Cancelled`], an expired deadline as
//!   [`EngineError::AdmissionTimeout`] (the statement never ran). And the
//!   queue itself has a depth cap: when `queue_cap` statements are
//!   already waiting, further arrivals are refused immediately with
//!   [`EngineError::Overloaded`] — graceful degradation instead of an
//!   ever-growing convoy.
//!
//! The granted width only changes *how many partitions* a scan fans out
//! over — results are bit-identical at any width, so admission decisions
//! can never change what a query returns, only when it runs and how wide.

use crate::value::EngineError;
use sqlarray_core::env_usize;
use sqlarray_core::lifecycle::{Interrupt, QueryCtx};
use sqlarray_core::sync::{lock_unpoisoned, wait_timeout_unpoisoned};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Environment variable overriding the engine's default worker budget.
pub const WORKER_BUDGET_ENV_VAR: &str = "SQLARRAY_WORKER_BUDGET";

/// Environment variable overriding the admission queue-depth cap.
pub const ADMISSION_QUEUE_ENV_VAR: &str = "SQLARRAY_ADMISSION_QUEUE";

/// Default admission queue depth when neither the environment nor
/// [`crate::engine::EngineConfig`] says otherwise: deep enough that only
/// pathological convoys hit it.
pub const DEFAULT_ADMISSION_QUEUE_CAP: usize = 64;

/// Wait slice for queued statements: how often a waiter re-polls its
/// cancellation token and deadline while blocked on the condvar. Grants
/// don't wait for the slice — a release notifies immediately.
const ADMISSION_POLL: Duration = Duration::from_millis(10);

/// The default worker budget: `SQLARRAY_WORKER_BUDGET` when set (clamped
/// to ≥ 1), otherwise the configured DOP (`SQLARRAY_DOP`, else the core
/// count).
pub fn configured_worker_budget() -> usize {
    env_usize(WORKER_BUDGET_ENV_VAR)
        .map(|n| n.max(1))
        .unwrap_or_else(sqlarray_core::parallel::configured_dop)
}

/// The default admission queue cap: `SQLARRAY_ADMISSION_QUEUE` when set
/// (clamped to ≥ 1), else [`DEFAULT_ADMISSION_QUEUE_CAP`].
pub fn configured_admission_queue_cap() -> usize {
    env_usize(ADMISSION_QUEUE_ENV_VAR)
        .map(|n| n.max(1))
        .unwrap_or(DEFAULT_ADMISSION_QUEUE_CAP)
}

/// Observable scheduler counters (snapshot).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Tickets granted so far.
    pub admitted: u64,
    /// Times an acquire had to wait for a release.
    pub queued: u64,
    /// High-water mark of simultaneously granted workers. Can exceed the
    /// budget only through lone-query full grants.
    pub peak_in_flight: usize,
    /// Statements refused because the wait queue was at its depth cap.
    pub rejected_overload: u64,
    /// Statements whose deadline expired while queued (never ran).
    pub admission_timeouts: u64,
    /// Statements cancelled while queued (never ran).
    pub admission_cancelled: u64,
    /// Total time statements spent queued before a grant, in nanoseconds
    /// (timed-out/cancelled waits included).
    pub wait_nanos: u64,
}

#[derive(Debug, Default)]
struct SchedState {
    /// Workers currently granted to live tickets.
    in_flight: usize,
    /// Queries holding or waiting for a ticket.
    active: usize,
    /// Queries currently blocked in `acquire` (subset of `active`).
    waiting: usize,
    stats: SchedStats,
}

/// The admission-control scheduler. One per engine.
#[derive(Debug)]
pub struct DopScheduler {
    budget: usize,
    queue_cap: usize,
    state: Mutex<SchedState>,
    released: Condvar,
}

impl DopScheduler {
    /// A scheduler over a worker budget of `budget` (clamped to ≥ 1)
    /// with the configured default queue cap.
    pub fn new(budget: usize) -> DopScheduler {
        DopScheduler::with_queue_cap(budget, configured_admission_queue_cap())
    }

    /// A scheduler with an explicit queue-depth cap (clamped to ≥ 1).
    pub fn with_queue_cap(budget: usize, queue_cap: usize) -> DopScheduler {
        DopScheduler {
            budget: budget.max(1),
            queue_cap: queue_cap.max(1),
            state: Mutex::new(SchedState::default()),
            released: Condvar::new(),
        }
    }

    /// The global worker budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// The admission queue-depth cap.
    pub fn queue_cap(&self) -> usize {
        self.queue_cap
    }

    fn state(&self) -> MutexGuard<'_, SchedState> {
        // Counter arithmetic only inside the critical sections; the
        // repo-wide recover-on-poison policy applies trivially.
        lock_unpoisoned(&self.state)
    }

    /// Acquires a DOP ticket for a statement requesting `requested`
    /// workers (clamped to ≥ 1), polling `query` while queued. Returns
    /// a typed error — never blocks unboundedly — when:
    ///
    /// * the wait queue is already `queue_cap` deep
    ///   ([`EngineError::Overloaded`], immediate);
    /// * the statement's deadline expires while queued
    ///   ([`EngineError::AdmissionTimeout`]);
    /// * the statement is cancelled while queued
    ///   ([`EngineError::Cancelled`]).
    ///
    /// The ticket releases its grant on drop.
    pub fn acquire(
        &self,
        requested: usize,
        query: &QueryCtx,
    ) -> Result<DopTicket<'_>, EngineError> {
        let requested = requested.max(1);
        let mut st = self.state();
        st.active += 1;
        let mut wait_started: Option<Instant> = None;
        let granted = loop {
            if st.in_flight == 0 {
                // Nothing else is running: a lone query keeps its full
                // request (pre-admission-control behavior); with waiters
                // racing in, the first grant still respects fair share.
                break if st.active == 1 {
                    requested
                } else {
                    requested.min((self.budget / st.active).max(1))
                };
            }
            let free = self.budget.saturating_sub(st.in_flight);
            if free > 0 {
                let fair = (self.budget / st.active).max(1);
                break requested.min(fair).min(free);
            }
            if wait_started.is_none() {
                // About to queue for the first time: refuse instead if
                // the queue is already at its cap.
                if st.waiting >= self.queue_cap {
                    st.stats.rejected_overload += 1;
                    let waiting = st.waiting;
                    st.active -= 1;
                    return Err(EngineError::Overloaded {
                        waiting,
                        cap: self.queue_cap,
                    });
                }
                st.waiting += 1;
                st.stats.queued += 1;
                wait_started = Some(Instant::now());
            }
            // Bounded wait: poll the lifecycle context between slices so
            // a queued statement honors cancellation and its deadline.
            if let Err(i) = query.check() {
                st.waiting -= 1;
                st.active -= 1;
                st.stats.wait_nanos += elapsed_nanos(wait_started);
                return Err(match i {
                    Interrupt::Timeout { timeout_ms } => {
                        st.stats.admission_timeouts += 1;
                        EngineError::AdmissionTimeout { timeout_ms }
                    }
                    other => {
                        st.stats.admission_cancelled += 1;
                        other.into()
                    }
                });
            }
            let slice = match query.deadline() {
                Some(d) => d
                    .saturating_duration_since(Instant::now())
                    .min(ADMISSION_POLL),
                None => ADMISSION_POLL,
            };
            (st, _) = wait_timeout_unpoisoned(&self.released, st, slice);
        };
        if wait_started.is_some() {
            st.waiting -= 1;
            st.stats.wait_nanos += elapsed_nanos(wait_started);
        }
        st.in_flight += granted;
        st.stats.admitted += 1;
        st.stats.peak_in_flight = st.stats.peak_in_flight.max(st.in_flight);
        Ok(DopTicket {
            sched: self,
            granted,
        })
    }

    /// Current counters.
    pub fn stats(&self) -> SchedStats {
        self.state().stats
    }

    /// Workers currently granted to live tickets — 0 on an idle engine,
    /// which is what the lifecycle tests assert when proving aborted
    /// statements leak no tickets.
    pub fn in_flight(&self) -> usize {
        self.state().in_flight
    }

    /// Queries holding or waiting for a ticket right now.
    pub fn active(&self) -> usize {
        self.state().active
    }
}

fn elapsed_nanos(since: Option<Instant>) -> u64 {
    since
        .map(|t| t.elapsed().as_nanos().min(u64::MAX as u128) as u64)
        .unwrap_or(0)
}

/// A granted degree-of-parallelism ticket. Holds `granted` workers out of
/// the engine budget until dropped.
#[derive(Debug)]
pub struct DopTicket<'a> {
    sched: &'a DopScheduler,
    granted: usize,
}

impl DopTicket<'_> {
    /// Workers this statement may fan out over.
    pub fn granted(&self) -> usize {
        self.granted
    }
}

impl Drop for DopTicket<'_> {
    fn drop(&mut self) {
        let mut st = self.sched.state();
        st.in_flight -= self.granted;
        st.active -= 1;
        drop(st);
        self.sched.released.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlarray_core::lifecycle::{CancelHandle, QueryLimits};
    use std::sync::Arc;

    fn unbounded() -> QueryCtx {
        QueryCtx::unbounded()
    }

    #[test]
    fn lone_query_gets_full_request_even_past_budget() {
        let s = DopScheduler::new(2);
        let t = s.acquire(8, &unbounded()).unwrap();
        assert_eq!(t.granted(), 8);
        drop(t);
        assert_eq!(s.stats().admitted, 1);
        assert_eq!(s.stats().peak_in_flight, 8);
        assert_eq!(s.in_flight(), 0);
    }

    #[test]
    fn concurrent_queries_share_the_budget_fairly() {
        let s = DopScheduler::new(8);
        let a = s.acquire(8, &unbounded()).unwrap();
        assert_eq!(a.granted(), 8);
        drop(a);
        // With one ticket live, a second request is clamped to fair share
        // of the remainder.
        let a = s.acquire(4, &unbounded()).unwrap();
        let b = s.acquire(8, &unbounded()).unwrap();
        assert_eq!(a.granted(), 4);
        // active = 2 → fair share 4, free 4.
        assert_eq!(b.granted(), 4);
        drop(a);
        drop(b);
        assert_eq!(s.stats().admitted, 3);
        assert_eq!(s.stats().peak_in_flight, 8);
    }

    #[test]
    fn exhausted_budget_queues_until_release() {
        let s = Arc::new(DopScheduler::new(2));
        let a = s.acquire(2, &unbounded()).unwrap();
        let s2 = Arc::clone(&s);
        let waiter = std::thread::spawn(move || s2.acquire(2, &unbounded()).unwrap().granted());
        // Give the waiter time to block, then release.
        while s.stats().queued == 0 {
            std::thread::yield_now();
        }
        drop(a);
        let granted = waiter.join().expect("waiter panicked");
        assert!(granted >= 1);
        assert!(s.stats().queued >= 1);
        assert!(s.stats().wait_nanos > 0, "queued time is surfaced");
    }

    #[test]
    fn every_grant_is_at_least_one() {
        let s = DopScheduler::new(1);
        let a = s.acquire(1, &unbounded()).unwrap();
        // in_flight == budget, but free == 0 → would queue; release first.
        drop(a);
        let b = s.acquire(4, &unbounded()).unwrap();
        assert!(b.granted() >= 1);
    }

    #[test]
    fn queued_statement_times_out_with_typed_error() {
        let s = DopScheduler::new(1);
        let _hold = s.acquire(1, &unbounded()).unwrap();
        let q = QueryCtx::with_limits(
            CancelHandle::new(),
            &QueryLimits {
                timeout_ms: Some(20),
                ..QueryLimits::default()
            },
        );
        let err = s.acquire(1, &q).unwrap_err();
        assert_eq!(err, EngineError::AdmissionTimeout { timeout_ms: 20 });
        let st = s.stats();
        assert_eq!(st.admission_timeouts, 1);
        assert!(st.wait_nanos > 0);
        // The failed waiter left no residue.
        assert_eq!(s.active(), 1);
    }

    #[test]
    fn queued_statement_honors_cancellation() {
        let s = Arc::new(DopScheduler::new(1));
        let hold = s.acquire(1, &unbounded()).unwrap();
        let h = CancelHandle::new();
        let q = QueryCtx::with_limits(h.clone(), &QueryLimits::default());
        let s2 = Arc::clone(&s);
        let waiter = std::thread::spawn(move || s2.acquire(1, &q).unwrap_err());
        while s.stats().queued == 0 {
            std::thread::yield_now();
        }
        h.cancel();
        assert_eq!(waiter.join().unwrap(), EngineError::Cancelled);
        assert_eq!(s.stats().admission_cancelled, 1);
        drop(hold);
        assert_eq!(s.in_flight(), 0);
    }

    #[test]
    fn full_queue_rejects_immediately_with_overloaded() {
        let s = Arc::new(DopScheduler::with_queue_cap(1, 1));
        let _hold = s.acquire(1, &unbounded()).unwrap();
        // One statement parks in the queue…
        let s2 = Arc::clone(&s);
        let _parked = std::thread::spawn(move || {
            let q = QueryCtx::with_limits(
                CancelHandle::new(),
                &QueryLimits {
                    timeout_ms: Some(60_000),
                    ..QueryLimits::default()
                },
            );
            let _ = s2.acquire(1, &q);
        });
        while s.stats().queued == 0 {
            std::thread::yield_now();
        }
        // …so the next arrival is refused without blocking.
        let err = s.acquire(1, &unbounded()).unwrap_err();
        assert_eq!(err, EngineError::Overloaded { waiting: 1, cap: 1 });
        assert_eq!(s.stats().rejected_overload, 1);
        assert!(err.is_retryable());
    }
}
