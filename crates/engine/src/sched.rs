//! Admission control: DOP tickets from a global worker budget.
//!
//! Every statement that fans out asks the engine's [`DopScheduler`] for a
//! ticket before touching the database. The scheduler arbitrates a global
//! **worker budget** (how many scan workers the whole engine may run at
//! once) between however many queries are in flight:
//!
//! * a **lone** query is granted its full request, even past the budget —
//!   single-session behavior is exactly what it was before admission
//!   control existed (the scan is the parallel unit, and oversubscribing
//!   an idle engine is the session's choice);
//! * **concurrent** queries share the budget fairly: each is granted at
//!   most `max(1, budget / active_queries)` workers, further clamped to
//!   the workers still unclaimed — but never below 1, so read-only
//!   queries always make progress;
//! * when every budgeted worker is claimed, new arrivals **queue** on a
//!   condvar until a ticket releases.
//!
//! The granted width only changes *how many partitions* a scan fans out
//! over — results are bit-identical at any width, so admission decisions
//! can never change what a query returns, only when it runs and how wide.

use sqlarray_core::env_usize;
use std::sync::{Condvar, Mutex, MutexGuard};

/// Environment variable overriding the engine's default worker budget.
pub const WORKER_BUDGET_ENV_VAR: &str = "SQLARRAY_WORKER_BUDGET";

/// The default worker budget: `SQLARRAY_WORKER_BUDGET` when set (clamped
/// to ≥ 1), otherwise the configured DOP (`SQLARRAY_DOP`, else the core
/// count).
pub fn configured_worker_budget() -> usize {
    env_usize(WORKER_BUDGET_ENV_VAR)
        .map(|n| n.max(1))
        .unwrap_or_else(sqlarray_core::parallel::configured_dop)
}

/// Observable scheduler counters (snapshot).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Tickets granted so far.
    pub admitted: u64,
    /// Times an acquire had to wait for a release.
    pub queued: u64,
    /// High-water mark of simultaneously granted workers. Can exceed the
    /// budget only through lone-query full grants.
    pub peak_in_flight: usize,
}

#[derive(Default)]
struct SchedState {
    /// Workers currently granted to live tickets.
    in_flight: usize,
    /// Queries holding or waiting for a ticket.
    active: usize,
    stats: SchedStats,
}

/// The admission-control scheduler. One per engine.
pub struct DopScheduler {
    budget: usize,
    state: Mutex<SchedState>,
    released: Condvar,
}

impl DopScheduler {
    /// A scheduler over a worker budget of `budget` (clamped to ≥ 1).
    pub fn new(budget: usize) -> DopScheduler {
        DopScheduler {
            budget: budget.max(1),
            state: Mutex::new(SchedState::default()),
            released: Condvar::new(),
        }
    }

    /// The global worker budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    fn state(&self) -> MutexGuard<'_, SchedState> {
        // Poisoning is unreachable: the critical sections are counter
        // arithmetic only.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires a DOP ticket for a statement requesting `requested`
    /// workers (clamped to ≥ 1). Blocks while the budget is exhausted by
    /// other queries. The ticket releases its grant on drop.
    pub fn acquire(&self, requested: usize) -> DopTicket<'_> {
        let requested = requested.max(1);
        let mut st = self.state();
        st.active += 1;
        let granted = loop {
            if st.in_flight == 0 {
                // Nothing else is running: a lone query keeps its full
                // request (pre-admission-control behavior); with waiters
                // racing in, the first grant still respects fair share.
                break if st.active == 1 {
                    requested
                } else {
                    requested.min((self.budget / st.active).max(1))
                };
            }
            let free = self.budget.saturating_sub(st.in_flight);
            if free > 0 {
                let fair = (self.budget / st.active).max(1);
                break requested.min(fair).min(free);
            }
            st.stats.queued += 1;
            st = self.released.wait(st).unwrap_or_else(|e| e.into_inner());
        };
        st.in_flight += granted;
        st.stats.admitted += 1;
        st.stats.peak_in_flight = st.stats.peak_in_flight.max(st.in_flight);
        DopTicket {
            sched: self,
            granted,
        }
    }

    /// Current counters.
    pub fn stats(&self) -> SchedStats {
        self.state().stats
    }
}

/// A granted degree-of-parallelism ticket. Holds `granted` workers out of
/// the engine budget until dropped.
pub struct DopTicket<'a> {
    sched: &'a DopScheduler,
    granted: usize,
}

impl DopTicket<'_> {
    /// Workers this statement may fan out over.
    pub fn granted(&self) -> usize {
        self.granted
    }
}

impl Drop for DopTicket<'_> {
    fn drop(&mut self) {
        let mut st = self.sched.state();
        st.in_flight -= self.granted;
        st.active -= 1;
        drop(st);
        self.sched.released.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lone_query_gets_full_request_even_past_budget() {
        let s = DopScheduler::new(2);
        let t = s.acquire(8);
        assert_eq!(t.granted(), 8);
        drop(t);
        assert_eq!(s.stats().admitted, 1);
        assert_eq!(s.stats().peak_in_flight, 8);
    }

    #[test]
    fn concurrent_queries_share_the_budget_fairly() {
        let s = DopScheduler::new(8);
        let a = s.acquire(8);
        assert_eq!(a.granted(), 8);
        drop(a);
        // With one ticket live, a second request is clamped to fair share
        // of the remainder.
        let a = s.acquire(4);
        let b = s.acquire(8);
        assert_eq!(a.granted(), 4);
        // active = 2 → fair share 4, free 4.
        assert_eq!(b.granted(), 4);
        drop(a);
        drop(b);
        assert_eq!(s.stats().admitted, 3);
        assert_eq!(s.stats().peak_in_flight, 8);
    }

    #[test]
    fn exhausted_budget_queues_until_release() {
        let s = Arc::new(DopScheduler::new(2));
        let a = s.acquire(2);
        let s2 = Arc::clone(&s);
        let waiter = std::thread::spawn(move || s2.acquire(2).granted());
        // Give the waiter time to block, then release.
        while s.stats().queued == 0 {
            std::thread::yield_now();
        }
        drop(a);
        let granted = waiter.join().expect("waiter panicked");
        assert!(granted >= 1);
        assert!(s.stats().queued >= 1);
    }

    #[test]
    fn every_grant_is_at_least_one() {
        let s = DopScheduler::new(1);
        let a = s.acquire(1);
        // in_flight == budget, but free == 0 → would queue; release first.
        drop(a);
        let b = s.acquire(4);
        assert!(b.granted() >= 1);
    }
}
