//! The vectorized execution plan: compiling scan expressions to batch
//! kernels, and evaluating them over columnar batches.
//!
//! [`plan_select`] is **the** fallback seam of the vectorized pipeline: it
//! returns `Some(BatchPlan)` exactly when every expression a scan must
//! evaluate compiles to the batch kernel set — column references of scalar
//! type, numeric/boolean literals and session variables, arithmetic,
//! comparisons, `AND`/`OR`/`NOT`, unary minus, the built-in aggregates, and
//! bare blob-column projections. Anything else — UDFs (including the
//! `Subarray`/`Item` LOB pushdown), UDAs, `GROUP BY`, string/bytes
//! comparisons — returns `None` and the executor runs the row-at-a-time
//! interpreter instead. There is no third path.
//!
//! Compiled plans reproduce the row interpreter's semantics exactly:
//!
//! * integer × integer arithmetic wraps in `i64` and yields `BIGINT`;
//!   any float or boolean operand switches the operator to `f64`;
//! * comparisons coerce both sides to `f64`; a NaN operand raises the
//!   same typed error;
//! * `AND`/`OR` short-circuit *per row* via selection splitting: the right
//!   operand is evaluated only over rows the left operand did not decide,
//!   so an error in the right operand surfaces for exactly the rows the
//!   row interpreter would have evaluated it on;
//! * projections and aggregate arguments are evaluated only over rows
//!   that passed the filter;
//! * unary minus preserves the operand's type, like the row path.

use crate::expr::{AggFunc, BinOp, Expr};
use crate::tsql::SelectItem;
use crate::value::{EngineError, Result, Value};
use sqlarray_core::batch as b;
use sqlarray_core::batch::{ArithOp, Batch, CmpOp, ColVec};
use sqlarray_storage::{ColType, Schema};
use std::collections::HashMap;

/// Static type of a compiled batch expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum VKind {
    I64,
    I32,
    F64,
    F32,
    Bool,
}

impl VKind {
    fn is_int(self) -> bool {
        matches!(self, VKind::I64 | VKind::I32)
    }
}

/// A compiled scalar expression over batch columns.
#[derive(Debug, Clone)]
pub(crate) enum BExpr {
    /// Batch column `pos` (a position in [`BatchPlan::cols`], not a schema
    /// index) of the given scalar kind.
    Col {
        pos: usize,
        kind: VKind,
    },
    LitI64(i64),
    LitI32(i32),
    LitF64(f64),
    LitF32(f32),
    LitBool(bool),
    Neg(Box<BExpr>),
    Not(Box<BExpr>),
    And(Box<BExpr>, Box<BExpr>),
    Or(Box<BExpr>, Box<BExpr>),
    Cmp {
        op: CmpOp,
        l: Box<BExpr>,
        r: Box<BExpr>,
    },
    /// Both operands integral: wrapping `i64` arithmetic yielding `BIGINT`.
    IntArith {
        op: ArithOp,
        l: Box<BExpr>,
        r: Box<BExpr>,
    },
    /// At least one non-integral operand: `f64` arithmetic yielding `FLOAT`.
    FloatArith {
        op: ArithOp,
        l: Box<BExpr>,
        r: Box<BExpr>,
    },
}

impl BExpr {
    pub(crate) fn kind(&self) -> VKind {
        match self {
            BExpr::Col { kind, .. } => *kind,
            BExpr::LitI64(_) => VKind::I64,
            BExpr::LitI32(_) => VKind::I32,
            BExpr::LitF64(_) => VKind::F64,
            BExpr::LitF32(_) => VKind::F32,
            BExpr::LitBool(_) => VKind::Bool,
            BExpr::Neg(e) => e.kind(),
            BExpr::Not(_) | BExpr::And(..) | BExpr::Or(..) | BExpr::Cmp { .. } => VKind::Bool,
            BExpr::IntArith { .. } => VKind::I64,
            BExpr::FloatArith { .. } => VKind::F64,
        }
    }
}

/// The argument of a compiled built-in aggregate.
#[derive(Debug, Clone)]
pub(crate) enum BAggArg {
    /// A scalar expression (`SUM`/`AVG`/`MIN`/`MAX`/`COUNT` over numerics).
    Scalar(BExpr),
    /// `COUNT(blob_col)`: the argument is a bare blob column — only
    /// null-ness matters and stored columns are never null, so the batch
    /// position is carried for shape only.
    Blob(usize),
}

/// One compiled select-list item.
#[derive(Debug, Clone)]
pub(crate) enum BItem {
    /// Scalar projection.
    Proj(BExpr),
    /// Bare blob-column projection: materialized per selected row at the
    /// projection boundary (inline bytes copied, LOB references resolved
    /// through the worker's reader in row order).
    ProjBlob(usize),
    /// Built-in aggregate.
    Agg { func: AggFunc, arg: Option<BAggArg> },
    /// Non-aggregate item inside an aggregate query: evaluated once, at
    /// the first filter-passing row (the row interpreter's semantics).
    Plain(BExpr),
}

/// A compiled vectorized scan: which schema columns to decode, the filter,
/// and the select-list items, all in terms of batch column positions.
#[derive(Debug, Clone)]
pub(crate) struct BatchPlan {
    /// Schema column indices to decode, in batch-column order.
    pub cols: Vec<usize>,
    /// Compiled WHERE predicate.
    pub filter: Option<BExpr>,
    /// Compiled select-list items (aggregates iff the query aggregates).
    pub items: Vec<BItem>,
    /// Flush batches at every leaf boundary. Set when the plan touches a
    /// blob column, so per-batch LOB resolution interleaves page reads
    /// (leaf, then that leaf's LOB pages) exactly like the row-at-a-time
    /// scan — the IoStats/seek DOP-invariance machinery depends on it.
    pub leaf_aligned: bool,
}

struct Compiler<'a> {
    schema: &'a Schema,
    vars: &'a HashMap<String, Value>,
    cols: Vec<usize>,
}

impl<'a> Compiler<'a> {
    /// Batch column position for a schema index, registering it on first
    /// use. Linear scan: plans touch a handful of columns.
    fn col_pos(&mut self, idx: usize) -> usize {
        match self.cols.iter().position(|&c| c == idx) {
            Some(p) => p,
            None => {
                self.cols.push(idx);
                self.cols.len() - 1
            }
        }
    }

    fn lit(&self, v: &Value) -> Option<BExpr> {
        match v {
            Value::I64(x) => Some(BExpr::LitI64(*x)),
            Value::I32(x) => Some(BExpr::LitI32(*x)),
            Value::F64(x) => Some(BExpr::LitF64(*x)),
            Value::F32(x) => Some(BExpr::LitF32(*x)),
            Value::Bool(x) => Some(BExpr::LitBool(*x)),
            // Null, strings, bytes, and LOB references keep the row
            // interpreter's semantics (string compares, null propagation)
            // by falling back.
            _ => None,
        }
    }

    fn compile(&mut self, e: &Expr) -> Option<BExpr> {
        match e {
            Expr::Lit(v) => self.lit(v),
            // A missing variable is a per-row error in the interpreter
            // (FROM-scans only raise it when the table is non-empty), so
            // it must stay on the row path to error identically.
            Expr::Var(name) => {
                let v = crate::expr::lookup_var(self.vars, name)?;
                self.lit(v)
            }
            Expr::Col(name) => {
                let idx = self.schema.col_index(name)?;
                let kind = match self.schema.columns[idx].ctype {
                    ColType::I64 => VKind::I64,
                    ColType::I32 => VKind::I32,
                    ColType::F64 => VKind::F64,
                    ColType::F32 => VKind::F32,
                    // Blob columns inside computed expressions (equality,
                    // truthiness, …) keep row semantics by falling back.
                    ColType::Blob => return None,
                };
                Some(BExpr::Col {
                    pos: self.col_pos(idx),
                    kind,
                })
            }
            Expr::Neg(inner) => {
                let c = self.compile(inner)?;
                if c.kind() == VKind::Bool {
                    // `-(bool)` is a typed error in the interpreter; the
                    // fallback raises it with the exact message.
                    return None;
                }
                Some(BExpr::Neg(Box::new(c)))
            }
            Expr::Not(inner) => Some(BExpr::Not(Box::new(self.compile(inner)?))),
            Expr::Bin { op, left, right } => {
                let l = Box::new(self.compile(left)?);
                let r = Box::new(self.compile(right)?);
                match op {
                    BinOp::And => Some(BExpr::And(l, r)),
                    BinOp::Or => Some(BExpr::Or(l, r)),
                    BinOp::Eq => Some(BExpr::Cmp {
                        op: CmpOp::Eq,
                        l,
                        r,
                    }),
                    BinOp::Ne => Some(BExpr::Cmp {
                        op: CmpOp::Ne,
                        l,
                        r,
                    }),
                    BinOp::Lt => Some(BExpr::Cmp {
                        op: CmpOp::Lt,
                        l,
                        r,
                    }),
                    BinOp::Le => Some(BExpr::Cmp {
                        op: CmpOp::Le,
                        l,
                        r,
                    }),
                    BinOp::Gt => Some(BExpr::Cmp {
                        op: CmpOp::Gt,
                        l,
                        r,
                    }),
                    BinOp::Ge => Some(BExpr::Cmp {
                        op: CmpOp::Ge,
                        l,
                        r,
                    }),
                    BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
                        let aop = match op {
                            BinOp::Add => ArithOp::Add,
                            BinOp::Sub => ArithOp::Sub,
                            BinOp::Mul => ArithOp::Mul,
                            BinOp::Div => ArithOp::Div,
                            BinOp::Mod => ArithOp::Mod,
                            _ => unreachable!(),
                        };
                        if l.kind().is_int() && r.kind().is_int() {
                            Some(BExpr::IntArith { op: aop, l, r })
                        } else {
                            Some(BExpr::FloatArith { op: aop, l, r })
                        }
                    }
                }
            }
            // UDFs (and the LOB pushdown behind them), UDAs, and nested
            // aggregates stay on the row path.
            Expr::Func { .. } | Expr::UdaCall { .. } | Expr::Agg { .. } => None,
        }
    }

    /// A bare blob-column reference, as a batch position.
    fn blob_col(&mut self, e: &Expr) -> Option<usize> {
        let Expr::Col(name) = e else { return None };
        let idx = self.schema.col_index(name)?;
        if self.schema.columns[idx].ctype != ColType::Blob {
            return None;
        }
        Some(self.col_pos(idx))
    }
}

/// Compiles a SELECT scan to a [`BatchPlan`], or `None` to run the
/// row-at-a-time interpreter. This is the vectorized pipeline's single
/// fallback seam — see the module docs for what compiles.
pub(crate) fn plan_select(
    schema: &Schema,
    items: &[SelectItem],
    where_clause: Option<&Expr>,
    group_by: &[Expr],
    has_aggregate: bool,
    vars: &HashMap<String, Value>,
) -> Option<BatchPlan> {
    if !group_by.is_empty() {
        return None;
    }
    let mut c = Compiler {
        schema,
        vars,
        cols: Vec::new(),
    };
    let filter = match where_clause {
        Some(w) => Some(c.compile(w)?),
        None => None,
    };
    let mut plan_items = Vec::with_capacity(items.len());
    for it in items {
        let item = if has_aggregate {
            match &it.expr {
                Expr::Agg { func, arg } => {
                    let barg = match (func, arg) {
                        (AggFunc::CountStar, _) => None,
                        (AggFunc::Count, Some(e)) => Some(match c.blob_col(e) {
                            Some(pos) => BAggArg::Blob(pos),
                            None => BAggArg::Scalar(c.compile(e)?),
                        }),
                        (AggFunc::Sum | AggFunc::Avg | AggFunc::Min | AggFunc::Max, Some(e)) => {
                            Some(BAggArg::Scalar(c.compile(e)?))
                        }
                        _ => return None,
                    };
                    BItem::Agg {
                        func: *func,
                        arg: barg,
                    }
                }
                Expr::UdaCall { .. } => return None,
                other => BItem::Plain(c.compile(other)?),
            }
        } else {
            match c.blob_col(&it.expr) {
                Some(pos) => BItem::ProjBlob(pos),
                None => BItem::Proj(c.compile(&it.expr)?),
            }
        };
        plan_items.push(item);
    }
    let leaf_aligned = c
        .cols
        .iter()
        .any(|&i| schema.columns[i].ctype == ColType::Blob);
    Some(BatchPlan {
        cols: c.cols,
        filter,
        items: plan_items,
        leaf_aligned,
    })
}

/// A batch expression result: one value per *selected* row, dense.
#[derive(Debug, Clone)]
pub(crate) enum BVal {
    I64(Vec<i64>),
    I32(Vec<i32>),
    F64(Vec<f64>),
    F32(Vec<f32>),
    Bool(Vec<bool>),
}

impl BVal {
    pub(crate) fn len(&self) -> usize {
        match self {
            BVal::I64(v) => v.len(),
            BVal::I32(v) => v.len(),
            BVal::F64(v) => v.len(),
            BVal::F32(v) => v.len(),
            BVal::Bool(v) => v.len(),
        }
    }

    /// The `i`-th value as an engine [`Value`], preserving the lane type
    /// (an `INT` column stays `Value::I32`, like the row interpreter).
    pub(crate) fn value_at(&self, i: usize) -> Value {
        match self {
            BVal::I64(v) => Value::I64(v[i]),
            BVal::I32(v) => Value::I32(v[i]),
            BVal::F64(v) => Value::F64(v[i]),
            BVal::F32(v) => Value::F32(v[i]),
            BVal::Bool(v) => Value::Bool(v[i]),
        }
    }

    /// Integral lanes widened to `i64` (only called on int-kind results).
    fn into_i64(self) -> Result<Vec<i64>> {
        match self {
            BVal::I64(v) => Ok(v),
            BVal::I32(v) => {
                let mut out = Vec::new();
                b::widen_i32(&v, &mut out);
                Ok(out)
            }
            other => Err(EngineError::Type(format!(
                "batch plan error: expected integral lanes, got {other:?}"
            ))),
        }
    }

    /// Lanes coerced to `f64` with the row path's `as_f64` semantics
    /// (`BIT` → 0/1).
    pub(crate) fn into_f64(self) -> Vec<f64> {
        match self {
            BVal::F64(v) => v,
            BVal::I64(v) => {
                let mut out = Vec::new();
                b::f64_from_i64(&v, &mut out);
                out
            }
            BVal::I32(v) => {
                let mut out = Vec::new();
                b::f64_from_i32(&v, &mut out);
                out
            }
            BVal::F32(v) => {
                let mut out = Vec::new();
                b::f64_from_f32(&v, &mut out);
                out
            }
            BVal::Bool(v) => {
                let mut out = Vec::new();
                b::f64_from_bool(&v, &mut out);
                out
            }
        }
    }

    /// Lanes as row-path truthiness (nonzero → true).
    fn into_truthy(self) -> Vec<bool> {
        match self {
            BVal::Bool(v) => v,
            BVal::I64(v) => {
                let mut out = Vec::new();
                b::truthy_i64(&v, &mut out);
                out
            }
            BVal::I32(v) => {
                let mut out = Vec::new();
                b::truthy_i32(&v, &mut out);
                out
            }
            BVal::F64(v) => {
                let mut out = Vec::new();
                b::truthy_f64(&v, &mut out);
                out
            }
            BVal::F32(v) => {
                let mut out = Vec::new();
                b::truthy_f32(&v, &mut out);
                out
            }
        }
    }
}

/// Evaluates a filter over the current selection, refining `sel` in place
/// (`scratch` is the swap buffer, reused across batches).
pub(crate) fn apply_filter(
    f: &BExpr,
    batch: &Batch,
    sel: &mut Vec<u32>,
    scratch: &mut Vec<u32>,
) -> Result<()> {
    let flags = eval(f, batch, sel)?.into_truthy();
    b::refine_selection(&flags, sel, scratch);
    std::mem::swap(sel, scratch);
    Ok(())
}

/// Evaluates a compiled expression over the selected rows of a batch,
/// returning one dense value per selected row.
pub(crate) fn eval(e: &BExpr, batch: &Batch, sel: &[u32]) -> Result<BVal> {
    match e {
        BExpr::Col { pos, .. } => match &batch.cols[*pos] {
            ColVec::I64(src) => {
                let mut out = Vec::new();
                b::gather_i64(src, sel, &mut out);
                Ok(BVal::I64(out))
            }
            ColVec::I32(src) => {
                let mut out = Vec::new();
                b::gather_i32(src, sel, &mut out);
                Ok(BVal::I32(out))
            }
            ColVec::F64(src) => {
                let mut out = Vec::new();
                b::gather_f64(src, sel, &mut out);
                Ok(BVal::F64(out))
            }
            ColVec::F32(src) => {
                let mut out = Vec::new();
                b::gather_f32(src, sel, &mut out);
                Ok(BVal::F32(out))
            }
            ColVec::Bool(src) => {
                let mut out = Vec::new();
                b::gather_bool(src, sel, &mut out);
                Ok(BVal::Bool(out))
            }
            ColVec::Blob { .. } => Err(EngineError::Type(
                "batch plan error: blob column in scalar expression".into(),
            )),
        },
        BExpr::LitI64(x) => {
            let mut out = Vec::new();
            b::splat(*x, sel.len(), &mut out);
            Ok(BVal::I64(out))
        }
        BExpr::LitI32(x) => {
            let mut out = Vec::new();
            b::splat(*x, sel.len(), &mut out);
            Ok(BVal::I32(out))
        }
        BExpr::LitF64(x) => {
            let mut out = Vec::new();
            b::splat(*x, sel.len(), &mut out);
            Ok(BVal::F64(out))
        }
        BExpr::LitF32(x) => {
            let mut out = Vec::new();
            b::splat(*x, sel.len(), &mut out);
            Ok(BVal::F32(out))
        }
        BExpr::LitBool(x) => {
            let mut out = Vec::new();
            b::splat(*x, sel.len(), &mut out);
            Ok(BVal::Bool(out))
        }
        BExpr::Neg(inner) => match eval(inner, batch, sel)? {
            BVal::I64(v) => {
                let mut out = Vec::new();
                b::neg_i64(&v, &mut out);
                Ok(BVal::I64(out))
            }
            BVal::I32(v) => {
                let mut out = Vec::new();
                b::neg_i32(&v, &mut out);
                Ok(BVal::I32(out))
            }
            BVal::F64(v) => {
                let mut out = Vec::new();
                b::neg_f64(&v, &mut out);
                Ok(BVal::F64(out))
            }
            BVal::F32(v) => {
                let mut out = Vec::new();
                b::neg_f32(&v, &mut out);
                Ok(BVal::F32(out))
            }
            BVal::Bool(_) => Err(EngineError::Type(
                "batch plan error: negation of a boolean".into(),
            )),
        },
        BExpr::Not(inner) => {
            let t = eval(inner, batch, sel)?.into_truthy();
            let mut out = Vec::new();
            b::not_bool(&t, &mut out);
            Ok(BVal::Bool(out))
        }
        BExpr::And(l, r) => {
            // Per-row short-circuit via selection splitting: the right
            // side sees only rows where the left side was truthy, so its
            // errors (and only its errors) match the row interpreter.
            let lt = eval(l, batch, sel)?.into_truthy();
            let mut rhs_sel = Vec::new();
            b::refine_selection(&lt, sel, &mut rhs_sel);
            let rt = eval(r, batch, &rhs_sel)?.into_truthy();
            let mut out = Vec::with_capacity(lt.len());
            let mut j = 0usize;
            for &t in lt.iter() {
                if t {
                    out.push(rt[j]);
                    j += 1;
                } else {
                    out.push(false);
                }
            }
            Ok(BVal::Bool(out))
        }
        BExpr::Or(l, r) => {
            let lt = eval(l, batch, sel)?.into_truthy();
            let mut not_lt = Vec::new();
            b::not_bool(&lt, &mut not_lt);
            let mut rhs_sel = Vec::new();
            b::refine_selection(&not_lt, sel, &mut rhs_sel);
            let rt = eval(r, batch, &rhs_sel)?.into_truthy();
            let mut out = Vec::with_capacity(lt.len());
            let mut j = 0usize;
            for &t in lt.iter() {
                if t {
                    out.push(true);
                } else {
                    out.push(rt[j]);
                    j += 1;
                }
            }
            Ok(BVal::Bool(out))
        }
        BExpr::Cmp { op, l, r } => {
            let a = eval(l, batch, sel)?.into_f64();
            let bv = eval(r, batch, sel)?.into_f64();
            let mut out = Vec::new();
            if !b::cmp_f64(*op, &a, &bv, &mut out) {
                return Err(EngineError::Type("NaN comparison".into()));
            }
            Ok(BVal::Bool(out))
        }
        BExpr::IntArith { op, l, r } => {
            let a = eval(l, batch, sel)?.into_i64()?;
            let bv = eval(r, batch, sel)?.into_i64()?;
            let mut out = Vec::new();
            if !b::arith_i64(*op, &a, &bv, &mut out) {
                return Err(EngineError::Type(match op {
                    ArithOp::Div => "integer division by zero".into(),
                    ArithOp::Mod => "modulo by zero".into(),
                    _ => unreachable!("only Div/Mod report zero divisors"),
                }));
            }
            Ok(BVal::I64(out))
        }
        BExpr::FloatArith { op, l, r } => {
            let a = eval(l, batch, sel)?.into_f64();
            let bv = eval(r, batch, sel)?.into_f64();
            let mut out = Vec::new();
            b::arith_f64(*op, &a, &bv, &mut out);
            Ok(BVal::F64(out))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqlarray_core::batch::BytesVec;

    fn scalar_schema() -> Schema {
        Schema::new(&[
            ("id", ColType::I64),
            ("n", ColType::I32),
            ("x", ColType::F64),
            ("y", ColType::F32),
            ("v", ColType::Blob),
        ])
    }

    fn bin(op: BinOp, l: Expr, r: Expr) -> Expr {
        Expr::Bin {
            op,
            left: Box::new(l),
            right: Box::new(r),
        }
    }

    fn item(expr: Expr) -> SelectItem {
        SelectItem {
            expr,
            alias: None,
            assign: None,
        }
    }

    fn no_vars() -> HashMap<String, Value> {
        HashMap::new()
    }

    fn plan(
        items: &[SelectItem],
        where_clause: Option<&Expr>,
        has_aggregate: bool,
    ) -> Option<BatchPlan> {
        plan_select(
            &scalar_schema(),
            items,
            where_clause,
            &[],
            has_aggregate,
            &no_vars(),
        )
    }

    #[test]
    fn compiles_scalar_filter_and_projection() {
        // SELECT id, x * 2.0 FROM T WHERE n % 2 = 0 AND x > 1.5
        let wh = bin(
            BinOp::And,
            bin(
                BinOp::Eq,
                bin(BinOp::Mod, Expr::Col("n".into()), Expr::Lit(Value::I64(2))),
                Expr::Lit(Value::I64(0)),
            ),
            bin(BinOp::Gt, Expr::Col("x".into()), Expr::Lit(Value::F64(1.5))),
        );
        let items = [
            item(Expr::Col("id".into())),
            item(bin(
                BinOp::Mul,
                Expr::Col("x".into()),
                Expr::Lit(Value::F64(2.0)),
            )),
        ];
        let p = plan(&items, Some(&wh), false).expect("should compile");
        // Columns registered in first-use order: n (filter), x, id.
        assert_eq!(p.cols, vec![1, 2, 0]);
        assert!(!p.leaf_aligned);
        assert!(p.filter.is_some());
        assert_eq!(p.items.len(), 2);
    }

    #[test]
    fn fallback_cases() {
        // UDF call → row path.
        let udf = item(Expr::Func {
            name: "dbo.F".into(),
            args: vec![Expr::Col("x".into())],
        });
        assert!(plan(&[udf], None, false).is_none());
        // GROUP BY → row path.
        assert!(plan_select(
            &scalar_schema(),
            &[item(Expr::Agg {
                func: AggFunc::CountStar,
                arg: None
            })],
            None,
            &[Expr::Col("n".into())],
            true,
            &no_vars(),
        )
        .is_none());
        // String literal comparison → row path.
        let wh = bin(
            BinOp::Eq,
            Expr::Col("id".into()),
            Expr::Lit(Value::Str("x".into())),
        );
        assert!(plan(&[item(Expr::Col("id".into()))], Some(&wh), false).is_none());
        // Missing session variable → row path (error parity).
        let wh = bin(BinOp::Gt, Expr::Col("x".into()), Expr::Var("gone".into()));
        assert!(plan(&[item(Expr::Col("id".into()))], Some(&wh), false).is_none());
        // Blob column inside a computed expression → row path.
        let wh = bin(BinOp::Eq, Expr::Col("v".into()), Expr::Col("v".into()));
        assert!(plan(&[item(Expr::Col("id".into()))], Some(&wh), false).is_none());
        // SUM over a blob column → row path.
        assert!(plan(
            &[item(Expr::Agg {
                func: AggFunc::Sum,
                arg: Some(Box::new(Expr::Col("v".into())))
            })],
            None,
            true,
        )
        .is_none());
    }

    #[test]
    fn blob_projection_sets_leaf_aligned() {
        let p = plan(&[item(Expr::Col("v".into()))], None, false).expect("should compile");
        assert!(p.leaf_aligned);
        assert!(matches!(p.items[0], BItem::ProjBlob(0)));
        // COUNT(v) compiles too — null-ness only.
        let p = plan(
            &[item(Expr::Agg {
                func: AggFunc::Count,
                arg: Some(Box::new(Expr::Col("v".into()))),
            })],
            None,
            true,
        )
        .expect("should compile");
        assert!(p.leaf_aligned);
        assert!(matches!(
            p.items[0],
            BItem::Agg {
                func: AggFunc::Count,
                arg: Some(BAggArg::Blob(0)),
            }
        ));
    }

    fn test_batch() -> Batch {
        // Columns (batch order): I64 [1,2,3,4], F64 [0.5,1.5,-2.0,0.0]
        Batch {
            keys: vec![10, 11, 12, 13],
            cols: vec![
                ColVec::I64(vec![1, 2, 3, 4]),
                ColVec::F64(vec![0.5, 1.5, -2.0, 0.0]),
            ],
        }
    }

    fn all(n: usize) -> Vec<u32> {
        (0..n as u32).collect()
    }

    #[test]
    fn eval_matches_row_semantics() {
        let batch = test_batch();
        let sel = all(4);
        let col0 = BExpr::Col {
            pos: 0,
            kind: VKind::I64,
        };
        let col1 = BExpr::Col {
            pos: 1,
            kind: VKind::F64,
        };
        // Int arithmetic stays integral and wraps.
        let e = BExpr::IntArith {
            op: ArithOp::Add,
            l: Box::new(col0.clone()),
            r: Box::new(BExpr::LitI64(i64::MAX)),
        };
        match eval(&e, &batch, &sel).unwrap() {
            BVal::I64(v) => assert_eq!(v, vec![i64::MIN, i64::MIN + 1, i64::MIN + 2, i64::MIN + 3]),
            other => panic!("expected I64, got {other:?}"),
        }
        // Mixed arithmetic is f64.
        let e = BExpr::FloatArith {
            op: ArithOp::Mul,
            l: Box::new(col0.clone()),
            r: Box::new(col1.clone()),
        };
        match eval(&e, &batch, &sel).unwrap() {
            BVal::F64(v) => assert_eq!(v, vec![0.5, 3.0, -6.0, 0.0]),
            other => panic!("expected F64, got {other:?}"),
        }
        // Comparison over a sub-selection gathers the right lanes.
        let e = BExpr::Cmp {
            op: CmpOp::Gt,
            l: Box::new(col1.clone()),
            r: Box::new(BExpr::LitF64(0.0)),
        };
        match eval(&e, &batch, &[1, 3]).unwrap() {
            BVal::Bool(v) => assert_eq!(v, vec![true, false]),
            other => panic!("expected Bool, got {other:?}"),
        }
        // Division by zero raises the row path's message.
        let e = BExpr::IntArith {
            op: ArithOp::Div,
            l: Box::new(col0.clone()),
            r: Box::new(BExpr::LitI64(0)),
        };
        let err = eval(&e, &batch, &sel).unwrap_err();
        assert!(err.to_string().contains("integer division by zero"));
    }

    #[test]
    fn and_or_short_circuit_skips_rhs_rows() {
        let batch = test_batch();
        let sel = all(4);
        let col0 = BExpr::Col {
            pos: 0,
            kind: VKind::I64,
        };
        // (c0 > 2) AND (1 / (c0 - 2) > 0): the rhs divides by zero at
        // lane 1 (value 2), but that lane fails the lhs — the row path
        // never evaluates it, so neither must the batch path.
        let lhs = BExpr::Cmp {
            op: CmpOp::Gt,
            l: Box::new(col0.clone()),
            r: Box::new(BExpr::LitI64(2)),
        };
        let rhs = BExpr::Cmp {
            op: CmpOp::Gt,
            l: Box::new(BExpr::IntArith {
                op: ArithOp::Div,
                l: Box::new(BExpr::LitI64(1)),
                r: Box::new(BExpr::IntArith {
                    op: ArithOp::Sub,
                    l: Box::new(col0.clone()),
                    r: Box::new(BExpr::LitI64(2)),
                }),
            }),
            r: Box::new(BExpr::LitI64(0)),
        };
        // Lanes passing lhs: values 3, 4 → rhs divisors 1, 2 → no error,
        // and 1/1 > 0 but 1/2 = 0 is not.
        let e = BExpr::And(Box::new(lhs.clone()), Box::new(rhs.clone()));
        match eval(&e, &batch, &sel).unwrap() {
            BVal::Bool(v) => assert_eq!(v, vec![false, false, true, false]),
            other => panic!("expected Bool, got {other:?}"),
        }
        // Flip to OR: now the rhs runs on lanes 1, 2 (divisors -1, 0) and
        // the zero divisor *is* evaluated → error, same as the row path.
        let e = BExpr::Or(Box::new(lhs), Box::new(rhs));
        assert!(eval(&e, &batch, &sel).is_err());
    }

    #[test]
    fn filter_refines_selection() {
        let batch = test_batch();
        let mut sel = all(4);
        let mut scratch = Vec::new();
        // x > 0.0 keeps lanes 0, 1.
        let f = BExpr::Cmp {
            op: CmpOp::Gt,
            l: Box::new(BExpr::Col {
                pos: 1,
                kind: VKind::F64,
            }),
            r: Box::new(BExpr::LitF64(0.0)),
        };
        apply_filter(&f, &batch, &mut sel, &mut scratch).unwrap();
        assert_eq!(sel, vec![0, 1]);
        // A second filter composes over the refined selection.
        let f2 = BExpr::Cmp {
            op: CmpOp::Ge,
            l: Box::new(BExpr::Col {
                pos: 0,
                kind: VKind::I64,
            }),
            r: Box::new(BExpr::LitI64(2)),
        };
        apply_filter(&f2, &batch, &mut sel, &mut scratch).unwrap();
        assert_eq!(sel, vec![1]);
    }

    #[test]
    fn value_at_preserves_lane_types() {
        let v = BVal::I32(vec![7]);
        assert_eq!(v.value_at(0), Value::I32(7));
        let v = BVal::F32(vec![1.5]);
        assert_eq!(v.value_at(0), Value::F32(1.5));
        let v = BVal::Bool(vec![true]);
        assert_eq!(v.value_at(0), Value::Bool(true));
    }

    #[test]
    fn blob_columns_are_rejected_in_scalar_eval() {
        let batch = Batch {
            keys: vec![1],
            cols: vec![ColVec::Blob {
                bytes: {
                    let mut b = BytesVec::new();
                    b.push(b"xyz");
                    b
                },
                lob: vec![None],
            }],
        };
        let e = BExpr::Col {
            pos: 0,
            kind: VKind::I64,
        };
        assert!(eval(&e, &batch, &[0]).is_err());
    }
}
