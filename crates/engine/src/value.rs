//! SQL values flowing through the query engine.

use sqlarray_core::{ArrayError, Scalar, SqlArray};
use sqlarray_storage::RowValue;
use std::fmt;

/// A runtime SQL value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// `bigint`.
    I64(i64),
    /// `int`.
    I32(i32),
    /// `float`.
    F64(f64),
    /// `real`.
    F32(f32),
    /// `varbinary` — including array blobs.
    Bytes(Vec<u8>),
    /// `varchar`.
    Str(String),
    /// `bit`.
    Bool(bool),
    /// A **lazy** reference to an out-of-row `varbinary(max)` value: the
    /// LOB's root-page id and its byte length, *not* its bytes.
    ///
    /// Scanning a LOB column yields this variant instead of materializing
    /// megabytes per row. Blob-aware consumers resolve it through the scan
    /// worker's page reader — `Subarray`/`Item` push a region read down to
    /// the intersecting LOB pages, every other function argument gets one
    /// full ranged read — and anything non-blob-aware that receives it
    /// unresolved raises [`EngineError::UnresolvedLob`] instead of the old
    /// silent `<lob:…>` placeholder string.
    Lob {
        /// LOB root-page id.
        id: u64,
        /// Total byte length of the stored blob.
        len: u64,
    },
}

/// Engine error type.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // variant payloads are self-describing
pub enum EngineError {
    /// SQL text failed to parse.
    Parse { pos: usize, msg: String },
    /// Name resolution failed (table, column, function).
    Unknown(String),
    /// A value had the wrong type for an operation.
    Type(String),
    /// Wrong number of arguments to a function.
    Arity {
        func: String,
        got: usize,
        want: String,
    },
    /// Array library error surfaced through a UDF.
    Array(String),
    /// Storage engine failure.
    Storage(String),
    /// Feature outside the supported T-SQL subset.
    Unsupported(String),
    /// A lazy LOB reference ([`Value::Lob`]) reached an operator that is
    /// not blob-aware and no reader was available to resolve it.
    UnresolvedLob {
        /// LOB root-page id.
        id: u64,
        /// Byte length of the referenced blob.
        len: u64,
    },
    /// The statement was cancelled through its session's
    /// [`sqlarray_core::CancelHandle`] (or a test-armed trip point).
    Cancelled,
    /// The statement ran past `SQLARRAY_STATEMENT_TIMEOUT_MS` / the
    /// session's configured timeout.
    Timeout {
        /// The timeout that expired, in milliseconds.
        timeout_ms: u64,
    },
    /// The statement's cumulative memory charges (batch lanes,
    /// aggregation state, LOB materialization) exceeded its budget
    /// (`SQLARRAY_QUERY_MEM_BYTES`).
    ResourceExhausted {
        /// Bytes charged, including the charge that tripped.
        used: u64,
        /// The configured budget in bytes.
        limit: u64,
    },
    /// A scan worker panicked; the panic was contained at the fan-out
    /// boundary (pool accounting folded back, no lock poisoned) and
    /// carries the panic message.
    WorkerPanicked(String),
    /// The statement's deadline expired while it was still queued for
    /// admission — it never ran.
    AdmissionTimeout {
        /// The timeout that expired, in milliseconds.
        timeout_ms: u64,
    },
    /// Admission control refused to queue the statement: the worker
    /// budget was exhausted and the wait queue was already at its cap.
    Overloaded {
        /// Statements already waiting when this one was refused.
        waiting: usize,
        /// The configured queue-depth cap.
        cap: usize,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Parse { pos, msg } => write!(f, "parse error at {pos}: {msg}"),
            EngineError::Unknown(what) => write!(f, "unknown {what}"),
            EngineError::Type(msg) => write!(f, "type error: {msg}"),
            EngineError::Arity { func, got, want } => {
                write!(f, "{func} takes {want} arguments, got {got}")
            }
            EngineError::Array(msg) => write!(f, "array error: {msg}"),
            EngineError::Storage(msg) => write!(f, "storage error: {msg}"),
            EngineError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
            EngineError::UnresolvedLob { id, len } => write!(
                f,
                "unresolved LOB reference (root page {id}, {len} bytes) reached a \
                 non-blob-aware operator"
            ),
            EngineError::Cancelled => write!(f, "statement cancelled"),
            EngineError::Timeout { timeout_ms } => {
                write!(f, "statement timeout ({timeout_ms} ms) exceeded")
            }
            EngineError::ResourceExhausted { used, limit } => write!(
                f,
                "query memory budget exceeded: {used} bytes charged, limit {limit}"
            ),
            EngineError::WorkerPanicked(msg) => {
                write!(f, "scan worker panicked (contained): {msg}")
            }
            EngineError::AdmissionTimeout { timeout_ms } => write!(
                f,
                "statement timeout ({timeout_ms} ms) expired while queued for admission"
            ),
            EngineError::Overloaded { waiting, cap } => write!(
                f,
                "engine overloaded: {waiting} statements already queued (cap {cap})"
            ),
        }
    }
}

impl std::error::Error for EngineError {}

impl EngineError {
    /// Whether retrying the same statement, unchanged, may succeed —
    /// transient engine conditions (overload, timeouts, contained faults
    /// of the moment) as opposed to errors that are deterministic
    /// functions of the statement and the data. The match is exhaustive
    /// on purpose: a new variant must pick a side.
    pub fn is_retryable(&self) -> bool {
        match self {
            EngineError::Timeout { .. }
            | EngineError::AdmissionTimeout { .. }
            | EngineError::Overloaded { .. } => true,
            // Storage wraps both retryable (transient read faults) and
            // permanent conditions; the string form can't distinguish, so
            // the conservative answer is no — the typed storage error is
            // classified before it is flattened here.
            EngineError::Parse { .. }
            | EngineError::Unknown(_)
            | EngineError::Type(_)
            | EngineError::Arity { .. }
            | EngineError::Array(_)
            | EngineError::Storage(_)
            | EngineError::Unsupported(_)
            | EngineError::UnresolvedLob { .. }
            | EngineError::Cancelled
            | EngineError::ResourceExhausted { .. }
            | EngineError::WorkerPanicked(_) => false,
        }
    }

    /// Whether the error is scoped to the *statement* (caller mistakes,
    /// the caller's own limits) rather than a sign of engine damage. A
    /// serving layer keeps the connection open for user errors and may
    /// tear it down — or alarm — for the rest.
    pub fn is_user_error(&self) -> bool {
        match self {
            EngineError::Parse { .. }
            | EngineError::Unknown(_)
            | EngineError::Type(_)
            | EngineError::Arity { .. }
            | EngineError::Array(_)
            | EngineError::Unsupported(_)
            | EngineError::UnresolvedLob { .. }
            | EngineError::Cancelled
            | EngineError::Timeout { .. }
            | EngineError::ResourceExhausted { .. }
            | EngineError::AdmissionTimeout { .. }
            | EngineError::Overloaded { .. } => true,
            EngineError::Storage(_) | EngineError::WorkerPanicked(_) => false,
        }
    }
}

impl From<sqlarray_core::Interrupt> for EngineError {
    fn from(i: sqlarray_core::Interrupt) -> Self {
        match i {
            sqlarray_core::Interrupt::Cancelled => EngineError::Cancelled,
            sqlarray_core::Interrupt::Timeout { timeout_ms } => EngineError::Timeout { timeout_ms },
            sqlarray_core::Interrupt::MemExceeded { used, limit } => {
                EngineError::ResourceExhausted { used, limit }
            }
        }
    }
}

impl From<ArrayError> for EngineError {
    fn from(e: ArrayError) -> Self {
        EngineError::Array(e.to_string())
    }
}

impl From<sqlarray_storage::StorageError> for EngineError {
    fn from(e: sqlarray_storage::StorageError) -> Self {
        match e {
            // An interrupt detected inside the storage scan keeps its
            // type across the layer boundary instead of flattening to a
            // string like ordinary storage failures.
            sqlarray_storage::StorageError::Interrupted(i) => i.into(),
            e => EngineError::Storage(e.to_string()),
        }
    }
}

/// Engine result alias.
pub type Result<T> = std::result::Result<T, EngineError>;

impl Value {
    /// The typed error for a lazy LOB reference hitting a non-blob-aware
    /// operation, or `None` for every other variant.
    fn unresolved_lob(&self) -> Option<EngineError> {
        match self {
            Value::Lob { id, len } => Some(EngineError::UnresolvedLob { id: *id, len: *len }),
            _ => None,
        }
    }

    /// Numeric view as `f64`; NULL and non-numerics fail.
    pub fn as_f64(&self) -> Result<f64> {
        match self {
            Value::I64(v) => Ok(*v as f64),
            Value::I32(v) => Ok(*v as f64),
            Value::F64(v) => Ok(*v),
            Value::F32(v) => Ok(*v as f64),
            Value::Bool(b) => Ok(*b as i64 as f64),
            other => Err(other
                .unresolved_lob()
                .unwrap_or_else(|| EngineError::Type(format!("{other:?} is not numeric")))),
        }
    }

    /// Integer view (floats must be integral).
    pub fn as_i64(&self) -> Result<i64> {
        match self {
            Value::I64(v) => Ok(*v),
            Value::I32(v) => Ok(*v as i64),
            Value::F64(v) if v.fract() == 0.0 => Ok(*v as i64),
            Value::F32(v) if v.fract() == 0.0 => Ok(*v as i64),
            other => Err(other
                .unresolved_lob()
                .unwrap_or_else(|| EngineError::Type(format!("{other:?} is not an integer")))),
        }
    }

    /// Index view (non-negative integer).
    pub fn as_index(&self) -> Result<usize> {
        let v = self.as_i64()?;
        usize::try_from(v).map_err(|_| EngineError::Type(format!("negative index {v}")))
    }

    /// Binary view. A lazy [`Value::Lob`] has no in-memory bytes — it must
    /// be resolved through a reader first, so it raises the typed
    /// [`EngineError::UnresolvedLob`] here.
    pub fn as_bytes(&self) -> Result<&[u8]> {
        match self {
            Value::Bytes(b) => Ok(b),
            other => Err(other
                .unresolved_lob()
                .unwrap_or_else(|| EngineError::Type(format!("{other:?} is not binary")))),
        }
    }

    /// Decodes this binary value as an array blob.
    pub fn as_array(&self) -> Result<SqlArray> {
        Ok(SqlArray::from_blob(self.as_bytes()?.to_vec())?)
    }

    /// Truthiness for WHERE clauses.
    pub fn is_true(&self) -> bool {
        match self {
            Value::Bool(b) => *b,
            Value::Null => false,
            Value::I64(v) => *v != 0,
            Value::I32(v) => *v != 0,
            Value::F64(v) => *v != 0.0,
            Value::F32(v) => *v != 0.0,
            Value::Bytes(b) => !b.is_empty(),
            Value::Str(s) => !s.is_empty(),
            Value::Lob { len, .. } => *len != 0,
        }
    }

    /// True for SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl From<Scalar> for Value {
    fn from(s: Scalar) -> Value {
        match s {
            Scalar::I8(v) => Value::I32(v as i32),
            Scalar::I16(v) => Value::I32(v as i32),
            Scalar::I32(v) => Value::I32(v),
            Scalar::I64(v) => Value::I64(v),
            Scalar::F32(v) => Value::F32(v),
            Scalar::F64(v) => Value::F64(v),
            // Complex scalars cross the SQL boundary in their UDT
            // serialization: 16/32 bytes of little-endian parts.
            Scalar::C32(c) => {
                let mut b = vec![0u8; 8];
                c.write_le_into(&mut b);
                Value::Bytes(b)
            }
            Scalar::C64(c) => {
                let mut b = vec![0u8; 16];
                c.write_le_into(&mut b);
                Value::Bytes(b)
            }
        }
    }
}

/// Helper trait so complex types can serialize through the same path.
trait WriteLeInto {
    fn write_le_into(&self, out: &mut [u8]);
}

impl WriteLeInto for sqlarray_core::Complex32 {
    fn write_le_into(&self, out: &mut [u8]) {
        use sqlarray_core::Element;
        Element::write_le(*self, out);
    }
}

impl WriteLeInto for sqlarray_core::Complex64 {
    fn write_le_into(&self, out: &mut [u8]) {
        use sqlarray_core::Element;
        Element::write_le(*self, out);
    }
}

impl From<RowValue> for Value {
    fn from(v: RowValue) -> Value {
        match v {
            RowValue::I64(x) => Value::I64(x),
            RowValue::I32(x) => Value::I32(x),
            RowValue::F64(x) => Value::F64(x),
            RowValue::F32(x) => Value::F32(x),
            RowValue::Bytes(b) => Value::Bytes(b),
            // Out-of-row values stay lazy: the executor resolves them
            // through the scan worker's reader only when (and only as far
            // as) an expression actually needs their bytes.
            RowValue::LobRef(id, len) => Value::Lob { id, len },
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::I64(v) => write!(f, "{v}"),
            Value::I32(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::F32(v) => write!(f, "{v}"),
            Value::Bytes(b) => {
                write!(f, "0x")?;
                for byte in b.iter().take(16) {
                    write!(f, "{byte:02X}")?;
                }
                if b.len() > 16 {
                    write!(f, "... ({} bytes)", b.len())?;
                }
                Ok(())
            }
            Value::Str(s) => write!(f, "'{s}'"),
            Value::Bool(b) => write!(f, "{}", *b as u8),
            Value::Lob { id, len } => write!(f, "<lob page {id}: {len} bytes>"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_views() {
        assert_eq!(Value::I32(5).as_f64().unwrap(), 5.0);
        assert_eq!(Value::F64(2.0).as_i64().unwrap(), 2);
        assert!(Value::F64(2.5).as_i64().is_err());
        assert!(Value::Str("x".into()).as_f64().is_err());
        assert_eq!(Value::I64(3).as_index().unwrap(), 3);
        assert!(Value::I64(-1).as_index().is_err());
    }

    #[test]
    fn truthiness() {
        assert!(Value::Bool(true).is_true());
        assert!(!Value::Null.is_true());
        assert!(Value::I64(7).is_true());
        assert!(!Value::F64(0.0).is_true());
    }

    #[test]
    fn scalar_conversion() {
        assert_eq!(Value::from(Scalar::F64(1.5)), Value::F64(1.5));
        assert_eq!(Value::from(Scalar::I8(-3)), Value::I32(-3));
        let c = Value::from(Scalar::C64(sqlarray_core::Complex64::new(1.0, 2.0)));
        match c {
            Value::Bytes(b) => assert_eq!(b.len(), 16),
            other => panic!("expected bytes, got {other:?}"),
        }
    }

    #[test]
    fn array_round_trip_through_value() {
        let a = sqlarray_core::build::short_vector(&[1.0f64, 2.0]).unwrap();
        let v = Value::Bytes(a.as_blob().to_vec());
        let back = v.as_array().unwrap();
        assert_eq!(back, a);
        assert!(Value::I64(0).as_array().is_err());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::I64(42).to_string(), "42");
        assert_eq!(Value::Bytes(vec![0xAB, 0xCD]).to_string(), "0xABCD");
        assert_eq!(Value::Str("hi".into()).to_string(), "'hi'");
    }

    #[test]
    fn row_value_conversion() {
        assert_eq!(Value::from(RowValue::F64(1.0)), Value::F64(1.0));
        assert_eq!(
            Value::from(RowValue::Bytes(vec![1, 2])),
            Value::Bytes(vec![1, 2])
        );
        // Out-of-row refs convert to the lazy variant, never to a string.
        assert_eq!(
            Value::from(RowValue::LobRef(7, 9000)),
            Value::Lob { id: 7, len: 9000 }
        );
    }

    #[test]
    fn unresolved_lob_errors_are_typed() {
        let v = Value::Lob { id: 7, len: 9000 };
        assert!(matches!(
            v.as_f64(),
            Err(EngineError::UnresolvedLob { id: 7, len: 9000 })
        ));
        assert!(matches!(
            v.as_bytes(),
            Err(EngineError::UnresolvedLob { .. })
        ));
        assert!(matches!(
            v.as_array(),
            Err(EngineError::UnresolvedLob { .. })
        ));
        assert!(v.is_true());
        assert!(!Value::Lob { id: 7, len: 0 }.is_true());
        let msg = v.as_bytes().unwrap_err().to_string();
        assert!(msg.contains("unresolved LOB"), "{msg}");
    }
}
