//! In-server math bindings: the LAPACK/FFTW wrappers of §3.6 and §5.3.
//!
//! "Since arrays are stored in exactly the same \[layout\] as required by the
//! most common math libraries, calling them only requires marshaling
//! pointers [...] the overhead of these calls is negligible once the whole
//! array is loaded into memory." Arrays flow into the kernels through the
//! zero-copy column-major view ([`SqlArray::elements`]); only FFTW-style
//! plans pay an aligned-buffer copy.

use crate::udf::UdfRegistry;
use crate::value::{EngineError, Result, Value};
use sqlarray_core::ops::convert;
use sqlarray_core::{Complex64, ElementType, SqlArray, StorageClass};
use sqlarray_linalg::{gesvd, Matrix};

/// Registers `FFTForward` / `FFTInverse` / `PowerSpectrum` under the float
/// and complex schemas (both classes) and the SVD family under the float
/// schemas, matching the paper's `FloatArrayMax.FFTForward(@a)` example.
pub fn register_math(reg: &mut UdfRegistry) {
    for class in [StorageClass::Short, StorageClass::Max] {
        for elem in [
            ElementType::Float64,
            ElementType::Float32,
            ElementType::Complex64,
            ElementType::Complex32,
        ] {
            let schema = crate::arraybind::schema_name(elem, class);
            reg.register(&format!("{schema}.FFTForward"), Some(1..=1), |args| {
                Ok(Value::Bytes(fft_array(&args[0].as_array()?)?.into_blob()))
            });
            reg.register(&format!("{schema}.FFTInverse"), Some(1..=1), |args| {
                Ok(Value::Bytes(ifft_array(&args[0].as_array()?)?.into_blob()))
            });
            reg.register(&format!("{schema}.PowerSpectrum"), Some(1..=1), |args| {
                Ok(Value::Bytes(
                    power_spectrum_array(&args[0].as_array()?)?.into_blob(),
                ))
            });
        }
        for elem in [ElementType::Float64, ElementType::Float32] {
            let schema = crate::arraybind::schema_name(elem, class);
            reg.register(&format!("{schema}.GesvdS"), Some(1..=1), |args| {
                let (_, s, _) = gesvd_array(&args[0].as_array()?)?;
                Ok(Value::Bytes(s.into_blob()))
            });
            reg.register(&format!("{schema}.GesvdU"), Some(1..=1), |args| {
                let (u, _, _) = gesvd_array(&args[0].as_array()?)?;
                Ok(Value::Bytes(u.into_blob()))
            });
            reg.register(&format!("{schema}.GesvdV"), Some(1..=1), |args| {
                let (_, _, v) = gesvd_array(&args[0].as_array()?)?;
                Ok(Value::Bytes(v.into_blob()))
            });
        }
    }
}

/// Widens any numeric array to `complex64` (FFT input domain).
fn to_complex(a: &SqlArray) -> Result<SqlArray> {
    Ok(convert::convert_type(a, ElementType::Complex64)?)
}

/// n-dimensional forward DFT of an array (any numeric element type); the
/// result is a `complex64` array with the same dimensions and storage
/// class.
pub fn fft_array(a: &SqlArray) -> Result<SqlArray> {
    let c = to_complex(a)?;
    let mut data = c.to_vec::<Complex64>()?;
    sqlarray_fft::fftn(&mut data, c.dims(), sqlarray_fft::Direction::Forward);
    rebuild_complex(&c, data)
}

/// Normalized inverse n-D DFT.
pub fn ifft_array(a: &SqlArray) -> Result<SqlArray> {
    let c = to_complex(a)?;
    let mut data = c.to_vec::<Complex64>()?;
    sqlarray_fft::ifftn_normalized(&mut data, c.dims());
    rebuild_complex(&c, data)
}

/// `|X[k]|²/N` of the forward transform, as a `float64` array.
pub fn power_spectrum_array(a: &SqlArray) -> Result<SqlArray> {
    let f = fft_array(a)?;
    let n = f.count() as f64;
    let data: Vec<f64> = f
        .to_vec::<Complex64>()?
        .iter()
        .map(|c| c.norm_sqr() / n)
        .collect();
    build_same_class(f.class(), f.dims(), &data)
}

fn rebuild_complex(template: &SqlArray, data: Vec<Complex64>) -> Result<SqlArray> {
    match SqlArray::from_vec(template.class(), template.dims(), &data) {
        Ok(a) => Ok(a),
        Err(sqlarray_core::ArrayError::ShortTooLarge { .. }) => Ok(SqlArray::from_vec(
            StorageClass::Max,
            template.dims(),
            &data,
        )?),
        Err(e) => Err(e.into()),
    }
}

fn build_same_class(class: StorageClass, dims: &[usize], data: &[f64]) -> Result<SqlArray> {
    match SqlArray::from_vec(class, dims, data) {
        Ok(a) => Ok(a),
        Err(sqlarray_core::ArrayError::ShortTooLarge { .. }) => {
            Ok(SqlArray::from_vec(StorageClass::Max, dims, data)?)
        }
        Err(e) => Err(e.into()),
    }
}

/// Thin SVD of a 2-D `float64`/`float32` array. The payload feeds the
/// solver through the zero-copy column-major view; results come back as
/// three arrays `(U, s, V)` of the input's storage class.
pub fn gesvd_array(a: &SqlArray) -> Result<(SqlArray, SqlArray, SqlArray)> {
    if a.rank() != 2 {
        return Err(EngineError::Array(format!(
            "gesvd needs a 2-D array, got rank {}",
            a.rank()
        )));
    }
    let a64 = convert::convert_type(a, ElementType::Float64)?;
    let (rows, cols) = (a64.dims()[0], a64.dims()[1]);
    // Zero-copy hand-off: the blob payload is already a column-major
    // buffer.
    let m = Matrix::from_col_major(rows, cols, a64.elements::<f64>()?.into_owned());
    let svd = gesvd(&m);
    let k = svd.s.len();
    let u = build_same_class(a.class(), &[rows, k], svd.u.as_slice())?;
    let s = build_same_class(a.class(), &[k], &svd.s)?;
    let v = build_same_class(a.class(), &[cols, k], svd.v.as_slice())?;
    Ok((u, s, v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hosting::HostingModel;
    use sqlarray_core::build;

    #[test]
    fn fft_round_trip_via_arrays() {
        let a = build::max_vector(&(0..64).map(|i| (i as f64 * 0.3).sin()).collect::<Vec<_>>())
            .unwrap();
        let f = fft_array(&a).unwrap();
        assert_eq!(f.elem(), ElementType::Complex64);
        let back = ifft_array(&f).unwrap();
        let vals = back.to_vec::<Complex64>().unwrap();
        for (i, v) in vals.iter().enumerate() {
            assert!((v.re - (i as f64 * 0.3).sin()).abs() < 1e-9);
            assert!(v.im.abs() < 1e-9);
        }
    }

    #[test]
    fn fft_3d_array() {
        let a = SqlArray::from_fn(StorageClass::Max, &[4, 4, 4], |idx| {
            (idx[0] + idx[1] + idx[2]) as f64
        })
        .unwrap();
        let f = fft_array(&a).unwrap();
        assert_eq!(f.dims(), &[4, 4, 4]);
        let back = ifft_array(&f).unwrap();
        for lin in 0..back.count() {
            let idx = back.shape().multi_index(lin);
            let expect = (idx[0] + idx[1] + idx[2]) as f64;
            let got = back.item_linear(lin).as_c64();
            assert!((got.re - expect).abs() < 1e-9 && got.im.abs() < 1e-9);
        }
    }

    #[test]
    fn power_spectrum_of_constant() {
        let a = build::short_vector(&[2.0f64; 16]).unwrap();
        let ps = power_spectrum_array(&a).unwrap();
        let v = ps.to_vec::<f64>().unwrap();
        assert!((v[0] - 4.0 * 16.0).abs() < 1e-9);
        assert!(v[1..].iter().all(|&p| p < 1e-18));
    }

    #[test]
    fn gesvd_reconstructs() {
        // 3x2 matrix, known singular values sqrt(3), 1.
        let a = SqlArray::from_vec(
            StorageClass::Short,
            &[3, 2],
            &[1.0f64, 0.0, 1.0, 0.0, 1.0, 1.0], // column-major
        )
        .unwrap();
        let (u, s, v) = gesvd_array(&a).unwrap();
        assert_eq!(u.dims(), &[3, 2]);
        assert_eq!(s.dims(), &[2]);
        assert_eq!(v.dims(), &[2, 2]);
        let sv = s.to_vec::<f64>().unwrap();
        assert!((sv[0] - 3f64.sqrt()).abs() < 1e-9);
        assert!((sv[1] - 1.0).abs() < 1e-9);
        assert!(gesvd_array(&build::short_vector(&[1.0f64]).unwrap()).is_err());
    }

    #[test]
    fn registered_udfs_work_through_registry() {
        let mut reg = UdfRegistry::new();
        crate::arraybind::register_all(&mut reg);
        register_math(&mut reg);
        let mut h = HostingModel::free();
        // The paper's example: SET @ft = FloatArrayMax.FFTForward(@a)
        let a = build::max_vector(&(0..32).map(|i| i as f64).collect::<Vec<_>>()).unwrap();
        let ft = reg
            .call(
                "FloatArrayMax.FFTForward",
                &[Value::Bytes(a.as_blob().to_vec())],
                &mut h,
            )
            .unwrap();
        let ft = ft.as_array().unwrap();
        assert_eq!(ft.elem(), ElementType::Complex64);
        assert_eq!(ft.count(), 32);

        let m = SqlArray::from_vec(StorageClass::Short, &[2, 2], &[3.0f64, 0.0, 0.0, 2.0]).unwrap();
        let s = reg
            .call(
                "FloatArray.GesvdS",
                &[Value::Bytes(m.as_blob().to_vec())],
                &mut h,
            )
            .unwrap();
        let s = s.as_array().unwrap().to_vec::<f64>().unwrap();
        assert!((s[0] - 3.0).abs() < 1e-9 && (s[1] - 2.0).abs() < 1e-9);
    }
}
