//! The engine-wide plan cache: parsed (and, where legal, compiled) plans
//! reused across statements, sessions, and prepared-statement executions.
//!
//! Two levels are cached, keyed by **normalized statement text**
//! (whitespace runs outside string literals collapse to one space; case
//! and literals are preserved, so normalization can never conflate two
//! semantically different batches):
//!
//! * the **parsed batch** — an `Arc<Vec<Stmt>>` shared by every session
//!   executing the same text, so repeated statements skip the parser
//!   entirely;
//! * per-SELECT **compiled batch plans** — the `BatchPlan` the vectorized
//!   scan runs. A compiled plan folds session-variable values into its
//!   constants, so a plan is only reusable when the statement references
//!   no `@variables`; schemas are immutable once created (the dialect has
//!   no `ALTER`/`DROP`), which is what makes a cached compiled plan valid
//!   for the lifetime of the engine. Revisit the [`SelectSlot`] fill
//!   logic if schema evolution ever lands.
//!
//! Bounded LRU: the cache holds at most its configured capacity of parsed
//! batches, evicting the least-recently-used entry under a logical tick
//! (no wall clock — eviction order is deterministic given the access
//! sequence). Hit/miss/eviction counters feed `Engine::stats`.

use crate::tsql::{parse, Stmt};
use crate::value::Result;
use sqlarray_storage::Schema;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard};

/// Default number of parsed batches the cache retains.
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 128;

/// Observable plan-cache counters (snapshot).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to parse.
    pub misses: u64,
    /// Entries evicted to stay within capacity.
    pub evictions: u64,
    /// Parsed batches currently cached.
    pub entries: usize,
    /// Compiled `BatchPlan` reuses across all cached statements.
    pub compiled_reuses: u64,
}

/// One cached batch: the shared parsed statements plus a compiled-plan
/// slot per statement (filled lazily on first execution, SELECTs only).
pub struct CachedPlan {
    /// The parsed statements, shared by every executing session.
    pub stmts: Arc<Vec<Stmt>>,
    slots: Vec<SelectSlot>,
    /// The normalized text this plan was cached under.
    pub key: String,
}

impl CachedPlan {
    fn new(key: String, stmts: Vec<Stmt>, reuses: Arc<ReuseCounter>) -> CachedPlan {
        let slots = stmts
            .iter()
            .map(|s| SelectSlot::for_stmt(s, Arc::clone(&reuses)))
            .collect();
        CachedPlan {
            stmts: Arc::new(stmts),
            slots,
            key,
        }
    }

    /// The compiled-plan slot for statement index `i`.
    pub fn slot(&self, i: usize) -> Option<&SelectSlot> {
        self.slots.get(i)
    }
}

/// Shared tally of compiled-plan reuses (the slots live inside `Arc`ed
/// plans, so the counter is shared rather than owned by the cache map).
#[derive(Default)]
struct ReuseCounter(std::sync::atomic::AtomicU64);

/// The compiled-`BatchPlan` slot of one SELECT statement.
///
/// `fill` state machine: `Empty` until the statement first executes with
/// batching enabled; then either `Plan` (compiled) or `NoPlan` (the
/// statement doesn't vectorize — also worth caching, so the fallback
/// decision isn't re-derived every execution).
pub struct SelectSlot {
    cacheable: bool,
    state: Mutex<SlotState>,
    reuses: Arc<ReuseCounter>,
}

enum SlotState {
    Empty,
    NoPlan,
    Plan {
        plan: Arc<crate::batch::BatchPlan>,
        /// The schema the plan was compiled against. Schemas are
        /// immutable today; the check is the safety net for when they
        /// stop being so.
        schema: Schema,
    },
}

impl SelectSlot {
    fn for_stmt(stmt: &Stmt, reuses: Arc<ReuseCounter>) -> SelectSlot {
        let cacheable = match stmt {
            Stmt::Select(sel) => {
                !sel.items.iter().any(|it| it.expr.contains_var())
                    && !sel
                        .where_clause
                        .as_ref()
                        .is_some_and(crate::expr::Expr::contains_var)
                    && !sel.group_by.iter().any(crate::expr::Expr::contains_var)
            }
            _ => false,
        };
        SelectSlot {
            cacheable,
            state: Mutex::new(SlotState::Empty),
            reuses,
        }
    }

    fn state(&self) -> MutexGuard<'_, SlotState> {
        // Straight-line assignments and clones only under the guard; the
        // repo-wide recover-on-poison policy (sqlarray_core::sync) holds.
        sqlarray_core::sync::lock_unpoisoned(&self.state)
    }

    /// Returns the compiled plan for this statement, compiling through
    /// `compile` on first use. Var-bearing statements compile fresh every
    /// time (their plans embed the variable bindings); var-free ones fill
    /// the slot once and reuse it, bumping the engine's reuse counter.
    pub(crate) fn plan_for(
        &self,
        schema: &Schema,
        compile: impl FnOnce() -> Option<crate::batch::BatchPlan>,
    ) -> Option<Arc<crate::batch::BatchPlan>> {
        if !self.cacheable {
            return compile().map(Arc::new);
        }
        let mut st = self.state();
        match &*st {
            SlotState::Plan { plan, schema: s } if s == schema => {
                self.reuses
                    .0
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                Some(Arc::clone(plan))
            }
            SlotState::NoPlan => None,
            _ => {
                let compiled = compile().map(Arc::new);
                *st = match &compiled {
                    Some(p) => SlotState::Plan {
                        plan: Arc::clone(p),
                        schema: schema.clone(),
                    },
                    None => SlotState::NoPlan,
                };
                compiled
            }
        }
    }

    /// Whether this slot may retain a compiled plan (SELECT, var-free).
    pub fn cacheable(&self) -> bool {
        self.cacheable
    }
}

struct Entry {
    plan: Arc<CachedPlan>,
    last_used: u64,
}

struct CacheState {
    map: HashMap<String, Entry>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// The bounded LRU cache itself. One per [`crate::engine::Engine`].
pub struct PlanCache {
    capacity: usize,
    state: Mutex<CacheState>,
    reuses: Arc<ReuseCounter>,
}

impl PlanCache {
    /// A cache retaining at most `capacity` parsed batches (≥ 1).
    pub fn new(capacity: usize) -> PlanCache {
        PlanCache {
            capacity: capacity.max(1),
            state: Mutex::new(CacheState {
                map: HashMap::new(),
                tick: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
            reuses: Arc::new(ReuseCounter::default()),
        }
    }

    fn state(&self) -> MutexGuard<'_, CacheState> {
        // No user code runs under the guard (parsing happens before the
        // insert lock below); the repo-wide recover-on-poison policy
        // (sqlarray_core::sync) holds.
        sqlarray_core::sync::lock_unpoisoned(&self.state)
    }

    /// Looks `sql` up by normalized text, parsing and inserting on miss.
    /// Parse errors are returned without caching (error texts would only
    /// evict useful plans).
    pub fn get_or_parse(&self, sql: &str) -> Result<Arc<CachedPlan>> {
        let key = normalize(sql);
        {
            let mut st = self.state();
            st.tick += 1;
            let tick = st.tick;
            if let Some(e) = st.map.get_mut(&key) {
                e.last_used = tick;
                let plan = Arc::clone(&e.plan);
                st.hits += 1;
                return Ok(plan);
            }
        }
        // Parse outside the lock: a slow parse of one statement must not
        // serialize every other session's cache lookups.
        let stmts = parse(sql)?;
        let plan = Arc::new(CachedPlan::new(
            key.clone(),
            stmts,
            Arc::clone(&self.reuses),
        ));
        let mut st = self.state();
        st.misses += 1;
        st.tick += 1;
        let tick = st.tick;
        // Two sessions can race to parse the same new text; first insert
        // wins so both share one plan (and one set of compiled slots).
        if let Some(e) = st.map.get_mut(&key) {
            e.last_used = tick;
            return Ok(Arc::clone(&e.plan));
        }
        if st.map.len() >= self.capacity {
            if let Some(victim) = st
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                st.map.remove(&victim);
                st.evictions += 1;
            }
        }
        st.map.insert(
            key,
            Entry {
                plan: Arc::clone(&plan),
                last_used: tick,
            },
        );
        Ok(plan)
    }

    /// Current counters.
    pub fn stats(&self) -> PlanCacheStats {
        let st = self.state();
        PlanCacheStats {
            hits: st.hits,
            misses: st.misses,
            evictions: st.evictions,
            entries: st.map.len(),
            compiled_reuses: self.reuses.0.load(std::sync::atomic::Ordering::Relaxed),
        }
    }
}

/// Normalizes statement text for cache keying: whitespace runs outside
/// single-quoted string literals collapse to a single space, leading and
/// trailing whitespace drops. Case and literal contents are untouched —
/// `'a  b'` and `'a b'` stay distinct keys.
pub fn normalize(sql: &str) -> String {
    let mut out = String::with_capacity(sql.len());
    let mut in_str = false;
    let mut pending_space = false;
    for c in sql.chars() {
        if in_str {
            out.push(c);
            if c == '\'' {
                in_str = false;
            }
            continue;
        }
        if c.is_whitespace() {
            pending_space = !out.is_empty();
            continue;
        }
        if pending_space {
            out.push(' ');
            pending_space = false;
        }
        out.push(c);
        if c == '\'' {
            in_str = true;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_collapses_outside_strings_only() {
        assert_eq!(normalize("  SELECT   1\n+\t2  "), "SELECT 1 + 2");
        assert_eq!(normalize("SELECT 'a  b'  "), "SELECT 'a  b'");
        // Case is preserved: lowercasing would fold string literals.
        assert_eq!(normalize("select X"), "select X");
    }

    #[test]
    fn hit_miss_and_shared_parse() {
        let cache = PlanCache::new(8);
        let a = cache.get_or_parse("SELECT 1 + 2").unwrap();
        let b = cache.get_or_parse("  SELECT\t1 + 2 ").unwrap();
        assert!(Arc::ptr_eq(&a.stmts, &b.stmts), "same normalized text");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn parse_errors_are_not_cached() {
        let cache = PlanCache::new(8);
        assert!(cache.get_or_parse("SELEKT nope nope").is_err());
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = PlanCache::new(2);
        cache.get_or_parse("SELECT 1").unwrap();
        cache.get_or_parse("SELECT 2").unwrap();
        cache.get_or_parse("SELECT 1").unwrap(); // refresh 1
        cache.get_or_parse("SELECT 3").unwrap(); // evicts 2
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.entries, 2);
        // 1 survived (refreshed), 2 was the victim.
        let before = cache.stats().hits;
        cache.get_or_parse("SELECT 1").unwrap();
        assert_eq!(cache.stats().hits, before + 1);
        cache.get_or_parse("SELECT 2").unwrap();
        assert_eq!(cache.stats().misses, 4, "2 re-parsed after eviction");
    }

    #[test]
    fn var_bearing_selects_are_not_plan_cacheable() {
        let cache = PlanCache::new(8);
        let with_var = cache
            .get_or_parse("SELECT v1 + @x FROM t WHERE v1 > 0")
            .unwrap();
        assert!(!with_var.slot(0).unwrap().cacheable());
        let without = cache.get_or_parse("SELECT v1 + 1 FROM t").unwrap();
        assert!(without.slot(0).unwrap().cacheable());
        let var_in_where = cache
            .get_or_parse("SELECT v1 FROM t WHERE v1 > @lo")
            .unwrap();
        assert!(!var_in_where.slot(0).unwrap().cacheable());
        let dml = cache.get_or_parse("DELETE FROM t WHERE v1 > 1").unwrap();
        assert!(!dml.slot(0).unwrap().cacheable());
    }
}
