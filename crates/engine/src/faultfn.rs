//! Deterministic fault-injection scalar functions.
//!
//! Registered in every engine (like the array and math libraries) so
//! robustness tests can drive misbehaving workloads through the ordinary
//! SQL surface instead of private hooks:
//!
//! * `dbo.PanicIf(x, trigger)` — returns `x`, but **panics** when
//!   `x = trigger`. This is the reproducible "buggy UDF" the worker-panic
//!   containment tests scan over: the row that trips is a property of the
//!   data, so the panic fires at the same logical point at any DOP.
//! * `dbo.SpinUs(x, us)` — returns `x` after spinning for `us`
//!   microseconds of wall clock. This is how timeout and admission tests
//!   make a statement reliably *slow* without sleeping the whole test
//!   (the spin is per-row, so cancellation checks interleave with it).
//!
//! Both are registered as native-cost functions: they model engine-side
//! fault conditions, not CLR user code, so they must not perturb the
//! paper's hosting-overhead accounting.

use crate::udf::UdfRegistry;
use crate::value::Value;
use std::time::{Duration, Instant};

/// Registers the fault-injection functions into `reg`.
pub fn register_faults(reg: &mut UdfRegistry) {
    reg.register_native("dbo.PanicIf", Some(2..=2), |args| {
        let x = args[0].as_i64()?;
        let trigger = args[1].as_i64()?;
        if x == trigger {
            panic!("dbo.PanicIf: injected panic on value {x}");
        }
        Ok(Value::I64(x))
    });
    reg.register_native("dbo.SpinUs", Some(2..=2), |args| {
        let x = args[0].as_i64()?;
        let us = args[1].as_i64()?.max(0) as u64;
        let until = Instant::now() + Duration::from_micros(us);
        while Instant::now() < until {
            std::hint::spin_loop();
        }
        Ok(Value::I64(x))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panic_if_passes_through_until_triggered() {
        let mut reg = UdfRegistry::new();
        register_faults(&mut reg);
        let mut h = crate::hosting::HostingModel::free();
        let v = reg
            .call("dbo.PanicIf", &[Value::I64(3), Value::I64(9)], &mut h)
            .unwrap();
        assert_eq!(v, Value::I64(3));
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = reg.call("dbo.PanicIf", &[Value::I64(9), Value::I64(9)], &mut h);
        }));
        assert!(caught.is_err());
    }

    #[test]
    fn spin_us_returns_input_and_takes_time() {
        let mut reg = UdfRegistry::new();
        register_faults(&mut reg);
        let mut h = crate::hosting::HostingModel::free();
        let t0 = Instant::now();
        let v = reg
            .call("dbo.SpinUs", &[Value::I64(7), Value::I64(500)], &mut h)
            .unwrap();
        assert_eq!(v, Value::I64(7));
        assert!(t0.elapsed() >= Duration::from_micros(500));
    }
}
