//! The CLR hosting-cost model.
//!
//! Table 1's central result is that per-row UDF calls dominate: "the cost
//! of calling a CLR function for every row of the data table [...] yields a
//! cost of about 2 µs per CLR function call. A detailed performance
//! analysis revealed that at least 38 % of the CPU time went for the UDF
//! calls even when the UDF was empty." (§7.1)
//!
//! In-process Rust calls cost nanoseconds, so to reproduce the *shape* of
//! Table 1 the engine charges every managed-UDF invocation a calibrated
//! busy-wait standing in for the managed/native transition (argument
//! marshaling, security context, GC-safe frame setup). The overhead is a
//! first-class, configurable parameter — set it to zero to see what a
//! native array type would have done, which is exactly the ablation the
//! paper wished SQL Server had offered.

use std::hint::black_box;
use std::time::Instant;

/// Which cost class a registered function belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostClass {
    /// Built-in engine function (no hosting charge) — e.g. `SUM` over a
    /// native column.
    Native,
    /// CLR/managed UDF: each call pays the hosting overhead.
    Managed,
}

/// The per-call overhead model plus its invocation counters.
#[derive(Debug)]
pub struct HostingModel {
    /// Charged per managed call, in nanoseconds.
    pub overhead_ns: u64,
    /// Busy-wait iterations per nanosecond (calibrated once).
    iters_per_ns: f64,
    calls: u64,
    charged_ns: u64,
}

/// The paper's measured cost: ~2 µs per CLR call.
pub const PAPER_CLR_CALL_NS: u64 = 2_000;

impl HostingModel {
    /// Builds a model charging `overhead_ns` per managed call, calibrating
    /// the busy-wait loop against the host clock.
    pub fn new(overhead_ns: u64) -> HostingModel {
        HostingModel {
            overhead_ns,
            iters_per_ns: Self::calibrate(),
            calls: 0,
            charged_ns: 0,
        }
    }

    /// A model with the paper's 2 µs CLR call cost.
    pub fn paper_clr() -> HostingModel {
        HostingModel::new(PAPER_CLR_CALL_NS)
    }

    /// A free model (native code path / the counterfactual).
    pub fn free() -> HostingModel {
        HostingModel::new(0)
    }

    /// Measures how many spin iterations one nanosecond buys.
    fn calibrate() -> f64 {
        let iters: u64 = 4_000_000;
        let start = Instant::now();
        let mut acc = 0u64;
        for i in 0..iters {
            acc = black_box(acc.wrapping_add(i ^ (acc >> 3)));
        }
        black_box(acc);
        let ns = start.elapsed().as_nanos().max(1) as f64;
        (iters as f64 / ns).max(1e-3)
    }

    /// Charges one managed call: spins for `overhead_ns` and bumps the
    /// counters. Native calls must not route through here.
    #[inline]
    pub fn charge_call(&mut self) {
        self.calls += 1;
        self.charged_ns += self.overhead_ns;
        if self.overhead_ns == 0 {
            return;
        }
        let iters = (self.overhead_ns as f64 * self.iters_per_ns) as u64;
        let mut acc = 0u64;
        for i in 0..iters {
            acc = black_box(acc.wrapping_add(i ^ (acc >> 3)));
        }
        black_box(acc);
    }

    /// A fresh model with this model's overhead and calibration but zeroed
    /// counters — one per parallel scan worker, so each thread spins and
    /// counts independently without sharing mutable state.
    pub fn fork(&self) -> HostingModel {
        HostingModel {
            overhead_ns: self.overhead_ns,
            iters_per_ns: self.iters_per_ns,
            calls: 0,
            charged_ns: 0,
        }
    }

    /// Folds a worker fork's counters back into this model (the combine
    /// half of [`fork`](Self::fork); no spinning happens here).
    pub fn absorb(&mut self, calls: u64, charged_ns: u64) {
        self.calls += calls;
        self.charged_ns += charged_ns;
    }

    /// Managed calls made so far.
    pub fn calls(&self) -> u64 {
        self.calls
    }

    /// Total nanoseconds charged so far.
    pub fn charged_ns(&self) -> u64 {
        self.charged_ns
    }

    /// Resets the counters (not the calibration).
    pub fn reset(&mut self) {
        self.calls = 0;
        self.charged_ns = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_track_calls() {
        let mut m = HostingModel::new(0);
        assert_eq!(m.calls(), 0);
        m.charge_call();
        m.charge_call();
        assert_eq!(m.calls(), 2);
        assert_eq!(m.charged_ns(), 0);
        m.reset();
        assert_eq!(m.calls(), 0);
    }

    #[test]
    fn charged_ns_accumulates() {
        let mut m = HostingModel::new(500);
        for _ in 0..4 {
            m.charge_call();
        }
        assert_eq!(m.charged_ns(), 2000);
    }

    #[test]
    fn overhead_costs_real_time() {
        // 2 µs × 5000 calls ≈ 10 ms of busy-wait; the wall clock must show
        // a clear difference against the free model.
        let mut slow = HostingModel::paper_clr();
        let t0 = Instant::now();
        for _ in 0..5000 {
            slow.charge_call();
        }
        let slow_elapsed = t0.elapsed();

        let mut fast = HostingModel::free();
        let t0 = Instant::now();
        for _ in 0..5000 {
            fast.charge_call();
        }
        let fast_elapsed = t0.elapsed();

        assert!(
            slow_elapsed > fast_elapsed * 5,
            "slow {slow_elapsed:?} vs fast {fast_elapsed:?}"
        );
        // The busy-wait should be within an order of magnitude of the
        // target even when the test harness runs dozens of threads
        // (calibration is coarse under load).
        let per_call_ns = slow_elapsed.as_nanos() as f64 / 5000.0;
        assert!(
            (300.0..20_000.0).contains(&per_call_ns),
            "per-call spin {per_call_ns} ns"
        );
    }

    #[test]
    fn cost_class_is_plain_data() {
        assert_ne!(CostClass::Native, CostClass::Managed);
    }
}
