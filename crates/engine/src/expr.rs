//! Expression trees and their evaluation.

use crate::hosting::HostingModel;
use crate::udf::UdfRegistry;
use crate::value::{EngineError, Result, Value};
use sqlarray_storage::{row, RowValue, Schema};

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

/// Aggregate functions recognized by the executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum AggFunc {
    CountStar,
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

/// An expression node.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Literal value.
    Lit(Value),
    /// Column reference (resolved by name against the scan schema).
    Col(String),
    /// Session variable `@name`.
    Var(String),
    /// Scalar function call (schema-qualified names allowed).
    Func {
        /// Function name as written.
        name: String,
        /// Argument expressions.
        args: Vec<Expr>,
    },
    /// Built-in aggregate; only valid in a select list.
    Agg {
        /// Which aggregate.
        func: AggFunc,
        /// The aggregated expression (`None` for `COUNT(*)`).
        arg: Option<Box<Expr>>,
    },
    /// User-defined aggregate; only valid in a select list.
    UdaCall {
        /// Registered UDA name.
        name: String,
        /// Per-row argument expressions.
        args: Vec<Expr>,
    },
    /// Unary minus.
    Neg(Box<Expr>),
    /// Logical NOT.
    Not(Box<Expr>),
    /// Binary operation.
    Bin {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
}

impl Expr {
    /// True if the expression (transitively) references a session
    /// variable. The plan cache only reuses a *compiled* batch plan for
    /// var-free statements — `plan_select` folds variable values into the
    /// compiled constants, so a plan touching `@x` is only valid for the
    /// binding it was compiled under.
    pub fn contains_var(&self) -> bool {
        match self {
            Expr::Var(_) => true,
            Expr::Func { args, .. } | Expr::UdaCall { args, .. } => {
                args.iter().any(Expr::contains_var)
            }
            Expr::Agg { arg, .. } => arg.as_deref().is_some_and(Expr::contains_var),
            Expr::Neg(e) | Expr::Not(e) => e.contains_var(),
            Expr::Bin { left, right, .. } => left.contains_var() || right.contains_var(),
            Expr::Lit(_) | Expr::Col(_) => false,
        }
    }

    /// True if the expression (transitively) contains an aggregate.
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::Agg { .. } | Expr::UdaCall { .. } => true,
            Expr::Func { args, .. } => args.iter().any(Expr::contains_aggregate),
            Expr::Neg(e) | Expr::Not(e) => e.contains_aggregate(),
            Expr::Bin { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            _ => false,
        }
    }
}

/// Everything an expression needs to evaluate against one row.
pub struct RowCtx<'a> {
    /// Schema of the scanned table.
    pub schema: &'a Schema,
    /// Encoded row bytes (columns decode lazily).
    pub bytes: &'a [u8],
    /// Clustered key of the row.
    pub key: i64,
}

/// The evaluation environment: UDF registry, hosting model, variables,
/// and (when evaluating against stored rows) a page reader for resolving
/// lazy LOB values.
pub struct EvalEnv<'a> {
    /// Registered scalar functions.
    pub udfs: &'a UdfRegistry,
    /// Hosting cost model (mutated by managed calls).
    pub hosting: &'a mut HostingModel,
    /// Session variables.
    pub vars: &'a std::collections::HashMap<String, Value>,
    /// Page-read access for lazy LOB values ([`Value::Lob`]): a scan
    /// worker's `PartitionReader` inside a query, the store itself on
    /// serial paths, `None` where no storage is in scope (LOB references
    /// then raise [`EngineError::UnresolvedLob`]).
    pub lobs: Option<&'a mut dyn sqlarray_storage::PageRead>,
}

/// Case-insensitive variable lookup against a map whose keys are stored
/// lowercase (normalized once at insert). Only a name that actually
/// contains uppercase letters pays the lowercase allocation — the common
/// already-lowercase case borrows straight from the map, which matters
/// because `Expr::Var` evaluates once per scanned row.
pub(crate) fn lookup_var<'a>(
    vars: &'a std::collections::HashMap<String, Value>,
    name: &str,
) -> Option<&'a Value> {
    if name.bytes().any(|b| b.is_ascii_uppercase()) {
        vars.get(&name.to_ascii_lowercase())
    } else {
        vars.get(name)
    }
}

/// Evaluates an expression against an optional row.
pub fn eval(expr: &Expr, row: Option<&RowCtx<'_>>, env: &mut EvalEnv<'_>) -> Result<Value> {
    match expr {
        Expr::Lit(v) => Ok(v.clone()),
        Expr::Var(name) => lookup_var(env.vars, name)
            .cloned()
            .ok_or_else(|| EngineError::Unknown(format!("variable `@{name}`"))),
        Expr::Col(name) => {
            let row = row.ok_or_else(|| {
                EngineError::Unknown(format!("column `{name}` outside a FROM context"))
            })?;
            let idx = row
                .schema
                .col_index(name)
                .ok_or_else(|| EngineError::Unknown(format!("column `{name}`")))?;
            let v = row::decode_col(row.schema, row.bytes, idx)?;
            Ok(resolve_row_value(v))
        }
        Expr::Func { name, args } => {
            let mut argv = Vec::with_capacity(args.len());
            for a in args {
                argv.push(eval(a, row, env)?);
            }
            // `Subarray`/`Item` over a base LOB column read only the
            // header prefix plus the pages the region intersects.
            if let Some(v) = crate::pushdown::try_lob_pushdown(name, &argv, env)? {
                return Ok(v);
            }
            // Every other call materializes lazy LOB arguments with one
            // full ranged read each — the blob-aware fallback.
            for v in argv.iter_mut() {
                crate::pushdown::resolve_lob_in_place(v, env)?;
            }
            env.udfs.call(name, &argv, env.hosting)
        }
        Expr::Agg { .. } | Expr::UdaCall { .. } => Err(EngineError::Unsupported(
            "aggregate evaluated outside an aggregation context".into(),
        )),
        Expr::Neg(e) => {
            let v = eval(e, row, env)?;
            Ok(match v {
                Value::I64(x) => Value::I64(-x),
                Value::I32(x) => Value::I32(-x),
                Value::F64(x) => Value::F64(-x),
                Value::F32(x) => Value::F32(-x),
                other => return Err(EngineError::Type(format!("cannot negate {other:?}"))),
            })
        }
        Expr::Not(e) => {
            let v = eval(e, row, env)?;
            Ok(Value::Bool(!v.is_true()))
        }
        Expr::Bin { op, left, right } => {
            let mut l = eval(left, row, env)?;
            // Short-circuit logical operators (truthiness of a LOB is its
            // length — no resolution needed).
            match op {
                BinOp::And if !l.is_true() => return Ok(Value::Bool(false)),
                BinOp::Or if l.is_true() => return Ok(Value::Bool(true)),
                _ => {}
            }
            let mut r = eval(right, row, env)?;
            // Comparisons and arithmetic see the same value an inline
            // blob would present: materialize lazy LOB operands so
            // `WHERE v = @blob` behaves identically on either side of
            // the 8 kB in-row limit. AND/OR are excluded — they consume
            // only truthiness, which a LOB reference answers by length.
            if !matches!(op, BinOp::And | BinOp::Or) {
                crate::pushdown::resolve_lob_in_place(&mut l, env)?;
                crate::pushdown::resolve_lob_in_place(&mut r, env)?;
            }
            apply_bin(*op, l, r)
        }
    }
}

/// In-row data passes through; out-of-row LOB references surface as lazy
/// [`Value::Lob`] values, resolved later by a blob-aware consumer (the
/// pushdown rewrite, the full-read fallback, or the projection boundary)
/// — never as placeholder strings.
fn resolve_row_value(v: RowValue) -> Value {
    Value::from(v)
}

fn apply_bin(op: BinOp, l: Value, r: Value) -> Result<Value> {
    use BinOp::*;
    match op {
        And => Ok(Value::Bool(l.is_true() && r.is_true())),
        Or => Ok(Value::Bool(l.is_true() || r.is_true())),
        Add | Sub | Mul | Div | Mod => {
            // Integer arithmetic stays integral when both sides are.
            let int_int = matches!(l, Value::I64(_) | Value::I32(_))
                && matches!(r, Value::I64(_) | Value::I32(_));
            if int_int {
                let a = l.as_i64()?;
                let b = r.as_i64()?;
                let v = match op {
                    Add => a.wrapping_add(b),
                    Sub => a.wrapping_sub(b),
                    Mul => a.wrapping_mul(b),
                    Div => {
                        if b == 0 {
                            return Err(EngineError::Type("integer division by zero".into()));
                        }
                        a / b
                    }
                    Mod => {
                        if b == 0 {
                            return Err(EngineError::Type("modulo by zero".into()));
                        }
                        a % b
                    }
                    _ => unreachable!(),
                };
                Ok(Value::I64(v))
            } else {
                let a = l.as_f64()?;
                let b = r.as_f64()?;
                let v = match op {
                    Add => a + b,
                    Sub => a - b,
                    Mul => a * b,
                    Div => a / b,
                    Mod => a % b,
                    _ => unreachable!(),
                };
                Ok(Value::F64(v))
            }
        }
        Eq | Ne | Lt | Le | Gt | Ge => {
            let ord = compare(&l, &r)?;
            let b = match op {
                Eq => ord == std::cmp::Ordering::Equal,
                Ne => ord != std::cmp::Ordering::Equal,
                Lt => ord == std::cmp::Ordering::Less,
                Le => ord != std::cmp::Ordering::Greater,
                Gt => ord == std::cmp::Ordering::Greater,
                Ge => ord != std::cmp::Ordering::Less,
                _ => unreachable!(),
            };
            Ok(Value::Bool(b))
        }
    }
}

/// SQL comparison: numerics compare numerically, strings lexically, bytes
/// bytewise.
pub fn compare(l: &Value, r: &Value) -> Result<std::cmp::Ordering> {
    match (l, r) {
        (Value::Str(a), Value::Str(b)) => Ok(a.cmp(b)),
        (Value::Bytes(a), Value::Bytes(b)) => Ok(a.cmp(b)),
        _ => {
            let a = l.as_f64()?;
            let b = r.as_f64()?;
            a.partial_cmp(&b)
                .ok_or_else(|| EngineError::Type("NaN comparison".into()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn env_fixture() -> (UdfRegistry, HostingModel, HashMap<String, Value>) {
        let mut reg = UdfRegistry::new();
        reg.register("dbo.Twice", Some(1..=1), |a| {
            Ok(Value::F64(a[0].as_f64()? * 2.0))
        });
        let mut vars = HashMap::new();
        vars.insert("x".to_string(), Value::I64(21));
        (reg, HostingModel::free(), vars)
    }

    fn eval_free(expr: &Expr) -> Result<Value> {
        let (reg, mut h, vars) = env_fixture();
        let mut env = EvalEnv {
            udfs: &reg,
            hosting: &mut h,
            vars: &vars,
            lobs: None,
        };
        eval(expr, None, &mut env)
    }

    fn bin(op: BinOp, l: Expr, r: Expr) -> Expr {
        Expr::Bin {
            op,
            left: Box::new(l),
            right: Box::new(r),
        }
    }

    #[test]
    fn arithmetic() {
        let e = bin(
            BinOp::Add,
            Expr::Lit(Value::I64(2)),
            bin(
                BinOp::Mul,
                Expr::Lit(Value::I64(3)),
                Expr::Lit(Value::I64(4)),
            ),
        );
        assert_eq!(eval_free(&e).unwrap(), Value::I64(14));
        let f = bin(
            BinOp::Div,
            Expr::Lit(Value::F64(1.0)),
            Expr::Lit(Value::I64(4)),
        );
        assert_eq!(eval_free(&f).unwrap(), Value::F64(0.25));
        let z = bin(
            BinOp::Div,
            Expr::Lit(Value::I64(1)),
            Expr::Lit(Value::I64(0)),
        );
        assert!(eval_free(&z).is_err());
    }

    #[test]
    fn comparisons_and_logic() {
        let lt = bin(
            BinOp::Lt,
            Expr::Lit(Value::I64(1)),
            Expr::Lit(Value::F64(1.5)),
        );
        assert_eq!(eval_free(&lt).unwrap(), Value::Bool(true));
        let and = bin(
            BinOp::And,
            Expr::Lit(Value::Bool(true)),
            Expr::Lit(Value::Bool(false)),
        );
        assert_eq!(eval_free(&and).unwrap(), Value::Bool(false));
        let not = Expr::Not(Box::new(Expr::Lit(Value::I64(0))));
        assert_eq!(eval_free(&not).unwrap(), Value::Bool(true));
    }

    #[test]
    fn short_circuit_skips_rhs_errors() {
        // RHS would fail (unknown variable), but the AND short-circuits.
        let e = bin(
            BinOp::And,
            Expr::Lit(Value::Bool(false)),
            Expr::Var("missing".into()),
        );
        assert_eq!(eval_free(&e).unwrap(), Value::Bool(false));
    }

    #[test]
    fn variables_and_functions() {
        let e = Expr::Func {
            name: "dbo.Twice".into(),
            args: vec![Expr::Var("x".into())],
        };
        assert_eq!(eval_free(&e).unwrap(), Value::F64(42.0));
        assert!(eval_free(&Expr::Var("nope".into())).is_err());
    }

    #[test]
    fn column_eval_against_row() {
        use sqlarray_storage::{ColType, PageStore};
        let schema = Schema::new(&[("id", ColType::I64), ("x", ColType::F64)]);
        let mut store = PageStore::new();
        let bytes = sqlarray_storage::row::encode_row(
            &mut store,
            &schema,
            &[RowValue::I64(7), RowValue::F64(1.25)],
        )
        .unwrap();
        let row = RowCtx {
            schema: &schema,
            bytes: &bytes,
            key: 7,
        };
        let (reg, mut h, vars) = env_fixture();
        let mut env = EvalEnv {
            udfs: &reg,
            hosting: &mut h,
            vars: &vars,
            lobs: None,
        };
        assert_eq!(
            eval(&Expr::Col("x".into()), Some(&row), &mut env).unwrap(),
            Value::F64(1.25)
        );
        assert!(eval(&Expr::Col("x".into()), None, &mut env).is_err());
        assert!(eval(&Expr::Col("nope".into()), Some(&row), &mut env).is_err());
    }

    #[test]
    fn aggregate_detection() {
        let agg = Expr::Agg {
            func: AggFunc::Sum,
            arg: Some(Box::new(Expr::Col("x".into()))),
        };
        assert!(agg.contains_aggregate());
        let nested = Expr::Func {
            name: "f".into(),
            args: vec![agg],
        };
        assert!(nested.contains_aggregate());
        assert!(!Expr::Col("x".into()).contains_aggregate());
    }

    #[test]
    fn negation_types() {
        assert_eq!(
            eval_free(&Expr::Neg(Box::new(Expr::Lit(Value::I32(5))))).unwrap(),
            Value::I32(-5)
        );
        assert!(eval_free(&Expr::Neg(Box::new(Expr::Lit(Value::Str("s".into()))))).is_err());
    }
}
