//! Registration of the array library as schema-qualified UDFs.
//!
//! The original library "organized functions under separate schemas by
//! underlying data-type and storage class [...] Functions acting on short
//! (on-page) arrays of type INT are under the schema IntArray, the ones
//! acting on max arrays (out-of-page) are under IntArrayMax etc." (§5.1).
//! This module builds the same surface: sixteen schemas (8 element types ×
//! 2 storage classes), each carrying the full set of constructors,
//! accessors, manipulators and aggregates, with the runtime type/class
//! checks the paper's flag bytes enable.

use crate::udf::UdfRegistry;
use crate::value::{EngineError, Result, Value};
use sqlarray_core::ops::{agg, axis, cast, convert, elementwise, reshape, subarray};
use sqlarray_core::{ElementType, Scalar, SqlArray, StorageClass};

/// Registers every array schema plus the `dbo` utility functions.
pub fn register_all(reg: &mut UdfRegistry) {
    for elem in ElementType::ALL {
        for class in [StorageClass::Short, StorageClass::Max] {
            register_schema(reg, elem, class);
        }
    }
    // Q5's control: a managed UDF that does nothing.
    reg.register("dbo.EmptyFunction", Some(1..=4), |_| Ok(Value::F64(0.0)));
}

/// The schema name for a type/class pair: `FloatArray`, `FloatArrayMax`...
pub fn schema_name(elem: ElementType, class: StorageClass) -> String {
    match class {
        StorageClass::Short => elem.schema_stem().to_string(),
        StorageClass::Max => format!("{}Max", elem.schema_stem()),
    }
}

/// Reverse of [`schema_name`]: resolves a schema identifier back to its
/// `(element type, storage class)` pair, case-insensitively. Used by the
/// `Subarray`/`Item` pushdown rewrite to recover the runtime checks a
/// schema-qualified call implies without materializing the blob.
pub fn parse_schema(name: &str) -> Option<(ElementType, StorageClass)> {
    for elem in ElementType::ALL {
        for class in [StorageClass::Short, StorageClass::Max] {
            if name.eq_ignore_ascii_case(&schema_name(elem, class)) {
                return Some((elem, class));
            }
        }
    }
    None
}

/// Runtime check that a blob belongs to this schema — the paper's "detect
/// type mismatches at runtime when the blobs are passed to the wrong
/// functions" (§3.5).
fn expect(v: &Value, elem: ElementType, class: StorageClass) -> Result<SqlArray> {
    let a = v.as_array()?;
    if a.elem() != elem {
        return Err(EngineError::Array(
            sqlarray_core::ArrayError::TypeMismatch {
                expected: elem,
                got: a.elem(),
            }
            .to_string(),
        ));
    }
    if a.class() != class {
        return Err(EngineError::Array(
            sqlarray_core::ArrayError::StorageClassMismatch {
                expected_short: class == StorageClass::Short,
            }
            .to_string(),
        ));
    }
    Ok(a)
}

/// Converts a SQL value into a scalar of the schema's element type.
fn value_to_scalar(v: &Value, elem: ElementType) -> Result<Scalar> {
    if elem.is_complex() {
        if let Value::Bytes(b) = v {
            if b.len() == elem.size() {
                return Ok(Scalar::read_le(elem, b));
            }
        }
        if let Value::Str(s) = v {
            return Ok(Scalar::parse(elem, s)?);
        }
    }
    Ok(Scalar::F64(v.as_f64()?).cast_to(elem)?)
}

/// Decodes an index-vector argument (the paper passes offsets/sizes as
/// `IntArray.Vector_N(...)` blobs). Shared with the pushdown rewrite,
/// which decodes the same offset/size arguments without touching the
/// target array's payload.
pub(crate) fn index_vector(v: &Value) -> Result<Vec<usize>> {
    let a = v.as_array()?;
    let mut out = Vec::with_capacity(a.count());
    for s in a.iter_scalars() {
        let f = s.as_f64()?;
        if f < 0.0 || f.fract() != 0.0 {
            return Err(EngineError::Type(format!("bad index component {f}")));
        }
        out.push(f as usize);
    }
    Ok(out)
}

fn blob(a: SqlArray) -> Value {
    Value::Bytes(a.into_blob())
}

fn register_schema(reg: &mut UdfRegistry, elem: ElementType, class: StorageClass) {
    let s = schema_name(elem, class);
    let f = |suffix: &str| format!("{s}.{suffix}");

    // --- Constructors -------------------------------------------------
    reg.register(&f("Vector"), Some(1..=1024), move |args| {
        let mut a = SqlArray::zeros(class, elem, &[args.len()])?;
        for (i, v) in args.iter().enumerate() {
            a.update_item(&[i], value_to_scalar(v, elem)?)?;
        }
        Ok(blob(a))
    });
    reg.register(&f("Matrix"), Some(1..=1024), move |args| {
        let n = (args.len() as f64).sqrt() as usize;
        if n * n != args.len() {
            return Err(EngineError::Arity {
                func: "Matrix".into(),
                got: args.len(),
                want: "a perfect square".into(),
            });
        }
        // Arguments are listed row-major (the T-SQL call order); storage
        // is column-major.
        let mut a = SqlArray::zeros(class, elem, &[n, n])?;
        for (k, v) in args.iter().enumerate() {
            a.update_item(&[k / n, k % n], value_to_scalar(v, elem)?)?;
        }
        Ok(blob(a))
    });
    reg.register(&f("Zeros"), Some(1..=1), move |args| {
        let dims = index_vector(&args[0])?;
        Ok(blob(SqlArray::zeros(class, elem, &dims)?))
    });

    // --- Introspection -------------------------------------------------
    reg.register(&f("Rank"), Some(1..=1), move |args| {
        Ok(Value::I32(expect(&args[0], elem, class)?.rank() as i32))
    });
    reg.register(&f("Count"), Some(1..=1), move |args| {
        Ok(Value::I64(expect(&args[0], elem, class)?.count() as i64))
    });
    reg.register(&f("Size"), Some(2..=2), move |args| {
        let a = expect(&args[0], elem, class)?;
        let axis = args[1].as_index()?;
        a.dims()
            .get(axis)
            .map(|&d| Value::I64(d as i64))
            .ok_or_else(|| EngineError::Type(format!("axis {axis} out of range")))
    });

    // --- Item access ----------------------------------------------------
    reg.register(&f("Item"), Some(2..=9), move |args| {
        let a = expect(&args[0], elem, class)?;
        let idx: Vec<usize> = args[1..]
            .iter()
            .map(|v| v.as_index())
            .collect::<Result<_>>()?;
        Ok(Value::from(a.item(&idx)?))
    });
    reg.register(&f("UpdateItem"), Some(3..=10), move |args| {
        let mut a = expect(&args[0], elem, class)?;
        let idx: Vec<usize> = args[1..args.len() - 1]
            .iter()
            .map(|v| v.as_index())
            .collect::<Result<_>>()?;
        let val = value_to_scalar(&args[args.len() - 1], elem)?;
        a.update_item(&idx, val)?;
        Ok(blob(a))
    });
    // The paper's partial-update manipulator (§4.4): write a whole
    // subarray into `a` at `offset`. When the target is a stored LOB
    // column, `UPDATE t SET v = Schema.ArrayUpdate(v, @off, @repl)` is
    // intercepted by the executor and patched in place on the touched
    // chunk pages; this registered body is the general fallback (in-memory
    // arguments, multi-dimensional offsets, class conversions).
    reg.register(&f("ArrayUpdate"), Some(3..=3), move |args| {
        let mut a = expect(&args[0], elem, class)?;
        let offset = index_vector(&args[1])?;
        let b = expect(&args[2], elem, class)?;
        if offset.len() != a.rank() || b.rank() != a.rank() {
            return Err(EngineError::Array(
                sqlarray_core::ArrayError::IndexRankMismatch {
                    got: if offset.len() != a.rank() {
                        offset.len()
                    } else {
                        b.rank()
                    },
                    rank: a.rank(),
                }
                .to_string(),
            ));
        }
        for (axis, ((&off, &bd), &ad)) in offset.iter().zip(b.dims()).zip(a.dims()).enumerate() {
            if off.checked_add(bd).map_or(true, |end| end > ad) {
                return Err(EngineError::Array(format!(
                    "ArrayUpdate out of bounds on axis {axis}: offset {off} + size {bd} \
                     exceeds extent {ad}"
                )));
            }
        }
        // Odometer over the replacement's index space; `update_item`
        // handles the target's linearization.
        if b.count() == 0 {
            return Ok(blob(a));
        }
        let mut idx = vec![0usize; b.rank()];
        loop {
            let dst: Vec<usize> = idx.iter().zip(&offset).map(|(&i, &o)| i + o).collect();
            a.update_item(&dst, b.item(&idx)?)?;
            let mut axis = 0;
            loop {
                if axis == idx.len() {
                    return Ok(blob(a));
                }
                idx[axis] += 1;
                if idx[axis] < b.dims()[axis] {
                    break;
                }
                idx[axis] = 0;
                axis += 1;
            }
        }
    });

    // --- Structure ------------------------------------------------------
    reg.register(&f("Subarray"), Some(3..=4), move |args| {
        let a = expect(&args[0], elem, class)?;
        let offset = index_vector(&args[1])?;
        let size = index_vector(&args[2])?;
        let squeeze = args.get(3).map(|v| v.is_true()).unwrap_or(false);
        Ok(blob(subarray::subarray(&a, &offset, &size, squeeze)?))
    });
    reg.register(&f("Reshape"), Some(2..=2), move |args| {
        let a = expect(&args[0], elem, class)?;
        let dims = index_vector(&args[1])?;
        Ok(blob(reshape::reshape(&a, &dims)?))
    });

    // --- Raw / Cast / conversions ----------------------------------------
    reg.register(&f("Raw"), Some(1..=1), move |args| {
        Ok(Value::Bytes(cast::raw(&expect(&args[0], elem, class)?)))
    });
    reg.register(&f("Cast"), Some(1..=2), move |args| {
        let raw_bytes = args[0].as_bytes()?;
        match args.get(1) {
            Some(dims_v) => {
                let dims = index_vector(dims_v)?;
                Ok(blob(cast::cast(raw_bytes, class, elem, &dims)?))
            }
            None => Ok(blob(cast::cast_vector(raw_bytes, class, elem)?)),
        }
    });
    reg.register(&f("ConvertTo"), Some(2..=2), move |args| {
        let a = expect(&args[0], elem, class)?;
        let target: ElementType = match &args[1] {
            Value::Str(s) => s
                .parse()
                .map_err(|e: sqlarray_core::ArrayError| EngineError::Array(e.to_string()))?,
            other => return Err(EngineError::Type(format!("{other:?} is not a type name"))),
        };
        Ok(blob(convert::convert_type(&a, target)?))
    });
    let other_class = match class {
        StorageClass::Short => StorageClass::Max,
        StorageClass::Max => StorageClass::Short,
    };
    let convert_name = match class {
        StorageClass::Short => f("ToMax"),
        StorageClass::Max => f("ToShort"),
    };
    reg.register(&convert_name, Some(1..=1), move |args| {
        let a = expect(&args[0], elem, class)?;
        Ok(blob(convert::convert_class(&a, other_class)?))
    });

    // --- Strings ----------------------------------------------------------
    reg.register(&f("ToString"), Some(1..=1), move |args| {
        Ok(Value::Str(sqlarray_core::fmt::to_string(&expect(
            &args[0], elem, class,
        )?)))
    });
    reg.register(&f("Parse"), Some(1..=1), move |args| {
        let s = match &args[0] {
            Value::Str(s) => s,
            other => return Err(EngineError::Type(format!("{other:?} is not a string"))),
        };
        let a: SqlArray = s
            .parse()
            .map_err(|e: sqlarray_core::ArrayError| EngineError::Array(e.to_string()))?;
        if a.elem() != elem {
            return Err(EngineError::Array(format!(
                "parsed a {} array in the {} schema",
                a.elem(),
                elem
            )));
        }
        Ok(blob(convert::convert_class(&a, class)?))
    });

    // --- Aggregates over the array ----------------------------------------
    reg.register(&f("Sum"), Some(1..=1), move |args| {
        Ok(Value::from(agg::sum(&expect(&args[0], elem, class)?)?))
    });
    reg.register(&f("Mean"), Some(1..=1), move |args| {
        Ok(Value::from(agg::mean(&expect(&args[0], elem, class)?)?))
    });
    reg.register(&f("Min"), Some(1..=1), move |args| {
        Ok(Value::from(agg::min(&expect(&args[0], elem, class)?)?))
    });
    reg.register(&f("Max"), Some(1..=1), move |args| {
        Ok(Value::from(agg::max(&expect(&args[0], elem, class)?)?))
    });
    reg.register(&f("Std"), Some(1..=1), move |args| {
        Ok(Value::from(agg::stddev(&expect(&args[0], elem, class)?)?))
    });
    reg.register(&f("Norm2"), Some(1..=1), move |args| {
        Ok(Value::F64(agg::norm2(&expect(&args[0], elem, class)?)?))
    });
    reg.register(&f("SumAxis"), Some(2..=2), move |args| {
        let a = expect(&args[0], elem, class)?;
        Ok(blob(axis::sum_axis(&a, args[1].as_index()?)?))
    });

    // --- Elementwise arithmetic --------------------------------------------
    reg.register(&f("Add"), Some(2..=2), move |args| {
        let a = expect(&args[0], elem, class)?;
        Ok(blob(elementwise::add(&a, &args[1].as_array()?)?))
    });
    reg.register(&f("Subtract"), Some(2..=2), move |args| {
        let a = expect(&args[0], elem, class)?;
        Ok(blob(elementwise::sub(&a, &args[1].as_array()?)?))
    });
    reg.register(&f("Multiply"), Some(2..=2), move |args| {
        let a = expect(&args[0], elem, class)?;
        Ok(blob(elementwise::mul(&a, &args[1].as_array()?)?))
    });
    reg.register(&f("Divide"), Some(2..=2), move |args| {
        let a = expect(&args[0], elem, class)?;
        Ok(blob(elementwise::div(&a, &args[1].as_array()?)?))
    });
    reg.register(&f("Scale"), Some(2..=2), move |args| {
        let a = expect(&args[0], elem, class)?;
        Ok(blob(elementwise::scale(&a, args[1].as_f64()?)?))
    });
    reg.register(&f("Dot"), Some(2..=2), move |args| {
        let a = expect(&args[0], elem, class)?;
        Ok(Value::F64(elementwise::dot(&a, &args[1].as_array()?)?))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hosting::HostingModel;

    fn setup() -> (UdfRegistry, HostingModel) {
        let mut reg = UdfRegistry::new();
        register_all(&mut reg);
        (reg, HostingModel::free())
    }

    fn call(reg: &UdfRegistry, h: &mut HostingModel, name: &str, args: &[Value]) -> Value {
        reg.call(name, args, h)
            .unwrap_or_else(|e| panic!("{name}: {e}"))
    }

    #[test]
    fn paper_vector_item_example() {
        // DECLARE @a = FloatArray.Vector_5(1,2,3,4,5);
        // SELECT FloatArray.Item_1(@a, 3) -> 4.0
        let (reg, mut h) = setup();
        let a = call(
            &reg,
            &mut h,
            "FloatArray.Vector_5",
            [1.0, 2.0, 3.0, 4.0, 5.0].map(Value::F64).to_vec()[..].as_ref(),
        );
        let item = call(&reg, &mut h, "FloatArray.Item_1", &[a, Value::I64(3)]);
        assert_eq!(item, Value::F64(4.0));
    }

    #[test]
    fn paper_matrix_example() {
        // FloatArray.Matrix_2(0.1,0.2,0.3,0.4); Item_2(@m, 1, 0) = 0.3.
        let (reg, mut h) = setup();
        let m = call(
            &reg,
            &mut h,
            "FloatArray.Matrix_2",
            [0.1, 0.2, 0.3, 0.4].map(Value::F64).to_vec()[..].as_ref(),
        );
        let item = call(
            &reg,
            &mut h,
            "FloatArray.Item_2",
            &[m, Value::I64(1), Value::I64(0)],
        );
        assert_eq!(item, Value::F64(0.3));
    }

    #[test]
    fn paper_subarray_example() {
        // FloatArrayMax.Subarray(@a, IntArray.Vector_3(1,4,6),
        //                        IntArray.Vector_3(5,5,5), 0)
        let (reg, mut h) = setup();
        let a = SqlArray::from_fn(StorageClass::Max, &[8, 10, 12], |idx| {
            (idx[0] + 10 * idx[1] + 100 * idx[2]) as f64
        })
        .unwrap();
        let offset = call(
            &reg,
            &mut h,
            "IntArray.Vector_3",
            [1, 4, 6].map(Value::I64).to_vec()[..].as_ref(),
        );
        let size = call(
            &reg,
            &mut h,
            "IntArray.Vector_3",
            [5, 5, 5].map(Value::I64).to_vec()[..].as_ref(),
        );
        let sub = call(
            &reg,
            &mut h,
            "FloatArrayMax.Subarray",
            &[
                Value::Bytes(a.as_blob().to_vec()),
                offset,
                size,
                Value::I64(0),
            ],
        );
        let sub = sub.as_array().unwrap();
        assert_eq!(sub.dims(), &[5, 5, 5]);
        assert_eq!(
            sub.item(&[0, 0, 0]).unwrap(),
            Scalar::F64((1 + 40 + 600) as f64)
        );
    }

    #[test]
    fn update_item_round_trip() {
        let (reg, mut h) = setup();
        let a = call(
            &reg,
            &mut h,
            "FloatArray.Vector_3",
            [1.0, 2.0, 3.0].map(Value::F64).to_vec()[..].as_ref(),
        );
        let b = call(
            &reg,
            &mut h,
            "FloatArray.UpdateItem_1",
            &[a, Value::I64(1), Value::F64(9.5)],
        );
        let item = call(&reg, &mut h, "FloatArray.Item_1", &[b, Value::I64(1)]);
        assert_eq!(item, Value::F64(9.5));
    }

    #[test]
    fn type_mismatch_across_schemas_detected() {
        let (reg, mut h) = setup();
        let a = call(
            &reg,
            &mut h,
            "IntArray.Vector_2",
            &[Value::I64(1), Value::I64(2)],
        );
        // Handing an int array to the float schema must fail loudly.
        let err = reg.call("FloatArray.Item_1", &[a, Value::I64(0)], &mut h);
        assert!(matches!(err, Err(EngineError::Array(_))));
    }

    #[test]
    fn storage_class_mismatch_detected() {
        let (reg, mut h) = setup();
        let short = call(&reg, &mut h, "FloatArray.Vector_1", &[Value::F64(1.0)]);
        let err = reg.call("FloatArrayMax.Rank", std::slice::from_ref(&short), &mut h);
        assert!(err.is_err());
        // Conversion fixes it.
        let max = call(&reg, &mut h, "FloatArray.ToMax", &[short]);
        assert_eq!(
            call(&reg, &mut h, "FloatArrayMax.Rank", &[max]),
            Value::I32(1)
        );
    }

    #[test]
    fn aggregates_and_arithmetic() {
        let (reg, mut h) = setup();
        let a = call(
            &reg,
            &mut h,
            "FloatArray.Vector_4",
            [1.0, 2.0, 3.0, 4.0].map(Value::F64).to_vec()[..].as_ref(),
        );
        assert_eq!(
            call(&reg, &mut h, "FloatArray.Sum", std::slice::from_ref(&a)),
            Value::F64(10.0)
        );
        assert_eq!(
            call(&reg, &mut h, "FloatArray.Mean", std::slice::from_ref(&a)),
            Value::F64(2.5)
        );
        assert_eq!(
            call(&reg, &mut h, "FloatArray.Max", std::slice::from_ref(&a)),
            Value::F64(4.0)
        );
        let doubled = call(
            &reg,
            &mut h,
            "FloatArray.Scale",
            &[a.clone(), Value::F64(2.0)],
        );
        assert_eq!(
            call(&reg, &mut h, "FloatArray.Dot", &[a.clone(), doubled]),
            Value::F64(60.0)
        );
        let summed = call(&reg, &mut h, "FloatArray.Add", &[a.clone(), a]);
        assert_eq!(
            summed.as_array().unwrap().to_vec::<f64>().unwrap(),
            vec![2.0, 4.0, 6.0, 8.0]
        );
    }

    #[test]
    fn raw_cast_and_string_round_trip() {
        let (reg, mut h) = setup();
        let a = call(
            &reg,
            &mut h,
            "FloatArray.Vector_2",
            &[Value::F64(1.5), Value::F64(-2.5)],
        );
        let raw = call(&reg, &mut h, "FloatArray.Raw", std::slice::from_ref(&a));
        assert_eq!(raw.as_bytes().unwrap().len(), 16);
        let back = call(&reg, &mut h, "FloatArray.Cast", &[raw]);
        assert_eq!(back, a);

        let s = call(
            &reg,
            &mut h,
            "FloatArray.ToString",
            std::slice::from_ref(&a),
        );
        assert_eq!(s, Value::Str("float64[2]{1.5,-2.5}".into()));
        let parsed = call(&reg, &mut h, "FloatArray.Parse", &[s]);
        assert_eq!(parsed, a);
    }

    #[test]
    fn introspection_functions() {
        let (reg, mut h) = setup();
        let dims = call(
            &reg,
            &mut h,
            "IntArray.Vector_2",
            &[Value::I64(3), Value::I64(4)],
        );
        let z = call(&reg, &mut h, "FloatArray.Zeros", &[dims]);
        assert_eq!(
            call(&reg, &mut h, "FloatArray.Rank", std::slice::from_ref(&z)),
            Value::I32(2)
        );
        assert_eq!(
            call(&reg, &mut h, "FloatArray.Count", std::slice::from_ref(&z)),
            Value::I64(12)
        );
        assert_eq!(
            call(&reg, &mut h, "FloatArray.Size", &[z.clone(), Value::I64(1)]),
            Value::I64(4)
        );
        let new_dims = call(
            &reg,
            &mut h,
            "IntArray.Vector_2",
            &[Value::I64(6), Value::I64(2)],
        );
        let reshaped = call(&reg, &mut h, "FloatArray.Reshape", &[z, new_dims]);
        assert_eq!(reshaped.as_array().unwrap().dims(), &[6, 2]);
    }

    #[test]
    fn convert_to_changes_element_type() {
        let (reg, mut h) = setup();
        let a = call(
            &reg,
            &mut h,
            "IntArray.Vector_2",
            &[Value::I64(1), Value::I64(2)],
        );
        let f = call(
            &reg,
            &mut h,
            "IntArray.ConvertTo",
            &[a, Value::Str("float64".into())],
        );
        assert_eq!(f.as_array().unwrap().elem(), ElementType::Float64);
    }

    #[test]
    fn empty_function_exists_and_is_managed() {
        let (reg, mut h) = setup();
        let v = call(
            &reg,
            &mut h,
            "dbo.EmptyFunction",
            &[Value::Bytes(vec![1, 2, 3]), Value::I64(0)],
        );
        assert_eq!(v, Value::F64(0.0));
        assert!(h.calls() > 0);
    }

    #[test]
    fn all_sixteen_schemas_registered() {
        let (reg, mut h) = setup();
        for elem in ElementType::ALL {
            for class in [StorageClass::Short, StorageClass::Max] {
                let name = format!("{}.Zeros", schema_name(elem, class));
                let dims = call(&reg, &mut h, "IntArray.Vector_1", &[Value::I64(2)]);
                let z = call(&reg, &mut h, &name, &[dims]);
                let a = z.as_array().unwrap();
                assert_eq!(a.elem(), elem);
                assert_eq!(a.class(), class);
            }
        }
    }
}
