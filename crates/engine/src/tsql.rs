//! A T-SQL-flavoured lexer and parser covering the dialect the paper's
//! examples use: `DECLARE`/`SET` with `@variables`, `SELECT` lists with
//! aliases and `@var = expr` assignment items, `TOP n`, schema-qualified
//! function calls (`FloatArray.Item_1`), `FROM ... WITH (NOLOCK)`,
//! `WHERE`, and `GROUP BY`.

use crate::expr::{AggFunc, BinOp, Expr};
use crate::value::{EngineError, Result, Value};

// ---------------------------------------------------------------------
// AST
// ---------------------------------------------------------------------

/// One statement of the supported dialect.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `DECLARE @name [TYPE] [= expr]` (the type annotation is parsed and
    /// ignored — storage is dynamically typed here).
    Declare {
        /// Variable name (without `@`).
        name: String,
        /// Optional initializer.
        init: Option<Expr>,
    },
    /// `SET @name = expr`.
    Set {
        /// Variable name (without `@`).
        name: String,
        /// Value expression.
        expr: Expr,
    },
    /// A `SELECT`.
    Select(SelectStmt),
    /// An `UPDATE ... SET ... [WHERE ...]`.
    Update(UpdateStmt),
    /// A `DELETE FROM ... [WHERE ...]`.
    Delete(DeleteStmt),
}

/// A parsed `UPDATE`.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateStmt {
    /// Target table.
    pub table: String,
    /// `SET col = expr` assignments, in statement order.
    pub sets: Vec<(String, Expr)>,
    /// `WHERE` predicate; `None` updates every row.
    pub where_clause: Option<Expr>,
}

/// A parsed `DELETE`.
#[derive(Debug, Clone, PartialEq)]
pub struct DeleteStmt {
    /// Target table.
    pub table: String,
    /// `WHERE` predicate; `None` deletes every row.
    pub where_clause: Option<Expr>,
}

/// A parsed `SELECT`.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// `TOP n` row cap.
    pub top: Option<usize>,
    /// Select-list items.
    pub items: Vec<SelectItem>,
    /// Source table (single-table dialect).
    pub from: Option<String>,
    /// `WHERE` predicate.
    pub where_clause: Option<Expr>,
    /// `GROUP BY` expressions.
    pub group_by: Vec<Expr>,
}

/// One select-list item.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectItem {
    /// The projected expression.
    pub expr: Expr,
    /// `AS alias`.
    pub alias: Option<String>,
    /// `@var = expr` assignment target.
    pub assign: Option<String>,
}

// ---------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Var(String),
    Int(i64),
    Float(f64),
    Str(String),
    Hex(Vec<u8>),
    LParen,
    RParen,
    Comma,
    Dot,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Semi,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, msg: &str) -> EngineError {
        EngineError::Parse {
            pos: self.pos,
            msg: msg.to_string(),
        }
    }

    fn tokens(mut self) -> Result<Vec<(usize, Tok)>> {
        let mut out = Vec::new();
        while self.pos < self.src.len() {
            let start = self.pos;
            let c = self.src[self.pos];
            match c {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.pos += 1;
                }
                b'-' if self.peek(1) == Some(b'-') => {
                    // Line comment.
                    while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
                        self.pos += 1;
                    }
                }
                b'(' => {
                    self.pos += 1;
                    out.push((start, Tok::LParen));
                }
                b')' => {
                    self.pos += 1;
                    out.push((start, Tok::RParen));
                }
                b',' => {
                    self.pos += 1;
                    out.push((start, Tok::Comma));
                }
                b'.' if !self.peek(1).map(|d| d.is_ascii_digit()).unwrap_or(false) => {
                    self.pos += 1;
                    out.push((start, Tok::Dot));
                }
                b'*' => {
                    self.pos += 1;
                    out.push((start, Tok::Star));
                }
                b'+' => {
                    self.pos += 1;
                    out.push((start, Tok::Plus));
                }
                b'-' => {
                    self.pos += 1;
                    out.push((start, Tok::Minus));
                }
                b'/' => {
                    self.pos += 1;
                    out.push((start, Tok::Slash));
                }
                b'%' => {
                    self.pos += 1;
                    out.push((start, Tok::Percent));
                }
                b';' => {
                    self.pos += 1;
                    out.push((start, Tok::Semi));
                }
                b'=' => {
                    self.pos += 1;
                    out.push((start, Tok::Eq));
                }
                b'<' => {
                    self.pos += 1;
                    match self.src.get(self.pos) {
                        Some(b'=') => {
                            self.pos += 1;
                            out.push((start, Tok::Le));
                        }
                        Some(b'>') => {
                            self.pos += 1;
                            out.push((start, Tok::Ne));
                        }
                        _ => out.push((start, Tok::Lt)),
                    }
                }
                b'>' => {
                    self.pos += 1;
                    if self.src.get(self.pos) == Some(&b'=') {
                        self.pos += 1;
                        out.push((start, Tok::Ge));
                    } else {
                        out.push((start, Tok::Gt));
                    }
                }
                b'!' if self.peek(1) == Some(b'=') => {
                    self.pos += 2;
                    out.push((start, Tok::Ne));
                }
                b'\'' => {
                    self.pos += 1;
                    let mut s = String::new();
                    loop {
                        match self.src.get(self.pos) {
                            Some(b'\'') if self.peek(1) == Some(b'\'') => {
                                s.push('\'');
                                self.pos += 2;
                            }
                            Some(b'\'') => {
                                self.pos += 1;
                                break;
                            }
                            Some(&b) => {
                                s.push(b as char);
                                self.pos += 1;
                            }
                            None => return Err(self.error("unterminated string")),
                        }
                    }
                    out.push((start, Tok::Str(s)));
                }
                b'@' => {
                    self.pos += 1;
                    let name = self.take_ident_chars();
                    if name.is_empty() {
                        return Err(self.error("expected variable name after `@`"));
                    }
                    out.push((start, Tok::Var(name)));
                }
                b'0' if matches!(self.peek(1), Some(b'x') | Some(b'X')) => {
                    self.pos += 2;
                    let mut bytes = Vec::new();
                    let mut digits = String::new();
                    while let Some(&b) = self.src.get(self.pos) {
                        if b.is_ascii_hexdigit() {
                            digits.push(b as char);
                            self.pos += 1;
                        } else {
                            break;
                        }
                    }
                    if digits.len() % 2 != 0 {
                        digits.insert(0, '0');
                    }
                    fn nibble(b: u8) -> u8 {
                        match b {
                            b'0'..=b'9' => b - b'0',
                            b'a'..=b'f' => b - b'a' + 10,
                            _ => b - b'A' + 10,
                        }
                    }
                    for pair in digits.as_bytes().chunks(2) {
                        bytes.push((nibble(pair[0]) << 4) | nibble(pair[1]));
                    }
                    out.push((start, Tok::Hex(bytes)));
                }
                b'0'..=b'9' | b'.' => {
                    let mut text = String::new();
                    let mut is_float = false;
                    while let Some(&b) = self.src.get(self.pos) {
                        match b {
                            b'0'..=b'9' => {
                                text.push(b as char);
                                self.pos += 1;
                            }
                            b'.' if !is_float => {
                                is_float = true;
                                text.push('.');
                                self.pos += 1;
                            }
                            b'e' | b'E' => {
                                is_float = true;
                                text.push('e');
                                self.pos += 1;
                                if matches!(self.src.get(self.pos), Some(b'+') | Some(b'-')) {
                                    text.push(self.src[self.pos] as char);
                                    self.pos += 1;
                                }
                            }
                            _ => break,
                        }
                    }
                    if is_float {
                        let v: f64 = text
                            .parse()
                            .map_err(|_| self.error(&format!("bad number `{text}`")))?;
                        out.push((start, Tok::Float(v)));
                    } else {
                        let v: i64 = text
                            .parse()
                            .map_err(|_| self.error(&format!("bad number `{text}`")))?;
                        out.push((start, Tok::Int(v)));
                    }
                }
                b'a'..=b'z' | b'A'..=b'Z' | b'_' | b'[' => {
                    if c == b'[' {
                        // Bracket-quoted identifier.
                        self.pos += 1;
                        let mut name = String::new();
                        while let Some(&b) = self.src.get(self.pos) {
                            if b == b']' {
                                break;
                            }
                            name.push(b as char);
                            self.pos += 1;
                        }
                        if self.src.get(self.pos) != Some(&b']') {
                            return Err(self.error("unterminated `[identifier]`"));
                        }
                        self.pos += 1;
                        out.push((start, Tok::Ident(name)));
                    } else {
                        let name = self.take_ident_chars();
                        out.push((start, Tok::Ident(name)));
                    }
                }
                other => {
                    return Err(self.error(&format!("unexpected character `{}`", other as char)))
                }
            }
        }
        Ok(out)
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn take_ident_chars(&mut self) -> String {
        let start = self.pos;
        while let Some(&b) = self.src.get(self.pos) {
            if b.is_ascii_alphanumeric() || b == b'_' {
                self.pos += 1;
            } else {
                break;
            }
        }
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct Parser {
    toks: Vec<(usize, Tok)>,
    pos: usize,
}

/// Parses a batch of statements.
pub fn parse(src: &str) -> Result<Vec<Stmt>> {
    let toks = Lexer::new(src).tokens()?;
    let mut p = Parser { toks, pos: 0 };
    let mut out = Vec::new();
    while !p.at_end() {
        if p.eat(&Tok::Semi) {
            continue;
        }
        out.push(p.statement()?);
    }
    Ok(out)
}

/// Parses a single expression (used by tests and the variable-free API).
pub fn parse_expr(src: &str) -> Result<Expr> {
    let toks = Lexer::new(src).tokens()?;
    let mut p = Parser { toks, pos: 0 };
    let e = p.expr()?;
    if !p.at_end() {
        return Err(p.error("trailing tokens after expression"));
    }
    Ok(e)
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(_, t)| t)
    }

    fn error(&self, msg: &str) -> EngineError {
        let pos = self
            .toks
            .get(self.pos)
            .or_else(|| self.toks.last())
            .map(|(p, _)| *p)
            .unwrap_or(0);
        EngineError::Parse {
            pos,
            msg: msg.to_string(),
        }
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|(_, t)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok, what: &str) -> Result<()> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.error(&format!("expected {what}")))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if let Some(Tok::Ident(s)) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Tok::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn statement(&mut self) -> Result<Stmt> {
        if self.eat_keyword("DECLARE") {
            let name = self.var_name()?;
            // Optional type annotation: one identifier, optionally with a
            // parenthesized size like VARBINARY(MAX) or VARBINARY(8000).
            if let Some(Tok::Ident(_)) = self.peek() {
                self.pos += 1;
                if self.eat(&Tok::LParen) {
                    // MAX or a number.
                    match self.next() {
                        Some(Tok::Ident(s)) if s.eq_ignore_ascii_case("MAX") => {}
                        Some(Tok::Int(_)) => {}
                        _ => return Err(self.error("expected size or MAX")),
                    }
                    self.expect(&Tok::RParen, "`)`")?;
                }
            }
            let init = if self.eat(&Tok::Eq) {
                Some(self.expr()?)
            } else {
                None
            };
            Ok(Stmt::Declare { name, init })
        } else if self.eat_keyword("SET") {
            let name = self.var_name()?;
            self.expect(&Tok::Eq, "`=`")?;
            let expr = self.expr()?;
            Ok(Stmt::Set { name, expr })
        } else if self.peek_keyword("SELECT") {
            self.pos += 1;
            Ok(Stmt::Select(self.select_body()?))
        } else if self.eat_keyword("UPDATE") {
            let table = match self.next() {
                Some(Tok::Ident(t)) => t,
                _ => return Err(self.error("expected table name after UPDATE")),
            };
            if !self.eat_keyword("SET") {
                return Err(self.error("expected SET after UPDATE <table>"));
            }
            let mut sets = Vec::new();
            loop {
                let col = match self.next() {
                    Some(Tok::Ident(c)) => c,
                    _ => return Err(self.error("expected column name in SET list")),
                };
                self.expect(&Tok::Eq, "`=` in SET assignment")?;
                sets.push((col, self.expr()?));
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            let where_clause = if self.eat_keyword("WHERE") {
                Some(self.expr()?)
            } else {
                None
            };
            Ok(Stmt::Update(UpdateStmt {
                table,
                sets,
                where_clause,
            }))
        } else if self.eat_keyword("DELETE") {
            if !self.eat_keyword("FROM") {
                return Err(self.error("expected FROM after DELETE"));
            }
            let table = match self.next() {
                Some(Tok::Ident(t)) => t,
                _ => return Err(self.error("expected table name after DELETE FROM")),
            };
            let where_clause = if self.eat_keyword("WHERE") {
                Some(self.expr()?)
            } else {
                None
            };
            Ok(Stmt::Delete(DeleteStmt {
                table,
                where_clause,
            }))
        } else {
            Err(self.error("expected DECLARE, SET, SELECT, UPDATE or DELETE"))
        }
    }

    fn var_name(&mut self) -> Result<String> {
        match self.next() {
            Some(Tok::Var(name)) => Ok(name),
            _ => Err(self.error("expected @variable")),
        }
    }

    fn select_body(&mut self) -> Result<SelectStmt> {
        let top = if self.eat_keyword("TOP") {
            match self.next() {
                Some(Tok::Int(n)) if n >= 0 => Some(n as usize),
                _ => return Err(self.error("expected row count after TOP")),
            }
        } else {
            None
        };

        let mut items = vec![self.select_item()?];
        while self.eat(&Tok::Comma) {
            items.push(self.select_item()?);
        }

        let mut from = None;
        let mut where_clause = None;
        let mut group_by = Vec::new();
        if self.eat_keyword("FROM") {
            let table = match self.next() {
                Some(Tok::Ident(t)) => t,
                _ => return Err(self.error("expected table name after FROM")),
            };
            from = Some(table);
            // WITH (NOLOCK) — parsed and ignored, like the real hint on a
            // read-only scan.
            if self.eat_keyword("WITH") {
                self.expect(&Tok::LParen, "`(` after WITH")?;
                if !self.eat_keyword("NOLOCK") {
                    return Err(self.error("only the NOLOCK hint is supported"));
                }
                self.expect(&Tok::RParen, "`)`")?;
            }
            if self.eat_keyword("WHERE") {
                where_clause = Some(self.expr()?);
            }
            if self.eat_keyword("GROUP") {
                if !self.eat_keyword("BY") {
                    return Err(self.error("expected BY after GROUP"));
                }
                group_by.push(self.expr()?);
                while self.eat(&Tok::Comma) {
                    group_by.push(self.expr()?);
                }
            }
        }
        Ok(SelectStmt {
            top,
            items,
            from,
            where_clause,
            group_by,
        })
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        // `@var = expr` assignment item.
        if let Some(Tok::Var(name)) = self.peek().cloned() {
            if self.toks.get(self.pos + 1).map(|(_, t)| t) == Some(&Tok::Eq) {
                self.pos += 2;
                let expr = self.expr()?;
                return Ok(SelectItem {
                    expr,
                    alias: None,
                    assign: Some(name),
                });
            }
        }
        let expr = self.expr()?;
        let alias = if self.eat_keyword("AS") {
            match self.next() {
                Some(Tok::Ident(a)) => Some(a),
                _ => return Err(self.error("expected alias after AS")),
            }
        } else {
            None
        };
        Ok(SelectItem {
            expr,
            alias,
            assign: None,
        })
    }

    // --- expressions, precedence climbing -----------------------------

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_keyword("OR") {
            let right = self.and_expr()?;
            left = Expr::Bin {
                op: BinOp::Or,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut left = self.not_expr()?;
        while self.eat_keyword("AND") {
            let right = self.not_expr()?;
            left = Expr::Bin {
                op: BinOp::And,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_keyword("NOT") {
            Ok(Expr::Not(Box::new(self.not_expr()?)))
        } else {
            self.cmp_expr()
        }
    }

    fn cmp_expr(&mut self) -> Result<Expr> {
        let left = self.add_expr()?;
        let op = match self.peek() {
            Some(Tok::Eq) => Some(BinOp::Eq),
            Some(Tok::Ne) => Some(BinOp::Ne),
            Some(Tok::Lt) => Some(BinOp::Lt),
            Some(Tok::Le) => Some(BinOp::Le),
            Some(Tok::Gt) => Some(BinOp::Gt),
            Some(Tok::Ge) => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.add_expr()?;
            Ok(Expr::Bin {
                op,
                left: Box::new(left),
                right: Box::new(right),
            })
        } else {
            Ok(left)
        }
    }

    fn add_expr(&mut self) -> Result<Expr> {
        let mut left = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Plus) => BinOp::Add,
                Some(Tok::Minus) => BinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let right = self.mul_expr()?;
            left = Expr::Bin {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn mul_expr(&mut self) -> Result<Expr> {
        let mut left = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Some(Tok::Star) => BinOp::Mul,
                Some(Tok::Slash) => BinOp::Div,
                Some(Tok::Percent) => BinOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let right = self.unary_expr()?;
            left = Expr::Bin {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn unary_expr(&mut self) -> Result<Expr> {
        if self.eat(&Tok::Minus) {
            Ok(Expr::Neg(Box::new(self.unary_expr()?)))
        } else if self.eat(&Tok::Plus) {
            self.unary_expr()
        } else {
            self.primary()
        }
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.next() {
            Some(Tok::Int(v)) => Ok(Expr::Lit(Value::I64(v))),
            Some(Tok::Float(v)) => Ok(Expr::Lit(Value::F64(v))),
            Some(Tok::Str(s)) => Ok(Expr::Lit(Value::Str(s))),
            Some(Tok::Hex(b)) => Ok(Expr::Lit(Value::Bytes(b))),
            Some(Tok::Var(name)) => Ok(Expr::Var(name)),
            Some(Tok::LParen) => {
                let e = self.expr()?;
                self.expect(&Tok::RParen, "`)`")?;
                Ok(e)
            }
            Some(Tok::Ident(first)) => {
                if first.eq_ignore_ascii_case("NULL") {
                    return Ok(Expr::Lit(Value::Null));
                }
                const RESERVED: &[&str] = &[
                    "SELECT", "FROM", "WHERE", "GROUP", "BY", "TOP", "AS", "WITH", "NOLOCK",
                    "DECLARE", "SET", "ORDER", "UPDATE", "DELETE",
                ];
                if RESERVED.iter().any(|k| first.eq_ignore_ascii_case(k)) {
                    self.pos -= 1;
                    return Err(self.error(&format!("unexpected keyword `{first}`")));
                }
                // Qualified name: ident (. ident)*
                let mut name = first;
                while self.eat(&Tok::Dot) {
                    match self.next() {
                        Some(Tok::Ident(part)) => {
                            name.push('.');
                            name.push_str(&part);
                        }
                        _ => return Err(self.error("expected identifier after `.`")),
                    }
                }
                if self.eat(&Tok::LParen) {
                    // Built-in aggregate?
                    let agg = match name.to_ascii_uppercase().as_str() {
                        "COUNT" => Some(AggFunc::Count),
                        "SUM" => Some(AggFunc::Sum),
                        "AVG" => Some(AggFunc::Avg),
                        "MIN" => Some(AggFunc::Min),
                        "MAX" => Some(AggFunc::Max),
                        _ => None,
                    };
                    if let Some(func) = agg {
                        if func == AggFunc::Count && self.eat(&Tok::Star) {
                            self.expect(&Tok::RParen, "`)`")?;
                            return Ok(Expr::Agg {
                                func: AggFunc::CountStar,
                                arg: None,
                            });
                        }
                        let arg = self.expr()?;
                        self.expect(&Tok::RParen, "`)`")?;
                        return Ok(Expr::Agg {
                            func,
                            arg: Some(Box::new(arg)),
                        });
                    }
                    let mut args = Vec::new();
                    if !self.eat(&Tok::RParen) {
                        args.push(self.expr()?);
                        while self.eat(&Tok::Comma) {
                            args.push(self.expr()?);
                        }
                        self.expect(&Tok::RParen, "`)`")?;
                    }
                    Ok(Expr::Func { name, args })
                } else {
                    Ok(Expr::Col(name))
                }
            }
            _ => Err(self.error("expected expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lex_and_parse_paper_query4() {
        let stmts =
            parse("SELECT SUM(floatarray.Item_1(v, 0)) FROM Tvector WITH (NOLOCK)").unwrap();
        assert_eq!(stmts.len(), 1);
        let Stmt::Select(s) = &stmts[0] else {
            panic!("expected SELECT");
        };
        assert_eq!(s.from.as_deref(), Some("Tvector"));
        let Expr::Agg { func, arg } = &s.items[0].expr else {
            panic!("expected aggregate");
        };
        assert_eq!(*func, AggFunc::Sum);
        let Expr::Func { name, args } = arg.as_deref().unwrap() else {
            panic!("expected function call");
        };
        assert_eq!(name, "floatarray.Item_1");
        assert_eq!(args.len(), 2);
    }

    #[test]
    fn count_star() {
        let stmts = parse("SELECT COUNT(*) FROM Tscalar WITH (NOLOCK)").unwrap();
        let Stmt::Select(s) = &stmts[0] else { panic!() };
        assert_eq!(
            s.items[0].expr,
            Expr::Agg {
                func: AggFunc::CountStar,
                arg: None
            }
        );
    }

    #[test]
    fn declare_with_type_and_init() {
        let stmts = parse(
            "DECLARE @a VARBINARY(MAX) = FloatArray.Vector_2(1.0, 2.0); \
             DECLARE @b VARBINARY(100); \
             SET @b = @a",
        )
        .unwrap();
        assert_eq!(stmts.len(), 3);
        assert!(matches!(&stmts[0], Stmt::Declare { name, init: Some(_) } if name == "a"));
        assert!(matches!(&stmts[1], Stmt::Declare { name, init: None } if name == "b"));
        assert!(matches!(&stmts[2], Stmt::Set { name, .. } if name == "b"));
    }

    #[test]
    fn select_assignment_item() {
        let stmts = parse("SELECT @a = FloatArrayMax.Concat(@l, ix, v) FROM tbl").unwrap();
        let Stmt::Select(s) = &stmts[0] else { panic!() };
        assert_eq!(s.items[0].assign.as_deref(), Some("a"));
        assert!(
            matches!(&s.items[0].expr, Expr::Func { name, .. } if name == "FloatArrayMax.Concat")
        );
    }

    #[test]
    fn operator_precedence() {
        let e = parse_expr("1 + 2 * 3 < 10 AND NOT 0").unwrap();
        // ((1 + (2*3)) < 10) AND (NOT 0)
        let Expr::Bin {
            op: BinOp::And,
            left,
            ..
        } = e
        else {
            panic!()
        };
        let Expr::Bin {
            op: BinOp::Lt,
            left: add,
            ..
        } = *left
        else {
            panic!()
        };
        let Expr::Bin { op: BinOp::Add, .. } = *add else {
            panic!()
        };
    }

    #[test]
    fn where_group_by_top_alias() {
        let stmts =
            parse("SELECT TOP 5 id AS ident, SUM(x) FROM t WHERE id % 2 = 0 GROUP BY id % 10")
                .unwrap();
        let Stmt::Select(s) = &stmts[0] else { panic!() };
        assert_eq!(s.top, Some(5));
        assert_eq!(s.items[0].alias.as_deref(), Some("ident"));
        assert!(s.where_clause.is_some());
        assert_eq!(s.group_by.len(), 1);
    }

    #[test]
    fn literals() {
        assert_eq!(parse_expr("NULL").unwrap(), Expr::Lit(Value::Null));
        assert_eq!(
            parse_expr("0x0AFF").unwrap(),
            Expr::Lit(Value::Bytes(vec![0x0A, 0xFF]))
        );
        assert_eq!(
            parse_expr("'it''s'").unwrap(),
            Expr::Lit(Value::Str("it's".into()))
        );
        assert_eq!(parse_expr("1.5e2").unwrap(), Expr::Lit(Value::F64(150.0)));
        assert_eq!(
            parse_expr("-3").unwrap(),
            Expr::Neg(Box::new(Expr::Lit(Value::I64(3))))
        );
    }

    #[test]
    fn comments_are_skipped() {
        let stmts = parse("SELECT 1 -- the answer\n").unwrap();
        assert_eq!(stmts.len(), 1);
    }

    #[test]
    fn errors_carry_position() {
        let err = parse("SELECT FROM").unwrap_err();
        assert!(matches!(err, EngineError::Parse { .. }));
        let err = parse_expr("1 +").unwrap_err();
        assert!(matches!(err, EngineError::Parse { .. }));
        assert!(parse("FROB x").is_err());
        assert!(parse("SELECT 'unterminated").is_err());
    }

    #[test]
    fn update_and_delete_statements() {
        let stmts = parse(
            "UPDATE Tvector SET v = FloatArray.Vector_2(1.0, 2.0), id = id + 1 WHERE id > 3;\
             DELETE FROM Tvector WHERE id = 0;\
             DELETE FROM Tvector",
        )
        .unwrap();
        assert_eq!(stmts.len(), 3);
        let Stmt::Update(u) = &stmts[0] else {
            panic!("expected UPDATE")
        };
        assert_eq!(u.table, "Tvector");
        assert_eq!(u.sets.len(), 2);
        assert_eq!(u.sets[0].0, "v");
        assert_eq!(u.sets[1].0, "id");
        assert!(u.where_clause.is_some());
        let Stmt::Delete(d) = &stmts[1] else {
            panic!("expected DELETE")
        };
        assert_eq!(d.table, "Tvector");
        assert!(d.where_clause.is_some());
        let Stmt::Delete(d2) = &stmts[2] else {
            panic!("expected DELETE")
        };
        assert!(d2.where_clause.is_none());
    }

    #[test]
    fn update_delete_syntax_errors() {
        assert!(parse("UPDATE SET x = 1").is_err()); // SET is reserved: no table
        assert!(parse("UPDATE t x = 1").is_err());
        assert!(parse("UPDATE t SET = 1").is_err());
        assert!(parse("UPDATE t SET x 1").is_err());
        assert!(parse("DELETE t WHERE x = 1").is_err());
        assert!(parse("DELETE FROM WHERE x = 1").is_err());
    }

    #[test]
    fn bracket_quoted_identifiers() {
        let e = parse_expr("[weird name]").unwrap();
        assert_eq!(e, Expr::Col("weird name".into()));
    }
}
