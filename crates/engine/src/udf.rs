//! Scalar UDF registry.
//!
//! The original library exposes its whole surface as schema-qualified
//! scalar functions (`FloatArray.Item_1`, `IntArrayMax.Subarray`, ...,
//! §5.1). Because T-SQL lacks variadic UDFs, the numbered suffix encodes
//! the arity; this registry accepts variadic implementations and resolves
//! `Name_N` to `Name` automatically, so the paper's exact spellings work.

use crate::hosting::{CostClass, HostingModel};
use crate::value::{EngineError, Result, Value};
use std::collections::HashMap;

/// Strips the T-SQL numbered-arity suffix (`Item_3` → `Item`), the one
/// definition of the convention — shared by [`UdfRegistry::resolve`] and
/// the LOB pushdown rewrite so both always agree on which spellings name
/// the same function. Returns the input unchanged when no suffix exists.
pub(crate) fn strip_numbered_suffix(name: &str) -> &str {
    if let Some(pos) = name.rfind('_') {
        let digits = &name[pos + 1..];
        if !digits.is_empty() && digits.chars().all(|c| c.is_ascii_digit()) {
            return &name[..pos];
        }
    }
    name
}

/// The implementation of a scalar function.
pub type UdfFn = Box<dyn Fn(&[Value]) -> Result<Value> + Send + Sync>;

/// A registered scalar function.
pub struct Udf {
    /// Implementation.
    pub func: UdfFn,
    /// Managed functions pay the hosting overhead per call; native ones
    /// do not.
    pub cost: CostClass,
    /// Allowed argument counts (`None` = variadic).
    pub arity: Option<std::ops::RangeInclusive<usize>>,
}

/// Name → function registry, case-insensitive.
#[derive(Default)]
pub struct UdfRegistry {
    funcs: HashMap<String, Udf>,
}

impl UdfRegistry {
    /// An empty registry.
    pub fn new() -> UdfRegistry {
        UdfRegistry::default()
    }

    /// Registers a managed (CLR-cost) function.
    pub fn register(
        &mut self,
        name: &str,
        arity: Option<std::ops::RangeInclusive<usize>>,
        func: impl Fn(&[Value]) -> Result<Value> + Send + Sync + 'static,
    ) {
        self.funcs.insert(
            name.to_ascii_lowercase(),
            Udf {
                func: Box::new(func),
                cost: CostClass::Managed,
                arity,
            },
        );
    }

    /// Registers a native (no hosting charge) function.
    pub fn register_native(
        &mut self,
        name: &str,
        arity: Option<std::ops::RangeInclusive<usize>>,
        func: impl Fn(&[Value]) -> Result<Value> + Send + Sync + 'static,
    ) {
        self.funcs.insert(
            name.to_ascii_lowercase(),
            Udf {
                func: Box::new(func),
                cost: CostClass::Native,
                arity,
            },
        );
    }

    /// Looks a function up, resolving `Name_N` numbered variants to their
    /// variadic base registration.
    pub fn resolve(&self, name: &str) -> Option<&Udf> {
        let lower = name.to_ascii_lowercase();
        if let Some(u) = self.funcs.get(&lower) {
            return Some(u);
        }
        let base = strip_numbered_suffix(&lower);
        if base.len() != lower.len() {
            return self.funcs.get(base);
        }
        None
    }

    /// Invokes a function, charging the hosting model for managed calls.
    pub fn call(&self, name: &str, args: &[Value], hosting: &mut HostingModel) -> Result<Value> {
        let udf = self
            .resolve(name)
            .ok_or_else(|| EngineError::Unknown(format!("function `{name}`")))?;
        if let Some(arity) = &udf.arity {
            if !arity.contains(&args.len()) {
                return Err(EngineError::Arity {
                    func: name.to_string(),
                    got: args.len(),
                    want: format!("{}..={}", arity.start(), arity.end()),
                });
            }
        }
        if udf.cost == CostClass::Managed {
            hosting.charge_call();
        }
        (udf.func)(args)
    }

    /// Number of registered functions.
    pub fn len(&self) -> usize {
        self.funcs.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.funcs.is_empty()
    }

    /// All registered names, sorted (for documentation/tests).
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.funcs.keys().cloned().collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn add_fn(args: &[Value]) -> Result<Value> {
        Ok(Value::F64(args[0].as_f64()? + args[1].as_f64()?))
    }

    #[test]
    fn register_and_call() {
        let mut reg = UdfRegistry::new();
        reg.register("dbo.Add", Some(2..=2), add_fn);
        let mut h = HostingModel::free();
        let v = reg
            .call("dbo.add", &[Value::F64(1.0), Value::F64(2.0)], &mut h)
            .unwrap();
        assert_eq!(v, Value::F64(3.0));
        assert_eq!(h.calls(), 1);
    }

    #[test]
    fn numbered_suffix_resolves() {
        let mut reg = UdfRegistry::new();
        reg.register("FloatArray.Vector", None, |args| {
            Ok(Value::I64(args.len() as i64))
        });
        let mut h = HostingModel::free();
        let v = reg
            .call(
                "FloatArray.Vector_3",
                &[Value::F64(1.0), Value::F64(2.0), Value::F64(3.0)],
                &mut h,
            )
            .unwrap();
        assert_eq!(v, Value::I64(3));
        // But a name whose suffix is not numeric does not resolve.
        assert!(reg.resolve("FloatArray.Vector_x").is_none());
    }

    #[test]
    fn arity_enforced() {
        let mut reg = UdfRegistry::new();
        reg.register("f", Some(2..=2), add_fn);
        let mut h = HostingModel::free();
        assert!(matches!(
            reg.call("f", &[Value::F64(1.0)], &mut h),
            Err(EngineError::Arity { .. })
        ));
    }

    #[test]
    fn unknown_function() {
        let reg = UdfRegistry::new();
        let mut h = HostingModel::free();
        assert!(matches!(
            reg.call("nope", &[], &mut h),
            Err(EngineError::Unknown(_))
        ));
    }

    #[test]
    fn native_functions_skip_hosting_charge() {
        let mut reg = UdfRegistry::new();
        reg.register_native("native.id", Some(1..=1), |args| Ok(args[0].clone()));
        reg.register("managed.id", Some(1..=1), |args| Ok(args[0].clone()));
        let mut h = HostingModel::new(100);
        reg.call("native.id", &[Value::I64(1)], &mut h).unwrap();
        assert_eq!(h.calls(), 0);
        reg.call("managed.id", &[Value::I64(1)], &mut h).unwrap();
        assert_eq!(h.calls(), 1);
        assert_eq!(h.charged_ns(), 100);
    }
}
