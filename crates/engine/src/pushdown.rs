//! Subarray/Item pushdown over lazy LOB array values.
//!
//! A stored max array reaches an expression as a lazy [`Value::Lob`]
//! reference (root-page id + length), not as bytes. This module is the
//! blob-aware boundary of the evaluator:
//!
//! * `try_lob_pushdown` rewrites `XxxArrayMax.Subarray(col, …)` and
//!   `XxxArrayMax.Item_k(col, …)` over a base LOB column into a
//!   header-prefix read plus page-ranged payload reads — the paper's §3.3
//!   claim that the binary stream "supports reading only parts of the
//!   binary data if the whole array is not required". The parent payload
//!   is never materialized: a 5×5×5 corner of a multi-megabyte cube costs
//!   a handful of chunk pages instead of thousands.
//! * `resolve_lob_in_place` is the fallback for every other consumer: a
//!   single full ranged read through the same reader, turning the lazy
//!   reference into ordinary `Value::Bytes` (this is what fixed the old
//!   `<lob:…>` placeholder-string hole).
//!
//! Both paths read through the caller's [`sqlarray_storage::PageRead`] —
//! the serial store or a parallel scan worker's `PartitionReader` — so
//! every LOB page touch lands in the live buffer pool with the scan's
//! logical stamps and classifies into the worker's `IoStats` exactly like
//! a leaf-page read. Results and counters stay bit-identical to serial at
//! any DOP.

use crate::arraybind::{index_vector, parse_schema};
use crate::expr::EvalEnv;
use crate::udf::strip_numbered_suffix;
use crate::value::{EngineError, Result, Value};
use sqlarray_core::stream::ArrayReader;
use sqlarray_core::{ArrayError, ElementType, StorageClass};
use sqlarray_storage::{blob, BlobStream};

/// The two function shapes the rewrite recognizes.
enum PushdownOp {
    /// `Schema.Subarray(a, offset, size[, squeeze])`.
    Subarray,
    /// `Schema.Item_k(a, i0, …, ik-1)`.
    Item,
}

/// Recognizes a pushdown-eligible function name, returning the schema's
/// element type and storage class alongside the operation.
fn parse_pushdown_name(name: &str) -> Option<(ElementType, StorageClass, PushdownOp)> {
    let (schema, func) = name.split_once('.')?;
    let (elem, class) = parse_schema(schema)?;
    let base = strip_numbered_suffix(func);
    let op = if base.eq_ignore_ascii_case("Subarray") {
        PushdownOp::Subarray
    } else if base.eq_ignore_ascii_case("Item") {
        PushdownOp::Item
    } else {
        return None;
    };
    Some((elem, class, op))
}

/// Attempts the pushdown rewrite for one already-evaluated call.
///
/// Returns `Ok(Some(value))` when `name` is a `Subarray`/`Item` call whose
/// first argument is a lazy LOB reference: the result is then assembled
/// from a header-prefix read plus the minimal page-ranged payload reads,
/// with the same runtime type/class/arity checks (and the same managed-
/// call hosting charge) the bypassed UDF would have applied. Returns
/// `Ok(None)` when the call is not eligible — the caller falls back to
/// the ordinary resolve-then-invoke path.
pub(crate) fn try_lob_pushdown(
    name: &str,
    argv: &[Value],
    env: &mut EvalEnv<'_>,
) -> Result<Option<Value>> {
    let Some(&Value::Lob { id, len }) = argv.first() else {
        return Ok(None);
    };
    let Some((elem, class, op)) = parse_pushdown_name(name) else {
        return Ok(None);
    };
    // Mirror the registered arities; on a mismatch fall back so the arity
    // error is produced by the registry, identically to the full path.
    let arity_ok = match op {
        PushdownOp::Subarray => (3..=4).contains(&argv.len()),
        PushdownOp::Item => (2..=9).contains(&argv.len()),
    };
    if !arity_ok {
        return Ok(None);
    }
    // Index arguments that are themselves LOBs (pathological) go through
    // the materializing fallback instead.
    if argv[1..].iter().any(|v| matches!(v, Value::Lob { .. })) {
        return Ok(None);
    }
    // The bypassed UDF is a managed function: charge the same hosting
    // cost so pushdown changes I/O, not the CLR accounting.
    env.hosting.charge_call();
    let Some(reader) = env.lobs.as_deref_mut() else {
        return Err(EngineError::UnresolvedLob { id, len });
    };

    let stream = BlobStream::open(reader, id)?;
    let mut arr = ArrayReader::open(stream)?;
    let header = arr.header().clone();
    // The runtime checks a schema-qualified call implies (`expect` in
    // `arraybind`), performed from the header prefix alone.
    if header.elem != elem {
        return Err(EngineError::Array(
            ArrayError::TypeMismatch {
                expected: elem,
                got: header.elem,
            }
            .to_string(),
        ));
    }
    if header.class != class {
        return Err(EngineError::Array(
            ArrayError::StorageClassMismatch {
                expected_short: class == StorageClass::Short,
            }
            .to_string(),
        ));
    }
    // `SqlArray::from_blob` would verify the payload length on the full
    // path; check it against the stored length without reading payload.
    if header.blob_len() != len as usize {
        return Err(EngineError::Array(
            ArrayError::PayloadSizeMismatch {
                got: len as usize,
                need: header.blob_len(),
            }
            .to_string(),
        ));
    }

    match op {
        PushdownOp::Subarray => {
            let offset = index_vector(&argv[1])?;
            let size = index_vector(&argv[2])?;
            let squeeze = argv.get(3).map(|v| v.is_true()).unwrap_or(false);
            let sub = arr.subarray(&offset, &size, squeeze)?;
            Ok(Some(Value::Bytes(sub.into_blob())))
        }
        PushdownOp::Item => {
            let idx: Vec<usize> = argv[1..]
                .iter()
                .map(|v| v.as_index())
                .collect::<Result<_>>()?;
            let scalar = arr.item(&idx)?;
            Ok(Some(Value::from(scalar)))
        }
    }
}

/// Resolves a lazy LOB reference into in-memory bytes with **one** full
/// ranged read through the evaluation environment's reader — the fallback
/// for every blob consumer the pushdown rewrite does not cover. Values
/// that are not LOB references pass through untouched; a LOB reference
/// with no reader available raises the typed
/// [`EngineError::UnresolvedLob`].
pub(crate) fn resolve_lob_in_place(v: &mut Value, env: &mut EvalEnv<'_>) -> Result<()> {
    let Value::Lob { id, len } = *v else {
        return Ok(());
    };
    let Some(reader) = env.lobs.as_deref_mut() else {
        return Err(EngineError::UnresolvedLob { id, len });
    };
    // Materializing a stored chain is the single largest allocation a
    // row can force; charge it against the statement's memory budget
    // before reading a byte.
    if let Some(q) = reader.lifecycle() {
        q.charge(len)?;
    }
    let bytes = blob::read_blob(reader, id)?;
    assert_eq!(bytes.len(), len as usize);
    *v = Value::Bytes(bytes);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_recognition() {
        assert!(matches!(
            parse_pushdown_name("FloatArrayMax.Subarray"),
            Some((
                ElementType::Float64,
                StorageClass::Max,
                PushdownOp::Subarray
            ))
        ));
        assert!(matches!(
            parse_pushdown_name("intarraymax.item_3"),
            Some((ElementType::Int32, StorageClass::Max, PushdownOp::Item))
        ));
        assert!(matches!(
            parse_pushdown_name("FloatArray.Item_2"),
            Some((ElementType::Float64, StorageClass::Short, PushdownOp::Item))
        ));
        assert!(parse_pushdown_name("FloatArrayMax.Sum").is_none());
        assert!(parse_pushdown_name("NoSuchSchema.Subarray").is_none());
        assert!(parse_pushdown_name("Subarray").is_none());
        assert!(parse_pushdown_name("FloatArrayMax.Item_x").is_none());
    }

    #[test]
    fn suffix_stripping() {
        // The shared registry convention, exercised from the pushdown side.
        assert_eq!(strip_numbered_suffix("Item_3"), "Item");
        assert_eq!(strip_numbered_suffix("Item"), "Item");
        assert_eq!(strip_numbered_suffix("Item_"), "Item_");
        assert_eq!(strip_numbered_suffix("Item_x2"), "Item_x2");
    }
}
