//! The query executor: partitioned clustered-index scans with filters,
//! projections, built-in aggregates, GROUP BY and user-defined aggregates,
//! fanned out over a configurable degree of parallelism.
//!
//! ## The parallel pipeline
//!
//! Every `FROM` query runs the same plan regardless of DOP:
//!
//! 1. [`Table::partition`] splits the clustered index into at most
//!    `ExecCtx::dop` contiguous leaf-page ranges (key order preserved);
//! 2. each partition is scanned by a worker — inline on the calling thread
//!    for one partition, on [`std::thread::scope`] threads otherwise —
//!    holding its own [`sqlarray_storage::PartitionReader`], a
//!    [`HostingModel`] fork, and private accumulators; every worker read
//!    touches the **live** sharded buffer pool immediately, while the
//!    simulated I/O classifies against the start-of-scan residency
//!    snapshot in [`sqlarray_storage::ScanCtx`];
//! 3. worker partials merge **in partition order**: projection rows
//!    concatenate (and truncate to `TOP`), groups combine accumulator by
//!    accumulator (exact-sum merge for `SUM`/`AVG`, `Merge()`-style state
//!    merge for UDAs), and per-worker [`IoStats`]/hosting counters fold
//!    back through [`sqlarray_storage::PageStore::finish_scan`], which
//!    stitches the sequential/random classification across partition
//!    boundaries and advances the simulated disk head to the scan's last
//!    *physical* read.
//!
//! Results are **bit-identical at every DOP**: partitions cover the scan in
//! key order, `SUM`/`AVG` accumulate in an order-independent exact
//! accumulator ([`sqlarray_core::exact::ExactSum`]), and order-sensitive
//! UDA state merges in partition order.

use crate::aggregate::{UdaMode, UdaRegistry, UdaState};
use crate::expr::{eval, AggFunc, EvalEnv, Expr, RowCtx};
use crate::hosting::HostingModel;
use crate::tsql::{DeleteStmt, SelectItem, SelectStmt, UpdateStmt};
use crate::udf::UdfRegistry;
use crate::value::{EngineError, Result, Value};
use sqlarray_core::exact::ExactSum;
use sqlarray_core::parallel::scoped_map_ranges;
use sqlarray_core::stream::ArrayReader;
use sqlarray_core::{ElementType, StorageClass};
use sqlarray_storage::{
    BlobStream, ColType, Column, IoStats, PageStore, RowValue, ScanCtx, ScanIo, ScanPartition,
    Schema, Table,
};
use std::collections::HashMap;
use std::time::Instant;

/// Default cap on rows returned by a projection without `TOP`.
pub const DEFAULT_ROW_LIMIT: usize = 100_000;

/// Per-query measurements — the raw numbers behind a Table 1 row.
#[derive(Debug, Clone)]
pub struct QueryStats {
    /// Rows the scan visited (before WHERE), summed over workers. Under
    /// `TOP`-style early termination this can differ between DOPs (each
    /// worker stops independently); result rows never do. The vectorized
    /// path counts a whole batch when it is handed to the filter, so under
    /// `TOP` it can run slightly ahead of the row-at-a-time count.
    pub rows_scanned: u64,
    /// Column batches the vectorized scan produced, summed over workers.
    /// 0 when the query ran the row-at-a-time path (fallback or batch
    /// execution disabled).
    pub batches: u64,
    /// Mean rows per batch (`rows_scanned / batches`); 0 when no batches
    /// ran. Full batches (≈ the configured batch size) mean the scan
    /// amortized per-row decode well; low fill means leaf-aligned flushes
    /// (blob plans) or a small table.
    pub batch_fill: f64,
    /// Managed UDF invocations during the query, summed over workers.
    /// A non-aggregate select item inside an aggregate query evaluates
    /// once per worker (each worker primes its own partial, the merge
    /// keeps the first), so its UDF calls — unlike result rows — can
    /// scale with DOP.
    pub udf_calls: u64,
    /// Hosting overhead charged, nanoseconds, summed over workers.
    pub udf_overhead_ns: u64,
    /// Total CPU-busy seconds: the sum of every worker's busy time plus
    /// the coordinator's non-overlapped setup/merge time. At DOP 1 this
    /// equals [`wall_seconds`](Self::wall_seconds); at DOP > 1 it exceeds
    /// the wall clock by (roughly) the parallel speedup factor.
    pub cpu_seconds: f64,
    /// Measured wall-clock seconds for the whole execution.
    pub wall_seconds: f64,
    /// Workers the scan actually used (≤ the session DOP; 1 when the
    /// table was too small to split or there was no scan).
    pub dop: usize,
    /// Page-level I/O performed (partitioning reads + all workers).
    pub io: IoStats,
    /// Seconds the simulated disk needs for that I/O.
    pub sim_io_seconds: f64,
    /// Rows an UPDATE/DELETE statement changed (0 for SELECT).
    pub rows_affected: u64,
}

impl QueryStats {
    /// Execution time under the overlap model.
    ///
    /// The engine computes in memory, so real wall time contains no disk
    /// component; the simulated disk runs as a concurrent pipeline that
    /// prefetches ahead of the scan, exactly like the read-ahead of the
    /// paper's testbed. The slower pipeline bounds the query:
    /// `max(wall_seconds, sim_io_seconds)`. Before DOP > 1 this was
    /// equivalently `max(cpu, io)`; now that CPU work is spread over
    /// workers, the *wall* clock — not the summed CPU — is what overlaps
    /// with the disk.
    pub fn exec_seconds(&self) -> f64 {
        self.wall_seconds.max(self.sim_io_seconds)
    }

    /// CPU utilization in percent of total core capacity (`dop` cores over
    /// the execution time), as Table 1 reports it. 100 % means every
    /// worker was busy for the whole query.
    pub fn cpu_percent(&self) -> f64 {
        let capacity = self.dop.max(1) as f64 * self.exec_seconds();
        if capacity == 0.0 {
            0.0
        } else {
            (100.0 * self.cpu_seconds / capacity).min(100.0)
        }
    }

    /// Effective I/O rate in MB/s over the execution time.
    pub fn io_mb_per_sec(&self) -> f64 {
        if self.exec_seconds() == 0.0 {
            0.0
        } else {
            self.io.bytes_read() as f64 / (1024.0 * 1024.0) / self.exec_seconds()
        }
    }

    /// Measured parallel speedup of the CPU portion: total CPU work done
    /// per second of wall clock (`cpu_seconds / wall_seconds`). ≈ 1 at
    /// DOP 1; approaches `dop` for a CPU-bound query that scales.
    pub fn measured_speedup(&self) -> f64 {
        if self.wall_seconds == 0.0 {
            1.0
        } else {
            self.cpu_seconds / self.wall_seconds
        }
    }
}

/// A query result: column names, rows, measurements.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Output column names.
    pub columns: Vec<String>,
    /// Output rows.
    pub rows: Vec<Vec<Value>>,
    /// Measurements.
    pub stats: QueryStats,
    /// `@var = expr` assignments produced by the select list.
    pub assignments: Vec<(String, Value)>,
}

impl QueryResult {
    /// The single value of a one-row, one-column result.
    pub fn scalar(&self) -> Result<&Value> {
        if self.rows.len() == 1 && self.rows[0].len() == 1 {
            Ok(&self.rows[0][0])
        } else {
            Err(EngineError::Type(format!(
                "expected a scalar result, got {}x{}",
                self.rows.len(),
                self.rows.first().map(|r| r.len()).unwrap_or(0)
            )))
        }
    }
}

/// Everything `exec_select` needs besides the statement.
///
/// SELECT is read-only, so the context holds the store and catalog by
/// shared reference — which is what lets many sessions run their SELECTs
/// concurrently under one [`std::sync::RwLock`] read guard. Mutating
/// statements use [`DmlCtx`] instead.
pub struct ExecCtx<'a> {
    /// The page store (shared: concurrent readers classify their I/O
    /// against per-scan snapshots and fold counters back through
    /// [`PageStore::finish_scan`]).
    pub store: &'a PageStore,
    /// Tables by lowercase name.
    pub tables: &'a HashMap<String, Table>,
    /// Scalar UDFs.
    pub udfs: &'a UdfRegistry,
    /// User-defined aggregates.
    pub udas: &'a UdaRegistry,
    /// Hosting model (mutated; per-session, not shared).
    pub hosting: &'a mut HostingModel,
    /// Session variables.
    pub vars: &'a HashMap<String, Value>,
    /// UDA state-maintenance mode.
    pub uda_mode: UdaMode,
    /// Row cap for projections without TOP.
    pub row_limit: usize,
    /// Maximum degree of parallelism for scans (≥ 1).
    pub dop: usize,
    /// Target rows per column batch for vectorized scans; 0 disables
    /// batch execution entirely (every query runs row-at-a-time).
    pub batch_rows: usize,
    /// This statement's compiled-plan slot in the engine's plan cache,
    /// when the statement came through it. `None` (ad-hoc execution)
    /// compiles fresh.
    pub cached: Option<&'a crate::plancache::SelectSlot>,
    /// The statement's lifecycle context: cancellation, deadline, memory
    /// budget. Stamped into the scan context so every worker's reader
    /// polls it.
    pub query: sqlarray_core::QueryCtx,
    /// Where the executor deposits the statement's measurements when it
    /// aborts (cancel/timeout/budget/panic): the counters of the work
    /// actually performed, which the happy path would have returned
    /// inside [`QueryResult`].
    pub partial: &'a mut Option<QueryStats>,
}

/// Everything UPDATE/DELETE need besides the statement.
///
/// DML mutates the store, the B-tree geometry, and the catalog entry, so
/// it borrows them exclusively — the caller holds the engine's write
/// guard, making the statement the single writer.
pub struct DmlCtx<'a> {
    /// The page store (exclusive: the apply phase writes pages and WAL).
    pub store: &'a mut PageStore,
    /// Tables by lowercase name (mutable so the changed B-tree geometry
    /// can be written back).
    pub tables: &'a mut HashMap<String, Table>,
    /// Scalar UDFs.
    pub udfs: &'a UdfRegistry,
    /// Hosting model (mutated; per-session, not shared).
    pub hosting: &'a mut HostingModel,
    /// Session variables.
    pub vars: &'a HashMap<String, Value>,
    /// Maximum degree of parallelism for the match-phase scan (≥ 1).
    pub dop: usize,
    /// The statement's lifecycle context. Polled throughout the parallel
    /// match phase; the serial apply phase deliberately ignores it — once
    /// the first page mutates, the statement runs to its commit, so an
    /// abort can never leave a half-applied update behind.
    pub query: sqlarray_core::QueryCtx,
    /// Measurements of an aborted match phase (see [`ExecCtx::partial`]).
    pub partial: &'a mut Option<QueryStats>,
}

/// Rewrites scalar-function calls that name a registered UDA into
/// [`Expr::UdaCall`] nodes.
fn resolve_udas(expr: &Expr, udas: &UdaRegistry) -> Expr {
    match expr {
        Expr::Func { name, args } if udas.contains(name) => Expr::UdaCall {
            name: name.clone(),
            args: args.iter().map(|a| resolve_udas(a, udas)).collect(),
        },
        Expr::Func { name, args } => Expr::Func {
            name: name.clone(),
            args: args.iter().map(|a| resolve_udas(a, udas)).collect(),
        },
        Expr::Neg(e) => Expr::Neg(Box::new(resolve_udas(e, udas))),
        Expr::Not(e) => Expr::Not(Box::new(resolve_udas(e, udas))),
        Expr::Bin { op, left, right } => Expr::Bin {
            op: *op,
            left: Box::new(resolve_udas(left, udas)),
            right: Box::new(resolve_udas(right, udas)),
        },
        other => other.clone(),
    }
}

/// A typed, byte-encoded GROUP BY key: one tag byte per value followed by
/// that value's canonical little-endian payload.
///
/// Replaces the old `format!("{v:?}|")` string keys — no per-row
/// formatting allocations in the hot scan loop, and no `Debug`-collision
/// ambiguity (the string `"1"` and the integer `1` now encode
/// differently; floats key by bit pattern, consistent with the
/// bit-identity contract).
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
struct GroupKey(Vec<u8>);

impl GroupKey {
    fn push(&mut self, v: &Value) -> Result<()> {
        let buf = &mut self.0;
        match v {
            Value::Null => buf.push(0),
            Value::I64(x) => {
                buf.push(1);
                buf.extend_from_slice(&x.to_le_bytes());
            }
            Value::I32(x) => {
                buf.push(2);
                buf.extend_from_slice(&x.to_le_bytes());
            }
            Value::F64(x) => {
                buf.push(3);
                buf.extend_from_slice(&x.to_bits().to_le_bytes());
            }
            Value::F32(x) => {
                buf.push(4);
                buf.extend_from_slice(&x.to_bits().to_le_bytes());
            }
            Value::Bytes(b) => {
                buf.push(5);
                buf.extend_from_slice(&(b.len() as u64).to_le_bytes());
                buf.extend_from_slice(b);
            }
            Value::Str(s) => {
                buf.push(6);
                buf.extend_from_slice(&(s.len() as u64).to_le_bytes());
                buf.extend_from_slice(s.as_bytes());
            }
            Value::Bool(b) => {
                buf.push(7);
                buf.push(*b as u8);
            }
            // Group-key expressions resolve LOBs before encoding; an
            // unresolved reference reaching this point is a bug upstream,
            // surfaced as the typed error rather than a silent key.
            Value::Lob { id, len } => {
                return Err(EngineError::UnresolvedLob { id: *id, len: *len })
            }
        }
        Ok(())
    }
}

/// One select-list accumulator — the partial state a single worker
/// maintains for one item of one group.
// The `Agg` variant carries an inline `ExactSum` register (~0.3 kB);
// boxing it would cost a pointer chase on every accumulated row for a
// structure that only exists once per (group × select item).
#[allow(clippy::large_enum_variant)]
enum ItemAcc {
    Agg {
        func: AggFunc,
        arg: Option<Expr>,
        count: u64,
        /// `SUM`/`AVG` accumulate exactly so that partials combine without
        /// rounding: any partitioning of the rows yields the same result.
        sum: ExactSum,
        min: Option<Value>,
        max: Option<Value>,
    },
    Uda {
        args: Vec<Expr>,
        state: Box<dyn UdaState>,
    },
    Plain {
        expr: Expr,
        value: Option<Value>,
    },
}

fn make_acc(item_expr: &Expr, udas: &UdaRegistry) -> Result<ItemAcc> {
    Ok(match item_expr {
        Expr::Agg { func, arg } => ItemAcc::Agg {
            func: *func,
            arg: arg.as_deref().cloned(),
            count: 0,
            sum: ExactSum::new(),
            min: None,
            max: None,
        },
        Expr::UdaCall { name, args } => ItemAcc::Uda {
            args: args.clone(),
            state: udas.create(name)?,
        },
        other => ItemAcc::Plain {
            expr: other.clone(),
            value: None,
        },
    })
}

impl ItemAcc {
    fn accumulate(
        &mut self,
        row: &RowCtx<'_>,
        env: &mut EvalEnv<'_>,
        uda_mode: UdaMode,
    ) -> Result<()> {
        match self {
            ItemAcc::Agg {
                func,
                arg,
                count,
                sum,
                min,
                max,
            } => {
                let v = match arg {
                    Some(e) => Some(eval(e, Some(row), env)?),
                    None => None,
                };
                if matches!(func, AggFunc::CountStar) {
                    *count += 1;
                    return Ok(());
                }
                // lint:allow(L005, reason = "the planner rejects argument-less aggregates other than COUNT(*) at bind time, and the CountStar arm returned above")
                let mut v = v.expect("non-COUNT(*) aggregates have an argument");
                if v.is_null() {
                    return Ok(());
                }
                // MIN/MAX order blobs bytewise and SUM/AVG need a numeric
                // view, so a lazy LOB argument behaves exactly like its
                // inline counterpart: materialize it. COUNT only needs
                // null-ness (a LOB reference is never NULL) — skip the
                // read there.
                if !matches!(func, AggFunc::Count) {
                    crate::pushdown::resolve_lob_in_place(&mut v, env)?;
                }
                *count += 1;
                match func {
                    AggFunc::Sum | AggFunc::Avg => sum.add(v.as_f64()?),
                    AggFunc::Min => {
                        let replace = match min {
                            None => true,
                            Some(cur) => crate::expr::compare(&v, cur)? == std::cmp::Ordering::Less,
                        };
                        if replace {
                            *min = Some(v);
                        }
                    }
                    AggFunc::Max => {
                        let replace = match max {
                            None => true,
                            Some(cur) => {
                                crate::expr::compare(&v, cur)? == std::cmp::Ordering::Greater
                            }
                        };
                        if replace {
                            *max = Some(v);
                        }
                    }
                    AggFunc::Count | AggFunc::CountStar => {}
                }
                Ok(())
            }
            ItemAcc::Uda { args, state, .. } => {
                let mut argv = Vec::with_capacity(args.len());
                for a in args.iter() {
                    let mut v = eval(a, Some(row), env)?;
                    // UDA accumulate bodies take bytes, not references:
                    // materialize lazy LOB arguments here.
                    crate::pushdown::resolve_lob_in_place(&mut v, env)?;
                    argv.push(v);
                }
                if uda_mode == UdaMode::StreamSerialized {
                    let buf = state.serialize_state();
                    state.load_state(&buf)?;
                }
                // Each UDA row hop is a managed call, like the CLR
                // aggregate interface.
                env.hosting.charge_call();
                state.accumulate(&argv)
            }
            ItemAcc::Plain { expr, value } => {
                if value.is_none() {
                    let mut v = eval(expr, Some(row), env)?;
                    // The value outlives the row scan: materialize lazy
                    // LOB references while the worker's reader is live.
                    crate::pushdown::resolve_lob_in_place(&mut v, env)?;
                    *value = Some(v);
                }
                Ok(())
            }
        }
    }

    /// Folds the partial state of a *later* partition into this one. Both
    /// sides were built by [`make_acc`] from the same select item, so the
    /// variants always line up.
    fn combine(&mut self, other: ItemAcc) -> Result<()> {
        match (self, other) {
            (
                ItemAcc::Agg {
                    count,
                    sum,
                    min,
                    max,
                    ..
                },
                ItemAcc::Agg {
                    count: oc,
                    sum: os,
                    min: omin,
                    max: omax,
                    ..
                },
            ) => {
                *count += oc;
                sum.merge(&os);
                if let Some(ov) = omin {
                    let replace = match &*min {
                        None => true,
                        Some(cur) => crate::expr::compare(&ov, cur)? == std::cmp::Ordering::Less,
                    };
                    if replace {
                        *min = Some(ov);
                    }
                }
                if let Some(ov) = omax {
                    let replace = match &*max {
                        None => true,
                        Some(cur) => crate::expr::compare(&ov, cur)? == std::cmp::Ordering::Greater,
                    };
                    if replace {
                        *max = Some(ov);
                    }
                }
                Ok(())
            }
            (ItemAcc::Uda { state, .. }, ItemAcc::Uda { state: os, .. }) => {
                state.merge_state(&os.serialize_state())
            }
            (ItemAcc::Plain { value, .. }, ItemAcc::Plain { value: ov, .. }) => {
                // The serial semantics keep the first row's value; partials
                // merge in partition (scan) order, so an earlier Some wins.
                if value.is_none() {
                    *value = ov;
                }
                Ok(())
            }
            _ => Err(EngineError::Type(
                "mismatched accumulator kinds in parallel combine".into(),
            )),
        }
    }

    fn finish(&mut self) -> Result<Value> {
        match self {
            ItemAcc::Agg {
                func,
                count,
                sum,
                min,
                max,
                ..
            } => Ok(match func {
                AggFunc::CountStar | AggFunc::Count => Value::I64(*count as i64),
                AggFunc::Sum => {
                    if *count == 0 {
                        Value::Null
                    } else {
                        Value::F64(sum.value())
                    }
                }
                AggFunc::Avg => {
                    if *count == 0 {
                        Value::Null
                    } else {
                        Value::F64(sum.value() / *count as f64)
                    }
                }
                AggFunc::Min => min.take().unwrap_or(Value::Null),
                AggFunc::Max => max.take().unwrap_or(Value::Null),
            }),
            ItemAcc::Uda { state, .. } => state.terminate(),
            ItemAcc::Plain { value, .. } => Ok(value.take().unwrap_or(Value::Null)),
        }
    }
}

fn item_name(item: &SelectItem, index: usize) -> String {
    if let Some(a) = &item.alias {
        return a.clone();
    }
    match &item.expr {
        Expr::Col(name) => name.clone(),
        Expr::Agg { func, .. } => format!("{func:?}").to_ascii_lowercase(),
        _ => format!("col{index}"),
    }
}

/// What one scan worker hands back to the coordinator. Counters are
/// unconditional (the worker's reads are already in the live pool); a
/// query-level failure rides in `out`.
struct WorkerScan {
    rows_scanned: u64,
    batches: u64,
    scan_io: ScanIo,
    calls: u64,
    charged_ns: u64,
    busy_seconds: f64,
    out: Result<WorkerOut>,
}

enum WorkerOut {
    /// Projection rows, in key order, capped at the limit.
    Rows(Vec<Vec<Value>>),
    /// Aggregate groups in first-appearance order, with their encoded
    /// group keys.
    Groups {
        keys: Vec<GroupKey>,
        accs: Vec<Vec<ItemAcc>>,
    },
}

/// Immutable scan context shared by all workers of one query.
struct ScanJob<'a> {
    table: &'a Table,
    schema: &'a Schema,
    store: &'a PageStore,
    scan: &'a ScanCtx,
    items: &'a [SelectItem],
    where_clause: Option<&'a Expr>,
    group_by: &'a [Expr],
    has_aggregate: bool,
    limit: usize,
    udfs: &'a UdfRegistry,
    udas: &'a UdaRegistry,
    vars: &'a HashMap<String, Value>,
    uda_mode: UdaMode,
    /// The compiled vectorized plan, when every expression compiled
    /// ([`crate::batch::plan_select`]); `None` runs the row-at-a-time
    /// interpreter. This is the executor side of the fallback seam.
    batch_plan: Option<&'a crate::batch::BatchPlan>,
    /// Target rows per batch (≥ 1 whenever `batch_plan` is `Some`).
    batch_rows: usize,
}

/// Renders a caught panic payload for [`EngineError::WorkerPanicked`].
/// `panic!` with a literal carries `&str`, with a format string carries
/// `String`; anything else (a `panic_any` payload) gets a fixed label.
fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked with a non-string payload".to_string()
    }
}

/// Runs one partition to completion on the current thread. Workers share
/// nothing mutable: each owns its reader, hosting fork, and accumulators.
/// The body runs under [`sqlarray_core::parallel::with_serial_kernels`]:
/// a worker is already one lane of the query's fan-out, so any chunked
/// array kernels its expressions call — elementwise ops, `fftn`, and the
/// dense linalg kernels (`gemm`, SVD, PCA) alike — must not fan out
/// again.
fn scan_worker(
    job: &ScanJob<'_>,
    part: &ScanPartition,
    partition_index: u32,
    hosting: HostingModel,
) -> WorkerScan {
    sqlarray_core::parallel::with_serial_kernels(|| {
        scan_worker_inner(job, part, partition_index, hosting)
    })
}

/// Always returns a [`WorkerScan`], even when the partition body errors:
/// the worker's reads already landed in the live buffer pool, so its
/// counters must be handed back unconditionally — otherwise a failed
/// query would leave the pool warmer than the session's [`IoStats`]
/// admit. The query-level error rides in [`WorkerScan::out`].
fn scan_worker_inner(
    job: &ScanJob<'_>,
    part: &ScanPartition,
    partition_index: u32,
    mut hosting: HostingModel,
) -> WorkerScan {
    let t0 = Instant::now();
    let mut reader = job.store.reader(job.scan, partition_index);
    let mut rows_scanned = 0u64;
    let mut batches = 0u64;
    // The panic boundary wraps only the body, not the reader: a worker
    // that panics mid-row still folds its I/O counters back through
    // `reader.finish()` below, so the pool and the session's accounting
    // stay consistent — and the unwind never crosses a lock guard (the
    // coordinator holds them), so no lock is poisoned by a buggy UDF.
    let out = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        scan_worker_body(
            job,
            part,
            &mut reader,
            &mut hosting,
            &mut rows_scanned,
            &mut batches,
        )
    })) {
        Ok(out) => out,
        Err(p) => Err(EngineError::WorkerPanicked(panic_message(p.as_ref()))),
    };
    WorkerScan {
        rows_scanned,
        batches,
        scan_io: reader.finish(),
        calls: hosting.calls(),
        charged_ns: hosting.charged_ns(),
        busy_seconds: t0.elapsed().as_secs_f64(),
        out,
    }
}

fn scan_worker_body(
    job: &ScanJob<'_>,
    part: &ScanPartition,
    reader: &mut sqlarray_storage::PartitionReader<'_>,
    hosting: &mut HostingModel,
    rows_scanned: &mut u64,
    batches: &mut u64,
) -> Result<WorkerOut> {
    if let Some(plan) = job.batch_plan {
        return scan_worker_body_batch(job, plan, part, reader, hosting, rows_scanned, batches);
    }
    let mut inner_err: Option<EngineError> = None;
    // Owned handle on the statement's lifecycle for the charge sites
    // inside the row closures, where `reader` is re-borrowed into the
    // evaluation environment.
    let query = reader.query().clone();

    let out = if job.has_aggregate {
        let mut group_index: HashMap<GroupKey, usize> = HashMap::new();
        let mut keys: Vec<GroupKey> = Vec::new();
        let mut groups: Vec<Vec<ItemAcc>> = Vec::new();
        if job.group_by.is_empty() {
            let accs = job
                .items
                .iter()
                .map(|it| make_acc(&it.expr, job.udas))
                .collect::<Result<Vec<_>>>()?;
            groups.push(accs);
            keys.push(GroupKey::default());
            group_index.insert(GroupKey::default(), 0);
        }
        {
            let hosting = &mut *hosting;
            // Key-encoding scratch, reused across rows so the hot grouped
            // loop re-fills one buffer instead of growing a fresh Vec per
            // row; it is cloned only when a new group is inserted.
            let mut group_key = GroupKey::default();
            job.table
                .scan_partition(reader, part, |reader, key, bytes| {
                    reader.check_interrupt()?;
                    *rows_scanned += 1;
                    let row = RowCtx {
                        schema: job.schema,
                        bytes,
                        key,
                    };
                    let mut env = EvalEnv {
                        udfs: job.udfs,
                        hosting,
                        vars: job.vars,
                        lobs: Some(reader),
                    };
                    let group_key = &mut group_key;
                    let step = (|| -> Result<()> {
                        if let Some(w) = job.where_clause {
                            if !eval(w, Some(&row), &mut env)?.is_true() {
                                return Ok(());
                            }
                        }
                        let gidx = if job.group_by.is_empty() {
                            0
                        } else {
                            group_key.0.clear();
                            for g in job.group_by.iter() {
                                let mut v = eval(g, Some(&row), &mut env)?;
                                // Grouping by a LOB column groups by its
                                // bytes, like any other binary value.
                                crate::pushdown::resolve_lob_in_place(&mut v, &mut env)?;
                                group_key.push(&v)?;
                            }
                            match group_index.get(group_key) {
                                Some(&i) => i,
                                None => {
                                    // Aggregation state is the memory a
                                    // grouped scan actually accumulates:
                                    // charge each new group's key (stored
                                    // twice — order list and index) plus
                                    // its accumulator row.
                                    query.charge(
                                        (2 * group_key.0.len()
                                            + job.items.len() * std::mem::size_of::<ItemAcc>())
                                            as u64,
                                    )?;
                                    let accs = job
                                        .items
                                        .iter()
                                        .map(|it| make_acc(&it.expr, job.udas))
                                        .collect::<Result<Vec<_>>>()?;
                                    groups.push(accs);
                                    let i = groups.len() - 1;
                                    keys.push(group_key.clone());
                                    group_index.insert(group_key.clone(), i);
                                    i
                                }
                            }
                        };
                        for acc in groups[gidx].iter_mut() {
                            acc.accumulate(&row, &mut env, job.uda_mode)?;
                        }
                        Ok(())
                    })();
                    match step {
                        Ok(()) => Ok(true),
                        Err(e) => {
                            inner_err = Some(e);
                            Ok(false)
                        }
                    }
                })?;
        }
        if let Some(e) = inner_err {
            return Err(e);
        }
        WorkerOut::Groups { keys, accs: groups }
    } else {
        let mut rows: Vec<Vec<Value>> = Vec::new();
        {
            let hosting = &mut *hosting;
            job.table
                .scan_partition(reader, part, |reader, key, bytes| {
                    reader.check_interrupt()?;
                    *rows_scanned += 1;
                    if rows.len() >= job.limit {
                        return Ok(false);
                    }
                    let row = RowCtx {
                        schema: job.schema,
                        bytes,
                        key,
                    };
                    let mut env = EvalEnv {
                        udfs: job.udfs,
                        hosting,
                        vars: job.vars,
                        lobs: Some(reader),
                    };
                    let step = (|| -> Result<()> {
                        if let Some(w) = job.where_clause {
                            if !eval(w, Some(&row), &mut env)?.is_true() {
                                return Ok(());
                            }
                        }
                        let mut out = Vec::with_capacity(job.items.len());
                        for it in job.items.iter() {
                            let mut v = eval(&it.expr, Some(&row), &mut env)?;
                            // The projection boundary is blob-aware: a bare
                            // `SELECT v` of a LOB column returns the array
                            // bytes (one ranged read), not a placeholder.
                            crate::pushdown::resolve_lob_in_place(&mut v, &mut env)?;
                            out.push(v);
                        }
                        rows.push(out);
                        Ok(())
                    })();
                    match step {
                        Ok(()) => Ok(rows.len() < job.limit),
                        Err(e) => {
                            inner_err = Some(e);
                            Ok(false)
                        }
                    }
                })?;
        }
        if let Some(e) = inner_err {
            return Err(e);
        }
        WorkerOut::Rows(rows)
    };
    Ok(out)
}

/// The vectorized worker body: decode a leaf range into column batches,
/// filter into a selection vector, then feed projections or aggregate
/// accumulators batch-at-a-time. Mirrors [`scan_worker_body`] result for
/// result — the differential suite asserts bit-identity — while touching
/// the allocator once per batch instead of once per row.
fn scan_worker_body_batch(
    job: &ScanJob<'_>,
    plan: &crate::batch::BatchPlan,
    part: &ScanPartition,
    reader: &mut sqlarray_storage::PartitionReader<'_>,
    hosting: &mut HostingModel,
    rows_scanned: &mut u64,
    batches: &mut u64,
) -> Result<WorkerOut> {
    let mut inner_err: Option<EngineError> = None;
    let mut batch = sqlarray_storage::row::new_batch(job.schema, &plan.cols)?;
    let mut sel: Vec<u32> = Vec::new();
    let mut scratch: Vec<u32> = Vec::new();
    let query = reader.query().clone();
    // Batch lanes are reused across flushes, so the budget charge is the
    // high-water mark of the decoded batch, not its size times flushes:
    // only growth beyond what this worker already charged costs budget.
    let mut charged_batch_bytes = 0u64;
    let mut charge_batch = |q: &sqlarray_core::QueryCtx,
                            b: &sqlarray_core::batch::Batch|
     -> std::result::Result<(), sqlarray_core::Interrupt> {
        let size = b.byte_size();
        if size > charged_batch_bytes {
            q.charge(size - charged_batch_bytes)?;
            charged_batch_bytes = size;
        }
        Ok(())
    };

    let out = if job.has_aggregate {
        // Compiled aggregate plans are always the single global group
        // (GROUP BY falls back), so the worker holds one accumulator row.
        let mut accs = job
            .items
            .iter()
            .map(|it| make_acc(&it.expr, job.udas))
            .collect::<Result<Vec<_>>>()?;
        job.table.scan_partition_batches(
            reader,
            part,
            sqlarray_storage::BatchScanOpts {
                cols: &plan.cols,
                rows_cap: job.batch_rows,
                leaf_aligned: plan.leaf_aligned,
            },
            &mut batch,
            |reader, b| {
                reader.check_interrupt()?;
                *rows_scanned += b.len() as u64;
                *batches += 1;
                let step = (|| -> Result<()> {
                    charge_batch(&query, b)?;
                    sqlarray_core::batch::identity_selection(&mut sel, b.len());
                    if let Some(f) = &plan.filter {
                        crate::batch::apply_filter(f, b, &mut sel, &mut scratch)?;
                    }
                    if sel.is_empty() {
                        return Ok(());
                    }
                    for (acc, item) in accs.iter_mut().zip(plan.items.iter()) {
                        feed_acc_batch(acc, item, b, &sel)?;
                    }
                    Ok(())
                })();
                match step {
                    Ok(()) => Ok(true),
                    Err(e) => {
                        inner_err = Some(e);
                        Ok(false)
                    }
                }
            },
        )?;
        if let Some(e) = inner_err {
            return Err(e);
        }
        WorkerOut::Groups {
            keys: vec![GroupKey::default()],
            accs: vec![accs],
        }
    } else {
        let mut rows: Vec<Vec<Value>> = Vec::new();
        // A projection never needs more than `limit` output rows per
        // worker, so a small `TOP` shrinks the batch: the scan stops
        // within one cap of the limit instead of decoding a full batch.
        let rows_cap = job.batch_rows.min(job.limit.max(1));
        {
            let hosting = &mut *hosting;
            job.table.scan_partition_batches(
                reader,
                part,
                sqlarray_storage::BatchScanOpts {
                    cols: &plan.cols,
                    rows_cap,
                    leaf_aligned: plan.leaf_aligned,
                },
                &mut batch,
                |reader, b| {
                    reader.check_interrupt()?;
                    *rows_scanned += b.len() as u64;
                    *batches += 1;
                    if rows.len() >= job.limit {
                        return Ok(false);
                    }
                    let mut env = EvalEnv {
                        udfs: job.udfs,
                        hosting,
                        vars: job.vars,
                        lobs: Some(reader),
                    };
                    let step = (|| -> Result<()> {
                        charge_batch(&query, b)?;
                        sqlarray_core::batch::identity_selection(&mut sel, b.len());
                        if let Some(f) = &plan.filter {
                            crate::batch::apply_filter(f, b, &mut sel, &mut scratch)?;
                        }
                        if sel.is_empty() {
                            return Ok(());
                        }
                        batch_project(plan, b, &sel, job.limit, &mut rows, &mut env)
                    })();
                    match step {
                        Ok(()) => Ok(rows.len() < job.limit),
                        Err(e) => {
                            inner_err = Some(e);
                            Ok(false)
                        }
                    }
                },
            )?;
        }
        if let Some(e) = inner_err {
            return Err(e);
        }
        WorkerOut::Rows(rows)
    };
    Ok(out)
}

/// Feeds one batch of selected rows into one aggregate accumulator —
/// the batch counterpart of [`ItemAcc::accumulate`]. Stored columns are
/// never NULL, so the row path's null-skip never fires and whole-batch
/// counts are exact.
fn feed_acc_batch(
    acc: &mut ItemAcc,
    item: &crate::batch::BItem,
    b: &sqlarray_core::batch::Batch,
    sel: &[u32],
) -> Result<()> {
    use crate::batch::{BAggArg, BItem};
    match (acc, item) {
        (
            ItemAcc::Agg {
                count,
                sum,
                min,
                max,
                ..
            },
            BItem::Agg { func, arg },
        ) => {
            match (func, arg) {
                (AggFunc::CountStar, _) => *count += sel.len() as u64,
                // COUNT over a blob column counts non-null rows without
                // reading the blobs, like the row path.
                (AggFunc::Count, Some(BAggArg::Blob(pos))) => {
                    assert!(matches!(
                        b.cols[*pos],
                        sqlarray_core::batch::ColVec::Blob { .. }
                    ));
                    *count += sel.len() as u64;
                }
                (AggFunc::Count, Some(BAggArg::Scalar(e))) => {
                    // Evaluated for error parity with the row path (a
                    // zero divisor in the argument must still fail).
                    let v = crate::batch::eval(e, b, sel)?;
                    *count += v.len() as u64;
                }
                (AggFunc::Sum | AggFunc::Avg, Some(BAggArg::Scalar(e))) => {
                    let vals = crate::batch::eval(e, b, sel)?;
                    *count += vals.len() as u64;
                    // The exact accumulator keeps any summation order —
                    // and thus any batch/partition split — bit-identical.
                    sqlarray_core::batch::sum_f64(&vals.into_f64(), sum);
                }
                (AggFunc::Min, Some(BAggArg::Scalar(e))) => {
                    let vals = crate::batch::eval(e, b, sel)?;
                    *count += vals.len() as u64;
                    for i in 0..vals.len() {
                        let cand = vals.value_at(i);
                        let replace = match &*min {
                            None => true,
                            Some(cur) => {
                                crate::expr::compare(&cand, cur)? == std::cmp::Ordering::Less
                            }
                        };
                        if replace {
                            *min = Some(cand);
                        }
                    }
                }
                (AggFunc::Max, Some(BAggArg::Scalar(e))) => {
                    let vals = crate::batch::eval(e, b, sel)?;
                    *count += vals.len() as u64;
                    for i in 0..vals.len() {
                        let cand = vals.value_at(i);
                        let replace = match &*max {
                            None => true,
                            Some(cur) => {
                                crate::expr::compare(&cand, cur)? == std::cmp::Ordering::Greater
                            }
                        };
                        if replace {
                            *max = Some(cand);
                        }
                    }
                }
                _ => {
                    return Err(EngineError::Type(
                        "batch plan error: aggregate shape mismatch".into(),
                    ))
                }
            }
            Ok(())
        }
        (ItemAcc::Plain { value, .. }, BItem::Plain(e)) => {
            // The row path evaluates a plain item at the first passing row
            // and keeps that value; compiled plain items are scalar, so no
            // LOB materialization is needed.
            if value.is_none() && !sel.is_empty() {
                let first = [sel[0]];
                let v = crate::batch::eval(e, b, &first)?;
                *value = Some(v.value_at(0));
            }
            Ok(())
        }
        _ => Err(EngineError::Type(
            "batch plan error: accumulator shape mismatch".into(),
        )),
    }
}

/// Materializes the selected rows of one batch as projection output.
/// Scalar items evaluate column-at-a-time; blob items resolve per row in
/// row-major order, so LOB page reads interleave exactly like the
/// row-at-a-time scan (the plan is leaf-aligned whenever blobs appear).
fn batch_project(
    plan: &crate::batch::BatchPlan,
    b: &sqlarray_core::batch::Batch,
    sel: &[u32],
    limit: usize,
    rows: &mut Vec<Vec<Value>>,
    env: &mut EvalEnv<'_>,
) -> Result<()> {
    use crate::batch::{BItem, BVal};
    enum ProjCol {
        Vals(BVal),
        Blob(usize),
    }
    let mut cols: Vec<ProjCol> = Vec::with_capacity(plan.items.len());
    for item in plan.items.iter() {
        cols.push(match item {
            BItem::Proj(e) => ProjCol::Vals(crate::batch::eval(e, b, sel)?),
            BItem::ProjBlob(pos) => ProjCol::Blob(*pos),
            _ => {
                return Err(EngineError::Type(
                    "batch plan error: aggregate item in a projection".into(),
                ))
            }
        });
    }
    for (r, &row_idx) in sel.iter().enumerate() {
        if rows.len() >= limit {
            break;
        }
        let mut out = Vec::with_capacity(cols.len());
        for col in cols.iter() {
            match col {
                ProjCol::Vals(v) => out.push(v.value_at(r)),
                ProjCol::Blob(pos) => {
                    let sqlarray_core::batch::ColVec::Blob { bytes, lob } = &b.cols[*pos] else {
                        return Err(EngineError::Type(
                            "batch plan error: blob projection over a scalar column".into(),
                        ));
                    };
                    let i = row_idx as usize;
                    let mut v = match lob[i] {
                        Some((id, len)) => Value::Lob { id, len },
                        None => Value::Bytes(bytes.get(i).to_vec()),
                    };
                    // The projection boundary is blob-aware, same as the
                    // row path: stored references come back as bytes.
                    crate::pushdown::resolve_lob_in_place(&mut v, env)?;
                    out.push(v);
                }
            }
        }
        rows.push(out);
    }
    Ok(())
}

/// Executes one SELECT.
pub fn exec_select(ctx: &mut ExecCtx<'_>, stmt: &SelectStmt) -> Result<QueryResult> {
    let io_before = ctx.store.stats();
    ctx.hosting.reset();
    let t0 = Instant::now();

    let items: Vec<SelectItem> = stmt
        .items
        .iter()
        .map(|it| SelectItem {
            expr: resolve_udas(&it.expr, ctx.udas),
            alias: it.alias.clone(),
            assign: it.assign.clone(),
        })
        .collect();
    let columns: Vec<String> = items
        .iter()
        .enumerate()
        .map(|(i, it)| item_name(it, i))
        .collect();

    let has_aggregate =
        items.iter().any(|it| it.expr.contains_aggregate()) || !stmt.group_by.is_empty();

    let mut rows_scanned = 0u64;
    let mut batches_total = 0u64;
    let mut rows: Vec<Vec<Value>> = Vec::new();
    let mut cpu_seconds = 0.0f64;
    let mut dop_used = 1usize;

    match &stmt.from {
        None => {
            // The store is shared here, so LOB-typed variables resolve
            // through a single-partition scan reader — the same live-pool
            // handle scan workers use — and its I/O folds back like any
            // one-worker scan. Counters fold even when evaluation errors,
            // so the pool and the stats stay consistent with each other.
            let scan = ctx.store.begin_scan_for(ctx.query.clone());
            let mut r = ctx.store.reader(&scan, 0);
            let evaluated = (|| -> Result<Vec<Value>> {
                let mut env = EvalEnv {
                    udfs: ctx.udfs,
                    hosting: ctx.hosting,
                    vars: ctx.vars,
                    lobs: Some(&mut r),
                };
                let mut row = Vec::with_capacity(items.len());
                for it in &items {
                    row.push(eval(&it.expr, None, &mut env)?);
                }
                Ok(row)
            })();
            let io = r.finish();
            ctx.store.finish_scan([&io]);
            rows.push(evaluated?);
        }
        Some(table_name) => {
            let table = ctx
                .tables
                .get(&table_name.to_ascii_lowercase())
                .cloned()
                .ok_or_else(|| EngineError::Unknown(format!("table `{table_name}`")))?;
            let schema = table.schema().clone();
            let parts = table.partition(ctx.store, ctx.dop.max(1))?;
            let scan = ctx.store.begin_scan_for(ctx.query.clone());
            let limit = stmt.top.unwrap_or(ctx.row_limit);
            // Vectorized by default: scans run batch-at-a-time whenever
            // the plan compiles; `batch_rows == 0` (or a plan that does
            // not compile) runs the row-at-a-time interpreter. When the
            // statement came through the plan cache, its slot answers for
            // var-free statements without recompiling.
            let batch_plan: Option<std::sync::Arc<crate::batch::BatchPlan>> = if ctx.batch_rows > 0
            {
                let compile = || {
                    crate::batch::plan_select(
                        &schema,
                        &items,
                        stmt.where_clause.as_ref(),
                        &stmt.group_by,
                        has_aggregate,
                        ctx.vars,
                    )
                };
                match ctx.cached {
                    Some(slot) => slot.plan_for(&schema, compile),
                    None => compile().map(std::sync::Arc::new),
                }
            } else {
                None
            };
            let job = ScanJob {
                table: &table,
                schema: &schema,
                store: ctx.store,
                scan: &scan,
                items: &items,
                where_clause: stmt.where_clause.as_ref(),
                group_by: &stmt.group_by,
                has_aggregate,
                limit,
                udfs: ctx.udfs,
                udas: ctx.udas,
                vars: ctx.vars,
                uda_mode: ctx.uda_mode,
                batch_plan: batch_plan.as_deref(),
                batch_rows: ctx.batch_rows,
            };

            // Fan the partitions out through the workspace helper: one
            // worker per partition (singleton ranges), and with a single
            // partition the helper runs inline — the serial plan is
            // literally the parallel plan at width 1, so both sides of
            // the determinism guarantee share this code.
            let job_ref = &job;
            let hosting_ref: &HostingModel = ctx.hosting;
            let parts_ref = &parts;
            let worker_results: Vec<WorkerScan> =
                scoped_map_ranges(parts.len(), parts.len(), |r| {
                    r.map(|pi| scan_worker(job_ref, &parts_ref[pi], pi as u32, hosting_ref.fork()))
                        .collect::<Vec<WorkerScan>>()
                })
                .into_iter()
                .flatten()
                .collect();
            dop_used = parts.len();
            drop(scan);

            // Fold every worker's counters in — including those of a
            // worker whose query body errored — so the session's I/O,
            // pool, and hosting accounting stay consistent with each
            // other: the reads a worker performed are already in the live
            // pool, so they must be in the counters too.
            let mut scan_ios: Vec<ScanIo> = Vec::new();
            let mut max_busy = 0.0f64;
            let mut first_err: Option<EngineError> = None;
            let mut outs: Vec<WorkerOut> = Vec::new();
            for w in worker_results {
                rows_scanned += w.rows_scanned;
                batches_total += w.batches;
                scan_ios.push(w.scan_io);
                ctx.hosting.absorb(w.calls, w.charged_ns);
                // lint:allow(L002, reason = "wall-clock diagnostics, not query results; timing is inherently non-deterministic and outside the bit-identity contract")
                cpu_seconds += w.busy_seconds;
                max_busy = max_busy.max(w.busy_seconds);
                match w.out {
                    Ok(out) => outs.push(out),
                    Err(e) => {
                        if first_err.is_none() {
                            first_err = Some(e);
                        }
                    }
                }
            }
            // The live pool already saw every worker touch; this merges
            // the counters (with cross-partition classification stitching)
            // and advances the simulated head to the last physical read.
            ctx.store.finish_scan(scan_ios.iter());
            if let Some(e) = first_err {
                // Every counter above already folded (the pool saw the
                // reads), so an aborted statement still reports what it
                // did before the abort — the ISSUE's "partial stats"
                // contract for cancel/timeout/budget/panic.
                let wall_seconds = t0.elapsed().as_secs_f64();
                let io = ctx.store.stats().since(&io_before);
                let sim_io_seconds = ctx.store.profile().io_seconds(&io);
                *ctx.partial = Some(QueryStats {
                    rows_scanned,
                    batches: batches_total,
                    batch_fill: if batches_total > 0 {
                        rows_scanned as f64 / batches_total as f64
                    } else {
                        0.0
                    },
                    udf_calls: ctx.hosting.calls(),
                    udf_overhead_ns: ctx.hosting.charged_ns(),
                    cpu_seconds,
                    wall_seconds,
                    dop: dop_used,
                    io,
                    sim_io_seconds,
                    rows_affected: 0,
                });
                return Err(e);
            }

            // Merge partials in partition (key) order.
            let mut group_index: HashMap<GroupKey, usize> = HashMap::new();
            let mut groups: Vec<Vec<ItemAcc>> = Vec::new();
            for out in outs {
                match out {
                    WorkerOut::Rows(mut r) => {
                        let room = limit.saturating_sub(rows.len());
                        r.truncate(room);
                        rows.extend(r);
                    }
                    WorkerOut::Groups { keys, accs } => {
                        for (key, worker_accs) in keys.into_iter().zip(accs) {
                            match group_index.get(&key) {
                                Some(&i) => {
                                    for (mine, theirs) in groups[i].iter_mut().zip(worker_accs) {
                                        mine.combine(theirs)?;
                                    }
                                }
                                None => {
                                    groups.push(worker_accs);
                                    group_index.insert(key, groups.len() - 1);
                                }
                            }
                        }
                    }
                }
            }
            if has_aggregate {
                for mut accs in groups {
                    let mut out = Vec::with_capacity(accs.len());
                    for acc in accs.iter_mut() {
                        out.push(acc.finish()?);
                    }
                    rows.push(out);
                }
            }
            // Coordinator time not overlapped with the longest worker
            // (planning, fan-out, merge) is serial CPU work too.
            // lint:allow(L002, reason = "wall-clock diagnostics, not query results; timing is inherently non-deterministic and outside the bit-identity contract")
            cpu_seconds += (t0.elapsed().as_secs_f64() - max_busy).max(0.0);
        }
    }

    let wall_seconds = t0.elapsed().as_secs_f64();
    if stmt.from.is_none() {
        cpu_seconds = wall_seconds;
    }
    let io = ctx.store.stats().since(&io_before);
    let sim_io_seconds = ctx.store.profile().io_seconds(&io);

    let assignments: Vec<(String, Value)> = items
        .iter()
        .enumerate()
        .filter_map(|(i, it)| {
            it.assign.as_ref().map(|name| {
                let v = rows
                    .last()
                    .and_then(|r| r.get(i))
                    .cloned()
                    .unwrap_or(Value::Null);
                (name.clone(), v)
            })
        })
        .collect();

    Ok(QueryResult {
        columns,
        rows,
        stats: QueryStats {
            rows_scanned,
            batches: batches_total,
            batch_fill: if batches_total > 0 {
                rows_scanned as f64 / batches_total as f64
            } else {
                0.0
            },
            udf_calls: ctx.hosting.calls(),
            udf_overhead_ns: ctx.hosting.charged_ns(),
            cpu_seconds,
            wall_seconds,
            dop: dop_used,
            io,
            sim_io_seconds,
            rows_affected: 0,
        },
        assignments,
    })
}

// ---------------------------------------------------------------------------
// UPDATE / DELETE
// ---------------------------------------------------------------------------
//
// DML runs in two phases so that the WAL byte stream is identical at every
// DOP:
//
// 1. **Match** (parallel, read-only): the same partitioned scan SELECT uses
//    evaluates the WHERE clause — strictly boolean for DML — and, for
//    UPDATE, every SET expression against each matching row. Workers hand
//    back `(clustered key, evaluated values)` in partition order, which is
//    key order.
// 2. **Apply** (serial, mutating): rows change through [`Table::update`] /
//    [`Table::delete`] in key order. Scans never write log records, so all
//    WAL appends happen here, in a DOP-independent order.
//
// `SET v = Schema.ArrayUpdate(v, @offset, @replacement)` on a stored LOB
// column is the paper's partial-update path: the apply phase patches only
// the chunk pages the replacement intersects ([`Table::update_col_blob_range`])
// instead of rewriting the whole chain. Anything the in-place conditions
// don't cover falls back to the registered `ArrayUpdate` UDF plus a
// full-row update, so both paths agree on semantics and on errors.

/// One planned SET item: target column index plus how to produce its value.
struct SetItem {
    col: usize,
    plan: SetPlan,
}

enum SetPlan {
    /// Evaluate the expression per matched row during the match phase.
    Eval(Expr),
    /// `SET col = Schema.ArrayUpdate(col, offset, replacement)` with the
    /// target column as its own first argument: only `offset` and
    /// `replacement` are evaluated in the match phase; the stored array is
    /// never materialized unless the in-place patch conditions fail.
    ArrayPatch {
        name: String,
        elem: ElementType,
        class: StorageClass,
        offset: Expr,
        replacement: Expr,
    },
}

/// One SET item's evaluated value for one matched row.
enum SetValue {
    Plain(Value),
    Patch { offset: Value, replacement: Value },
}

/// What one DML match worker hands back. Counters are unconditional for
/// the same reason as [`WorkerScan`].
struct DmlWorker {
    rows_scanned: u64,
    scan_io: ScanIo,
    calls: u64,
    charged_ns: u64,
    busy_seconds: f64,
    out: Result<Vec<(i64, Vec<SetValue>)>>,
}

/// Immutable match-phase context shared by all workers of one statement.
struct DmlJob<'a> {
    table: &'a Table,
    schema: &'a Schema,
    store: &'a PageStore,
    scan: &'a ScanCtx,
    where_clause: Option<&'a Expr>,
    sets: &'a [SetItem],
    kind: &'static str,
    udfs: &'a UdfRegistry,
    vars: &'a HashMap<String, Value>,
}

fn value_kind(v: &Value) -> &'static str {
    match v {
        Value::Null => "NULL",
        Value::I64(_) => "BIGINT",
        Value::I32(_) => "INT",
        Value::F64(_) => "FLOAT",
        Value::F32(_) => "REAL",
        Value::Bytes(_) => "VARBINARY",
        Value::Str(_) => "VARCHAR",
        Value::Bool(_) => "BIT",
        Value::Lob { .. } => "VARBINARY(MAX)",
    }
}

/// DML predicates are strict: unlike SELECT's truthiness coercion, a
/// WHERE clause that does not evaluate to a boolean is a typed error —
/// silently coercing would make `WHERE id` delete every non-zero row.
fn strict_bool(v: Value, kind: &str) -> Result<bool> {
    match v {
        Value::Bool(b) => Ok(b),
        other => Err(EngineError::Type(format!(
            "{kind} WHERE clause must evaluate to a boolean, got {}",
            value_kind(&other)
        ))),
    }
}

/// Converts an evaluated SET value into the storage representation the
/// column holds.
fn to_row_value(col: &Column, v: Value) -> Result<RowValue> {
    Ok(match col.ctype {
        ColType::I64 => RowValue::I64(v.as_i64()?),
        ColType::I32 => {
            let x = v.as_i64()?;
            RowValue::I32(i32::try_from(x).map_err(|_| {
                EngineError::Type(format!(
                    "value {x} out of range for INT column `{}`",
                    col.name
                ))
            })?)
        }
        ColType::F64 => RowValue::F64(v.as_f64()?),
        ColType::F32 => RowValue::F32(v.as_f64()? as f32),
        ColType::Blob => match v {
            Value::Bytes(b) => RowValue::Bytes(b),
            // A lazy reference that survived the match phase aliases the
            // row's own stored chain (`SET v = v`): keep the reference so
            // `Table::update` keeps the chain.
            Value::Lob { id, len } => RowValue::LobRef(id, len),
            other => {
                return Err(EngineError::Type(format!(
                    "cannot store {} into binary column `{}`",
                    value_kind(&other),
                    col.name
                )))
            }
        },
    })
}

/// Recognizes the in-place candidate shape of a SET expression. Anything
/// else — including an `ArrayUpdate` whose first argument is *not* the
/// target column itself — evaluates as an ordinary expression.
fn plan_set_item(col_name: &str, expr: &Expr) -> SetPlan {
    if let Expr::Func { name, args } = expr {
        if args.len() == 3 {
            if let Some((schema_part, func)) = name.rsplit_once('.') {
                if func.eq_ignore_ascii_case("ArrayUpdate") {
                    if let Some((elem, class)) = crate::arraybind::parse_schema(schema_part) {
                        if let Expr::Col(c) = &args[0] {
                            if c.eq_ignore_ascii_case(col_name) {
                                return SetPlan::ArrayPatch {
                                    name: name.clone(),
                                    elem,
                                    class,
                                    offset: args[1].clone(),
                                    replacement: args[2].clone(),
                                };
                            }
                        }
                    }
                }
            }
        }
    }
    SetPlan::Eval(expr.clone())
}

fn dml_worker(
    job: &DmlJob<'_>,
    part: &ScanPartition,
    partition_index: u32,
    hosting: HostingModel,
) -> DmlWorker {
    sqlarray_core::parallel::with_serial_kernels(|| {
        dml_worker_inner(job, part, partition_index, hosting)
    })
}

fn dml_worker_inner(
    job: &DmlJob<'_>,
    part: &ScanPartition,
    partition_index: u32,
    mut hosting: HostingModel,
) -> DmlWorker {
    let t0 = Instant::now();
    let mut reader = job.store.reader(job.scan, partition_index);
    let mut rows_scanned = 0u64;
    // Same panic boundary as `scan_worker_inner`: the match phase is
    // read-only, so a contained panic aborts the statement before any
    // page or WAL byte changes.
    let out = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        dml_worker_body(job, part, &mut reader, &mut hosting, &mut rows_scanned)
    })) {
        Ok(out) => out,
        Err(p) => Err(EngineError::WorkerPanicked(panic_message(p.as_ref()))),
    };
    DmlWorker {
        rows_scanned,
        scan_io: reader.finish(),
        calls: hosting.calls(),
        charged_ns: hosting.charged_ns(),
        busy_seconds: t0.elapsed().as_secs_f64(),
        out,
    }
}

fn dml_worker_body(
    job: &DmlJob<'_>,
    part: &ScanPartition,
    reader: &mut sqlarray_storage::PartitionReader<'_>,
    hosting: &mut HostingModel,
    rows_scanned: &mut u64,
) -> Result<Vec<(i64, Vec<SetValue>)>> {
    let mut inner_err: Option<EngineError> = None;
    let mut matched: Vec<(i64, Vec<SetValue>)> = Vec::new();
    {
        let hosting = &mut *hosting;
        job.table
            .scan_partition(reader, part, |reader, key, bytes| {
                reader.check_interrupt()?;
                *rows_scanned += 1;
                let row = RowCtx {
                    schema: job.schema,
                    bytes,
                    key,
                };
                let mut env = EvalEnv {
                    udfs: job.udfs,
                    hosting,
                    vars: job.vars,
                    lobs: Some(reader),
                };
                let step = (|| -> Result<()> {
                    if let Some(w) = job.where_clause {
                        if !strict_bool(eval(w, Some(&row), &mut env)?, job.kind)? {
                            return Ok(());
                        }
                    }
                    let mut vals = Vec::with_capacity(job.sets.len());
                    for item in job.sets {
                        match &item.plan {
                            SetPlan::Eval(e) => {
                                let mut v = eval(e, Some(&row), &mut env)?;
                                if let Value::Lob { id, .. } = v {
                                    // A reference to the target column's own
                                    // chain passes through (the apply phase
                                    // keeps it); a reference to any *other*
                                    // chain is copied here, while the
                                    // worker's reader is live — two rows
                                    // must never share a chain, or freeing
                                    // one corrupts the other. The borrowed
                                    // decode inspects the stored reference
                                    // without copying inline blob bytes.
                                    let own = matches!(
                                        sqlarray_storage::row::decode_col_ref(
                                            job.schema,
                                            bytes,
                                            item.col
                                        )?,
                                        sqlarray_storage::row::RowValueRef::LobRef(cid, _)
                                            if cid == id
                                    );
                                    if !own {
                                        crate::pushdown::resolve_lob_in_place(&mut v, &mut env)?;
                                    }
                                }
                                vals.push(SetValue::Plain(v));
                            }
                            SetPlan::ArrayPatch {
                                offset,
                                replacement,
                                ..
                            } => {
                                let mut off = eval(offset, Some(&row), &mut env)?;
                                crate::pushdown::resolve_lob_in_place(&mut off, &mut env)?;
                                let mut repl = eval(replacement, Some(&row), &mut env)?;
                                crate::pushdown::resolve_lob_in_place(&mut repl, &mut env)?;
                                vals.push(SetValue::Patch {
                                    offset: off,
                                    replacement: repl,
                                });
                            }
                        }
                    }
                    matched.push((key, vals));
                    Ok(())
                })();
                match step {
                    Ok(()) => Ok(true),
                    Err(e) => {
                        inner_err = Some(e);
                        Ok(false)
                    }
                }
            })?;
    }
    if let Some(e) = inner_err {
        return Err(e);
    }
    Ok(matched)
}

/// Checks the in-place patch conditions for one `ArrayUpdate` against the
/// stored value and, when they hold, returns the blob byte offset and raw
/// payload to splice. `None` means "use the UDF fallback" — every
/// condition here is also enforced by the fallback, so the two paths
/// accept and reject the same calls.
fn try_in_place(
    store: &mut PageStore,
    stored: &RowValue,
    elem: ElementType,
    class: StorageClass,
    offset: &Value,
    replacement: &Value,
) -> Result<Option<(usize, Vec<u8>)>> {
    // Only out-of-page chains benefit; in-row blobs re-encode cheaply.
    let &RowValue::LobRef(id, _) = stored else {
        return Ok(None);
    };
    let Ok(off) = crate::arraybind::index_vector(offset) else {
        return Ok(None);
    };
    let Ok(repl) = replacement.as_array() else {
        return Ok(None);
    };
    // One header-prefix read — the stored payload is never touched.
    let header = {
        let stream = BlobStream::open(&mut *store, id)?;
        ArrayReader::open(stream)?.header().clone()
    };
    if header.elem != elem || header.class != class {
        return Ok(None);
    }
    if repl.elem() != elem || repl.class() != class {
        return Ok(None);
    }
    // Rank 1 keeps the byte range contiguous regardless of layout order;
    // higher ranks go through the odometer fallback.
    if header.shape.rank() != 1 || off.len() != 1 || repl.rank() != 1 {
        return Ok(None);
    }
    let extent = header.shape.dims()[0];
    let Some(end) = off[0].checked_add(repl.count()) else {
        return Ok(None);
    };
    if end > extent {
        return Ok(None);
    }
    let byte_off = header.header_len() + off[0] * elem.size();
    Ok(Some((byte_off, sqlarray_core::ops::cast::raw(&repl))))
}

/// Materializes a stored value for a UDF-fallback argument.
fn materialize(store: &mut PageStore, v: RowValue) -> Result<Value> {
    match v {
        RowValue::LobRef(id, _) => Ok(Value::Bytes(sqlarray_storage::blob::read_blob(
            &mut *store,
            id,
        )?)),
        other => Ok(Value::from(other)),
    }
}

/// Executes one UPDATE. The caller holds exclusive access to the
/// database (the engine's write guard) for the whole statement.
pub fn exec_update(ctx: &mut DmlCtx<'_>, stmt: &UpdateStmt) -> Result<QueryResult> {
    let lower = stmt.table.to_ascii_lowercase();
    let table = ctx
        .tables
        .get(&lower)
        .cloned()
        .ok_or_else(|| EngineError::Unknown(format!("table `{}`", stmt.table)))?;
    let schema = table.schema().clone();
    let mut sets: Vec<SetItem> = Vec::with_capacity(stmt.sets.len());
    for (col_name, expr) in &stmt.sets {
        let col = schema
            .col_index(col_name)
            .ok_or_else(|| EngineError::Unknown(format!("column `{col_name}`")))?;
        if sets.iter().any(|s| s.col == col) {
            return Err(EngineError::Unsupported(format!(
                "column `{col_name}` is set more than once"
            )));
        }
        sets.push(SetItem {
            col,
            plan: plan_set_item(col_name, expr),
        });
    }
    exec_dml(
        ctx,
        lower,
        table,
        schema,
        stmt.where_clause.as_ref(),
        sets,
        "UPDATE",
    )
}

/// Executes one DELETE. The caller holds exclusive access to the
/// database (the engine's write guard) for the whole statement.
pub fn exec_delete(ctx: &mut DmlCtx<'_>, stmt: &DeleteStmt) -> Result<QueryResult> {
    let lower = stmt.table.to_ascii_lowercase();
    let table = ctx
        .tables
        .get(&lower)
        .cloned()
        .ok_or_else(|| EngineError::Unknown(format!("table `{}`", stmt.table)))?;
    let schema = table.schema().clone();
    exec_dml(
        ctx,
        lower,
        table,
        schema,
        stmt.where_clause.as_ref(),
        Vec::new(),
        "DELETE",
    )
}

/// The shared two-phase DML driver: parallel match, serial apply.
fn exec_dml(
    ctx: &mut DmlCtx<'_>,
    lower_name: String,
    mut table: Table,
    schema: Schema,
    where_clause: Option<&Expr>,
    sets: Vec<SetItem>,
    kind: &'static str,
) -> Result<QueryResult> {
    let io_before = ctx.store.stats();
    ctx.hosting.reset();
    let t0 = Instant::now();

    // --- Match phase (parallel, read-only) -----------------------------
    let parts = table.partition(ctx.store, ctx.dop.max(1))?;
    let scan = ctx.store.begin_scan_for(ctx.query.clone());
    let job = DmlJob {
        table: &table,
        schema: &schema,
        store: &*ctx.store,
        scan: &scan,
        where_clause,
        sets: &sets,
        kind,
        udfs: ctx.udfs,
        vars: ctx.vars,
    };
    let job_ref = &job;
    let hosting_ref: &HostingModel = ctx.hosting;
    let parts_ref = &parts;
    let worker_results: Vec<DmlWorker> = scoped_map_ranges(parts.len(), parts.len(), |r| {
        r.map(|pi| dml_worker(job_ref, &parts_ref[pi], pi as u32, hosting_ref.fork()))
            .collect::<Vec<DmlWorker>>()
    })
    .into_iter()
    .flatten()
    .collect();
    let dop_used = parts.len();
    drop(scan);

    let mut rows_scanned = 0u64;
    let mut scan_ios: Vec<ScanIo> = Vec::new();
    let mut max_busy = 0.0f64;
    let mut cpu_seconds = 0.0f64;
    let mut first_err: Option<EngineError> = None;
    // Concatenating in partition order yields matches in clustered-key
    // order, so the apply phase — and with it the WAL record stream — is
    // identical at every DOP.
    let mut matched: Vec<(i64, Vec<SetValue>)> = Vec::new();
    for w in worker_results {
        rows_scanned += w.rows_scanned;
        scan_ios.push(w.scan_io);
        ctx.hosting.absorb(w.calls, w.charged_ns);
        // lint:allow(L002, reason = "wall-clock diagnostics, not query results; timing is inherently non-deterministic and outside the bit-identity contract")
        cpu_seconds += w.busy_seconds;
        max_busy = max_busy.max(w.busy_seconds);
        match w.out {
            Ok(m) => matched.extend(m),
            Err(e) => {
                if first_err.is_none() {
                    first_err = Some(e);
                }
            }
        }
    }
    ctx.store.finish_scan(scan_ios.iter());
    if let Some(e) = first_err {
        // A match-phase abort reports its partial measurements like an
        // aborted SELECT. No page or WAL byte has changed yet, so
        // `rows_affected` is honestly zero.
        let wall_seconds = t0.elapsed().as_secs_f64();
        let io = ctx.store.stats().since(&io_before);
        let sim_io_seconds = ctx.store.profile().io_seconds(&io);
        *ctx.partial = Some(QueryStats {
            rows_scanned,
            batches: 0,
            batch_fill: 0.0,
            udf_calls: ctx.hosting.calls(),
            udf_overhead_ns: ctx.hosting.charged_ns(),
            cpu_seconds,
            wall_seconds,
            dop: dop_used,
            io,
            sim_io_seconds,
            rows_affected: 0,
        });
        return Err(e);
    }

    // --- Apply phase (serial, key order) -------------------------------
    let mut rows_affected = 0u64;
    if kind == "DELETE" {
        for (key, _) in matched {
            rows_affected += u64::from(table.delete(ctx.store, key)?);
        }
    } else {
        for (key, vals) in matched {
            let Some(old) = table.get(ctx.store, key)? else {
                continue;
            };
            let mut new = old.clone();
            let mut changed_row = false;
            let mut patches: Vec<(usize, usize, Vec<u8>)> = Vec::new();
            for (item, sv) in sets.iter().zip(vals) {
                match sv {
                    SetValue::Plain(v) => {
                        new[item.col] = to_row_value(&schema.columns[item.col], v)?;
                        changed_row = true;
                    }
                    SetValue::Patch {
                        offset,
                        replacement,
                    } => {
                        let SetPlan::ArrayPatch {
                            name, elem, class, ..
                        } = &item.plan
                        else {
                            unreachable!("Patch values only come from ArrayPatch plans");
                        };
                        match try_in_place(
                            ctx.store,
                            &old[item.col],
                            *elem,
                            *class,
                            &offset,
                            &replacement,
                        )? {
                            Some((byte_off, payload)) => {
                                patches.push((item.col, byte_off, payload));
                            }
                            None => {
                                let cur = materialize(ctx.store, old[item.col].clone())?;
                                let v = ctx.udfs.call(
                                    name,
                                    &[cur, offset, replacement],
                                    ctx.hosting,
                                )?;
                                new[item.col] = to_row_value(&schema.columns[item.col], v)?;
                                changed_row = true;
                            }
                        }
                    }
                }
            }
            // The full-row update goes first: untouched LOB columns pass
            // their references through, so a subsequent patch addresses
            // the same chain.
            if changed_row {
                table.update(ctx.store, key, &new)?;
            }
            for (col, byte_off, payload) in patches {
                table.update_col_blob_range(ctx.store, key, col, byte_off, &payload)?;
            }
            rows_affected += 1;
        }
    }
    // The tree geometry (root, leaf chain, row count) changed: publish the
    // mutated handle back into the catalog map.
    ctx.tables.insert(lower_name, table);

    let wall_seconds = t0.elapsed().as_secs_f64();
    // lint:allow(L002, reason = "wall-clock diagnostics, not query results; timing is inherently non-deterministic and outside the bit-identity contract")
    cpu_seconds += (wall_seconds - max_busy).max(0.0);
    let io = ctx.store.stats().since(&io_before);
    let sim_io_seconds = ctx.store.profile().io_seconds(&io);
    Ok(QueryResult {
        columns: Vec::new(),
        rows: Vec::new(),
        stats: QueryStats {
            rows_scanned,
            // DML match scans run row-at-a-time (the WAL byte stream, not
            // scan throughput, dominates): no batches to report.
            batches: 0,
            batch_fill: 0.0,
            udf_calls: ctx.hosting.calls(),
            udf_overhead_ns: ctx.hosting.charged_ns(),
            cpu_seconds,
            wall_seconds,
            dop: dop_used,
            io,
            sim_io_seconds,
            rows_affected,
        },
        assignments: Vec::new(),
    })
}
