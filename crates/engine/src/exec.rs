//! The query executor: clustered-index scans with filters, projections,
//! built-in aggregates, GROUP BY and user-defined aggregates.

use crate::aggregate::{UdaMode, UdaRegistry, UdaState};
use crate::expr::{eval, AggFunc, EvalEnv, Expr, RowCtx};
use crate::hosting::HostingModel;
use crate::tsql::{SelectItem, SelectStmt};
use crate::udf::UdfRegistry;
use crate::value::{EngineError, Result, Value};
use sqlarray_storage::{IoStats, PageStore, Table};
use std::collections::HashMap;
use std::time::Instant;

/// Default cap on rows returned by a projection without `TOP`.
pub const DEFAULT_ROW_LIMIT: usize = 100_000;

/// Per-query measurements — the raw numbers behind a Table 1 row.
#[derive(Debug, Clone)]
pub struct QueryStats {
    /// Rows the scan visited (before WHERE).
    pub rows_scanned: u64,
    /// Managed UDF invocations during the query.
    pub udf_calls: u64,
    /// Hosting overhead charged, nanoseconds.
    pub udf_overhead_ns: u64,
    /// Wall-clock seconds (≈ CPU seconds: the engine computes in memory).
    pub cpu_seconds: f64,
    /// Page-level I/O performed.
    pub io: IoStats,
    /// Seconds the simulated disk needs for that I/O.
    pub sim_io_seconds: f64,
}

impl QueryStats {
    /// Execution time under the overlap model: CPU and disk pipelines run
    /// concurrently, so the slower one bounds the query.
    pub fn exec_seconds(&self) -> f64 {
        self.cpu_seconds.max(self.sim_io_seconds)
    }

    /// CPU utilization in percent, as Table 1 reports it.
    pub fn cpu_percent(&self) -> f64 {
        if self.exec_seconds() == 0.0 {
            0.0
        } else {
            100.0 * self.cpu_seconds / self.exec_seconds()
        }
    }

    /// Effective I/O rate in MB/s over the execution time.
    pub fn io_mb_per_sec(&self) -> f64 {
        if self.exec_seconds() == 0.0 {
            0.0
        } else {
            self.io.bytes_read() as f64 / (1024.0 * 1024.0) / self.exec_seconds()
        }
    }
}

/// A query result: column names, rows, measurements.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Output column names.
    pub columns: Vec<String>,
    /// Output rows.
    pub rows: Vec<Vec<Value>>,
    /// Measurements.
    pub stats: QueryStats,
    /// `@var = expr` assignments produced by the select list.
    pub assignments: Vec<(String, Value)>,
}

impl QueryResult {
    /// The single value of a one-row, one-column result.
    pub fn scalar(&self) -> Result<&Value> {
        if self.rows.len() == 1 && self.rows[0].len() == 1 {
            Ok(&self.rows[0][0])
        } else {
            Err(EngineError::Type(format!(
                "expected a scalar result, got {}x{}",
                self.rows.len(),
                self.rows.first().map(|r| r.len()).unwrap_or(0)
            )))
        }
    }
}

/// Everything `exec_select` needs besides the statement.
pub struct ExecCtx<'a> {
    /// The page store.
    pub store: &'a mut PageStore,
    /// Tables by lowercase name.
    pub tables: &'a HashMap<String, Table>,
    /// Scalar UDFs.
    pub udfs: &'a UdfRegistry,
    /// User-defined aggregates.
    pub udas: &'a UdaRegistry,
    /// Hosting model (mutated).
    pub hosting: &'a mut HostingModel,
    /// Session variables.
    pub vars: &'a HashMap<String, Value>,
    /// UDA state-maintenance mode.
    pub uda_mode: UdaMode,
    /// Row cap for projections without TOP.
    pub row_limit: usize,
}

/// Rewrites scalar-function calls that name a registered UDA into
/// [`Expr::UdaCall`] nodes.
fn resolve_udas(expr: &Expr, udas: &UdaRegistry) -> Expr {
    match expr {
        Expr::Func { name, args } if udas.contains(name) => Expr::UdaCall {
            name: name.clone(),
            args: args.iter().map(|a| resolve_udas(a, udas)).collect(),
        },
        Expr::Func { name, args } => Expr::Func {
            name: name.clone(),
            args: args.iter().map(|a| resolve_udas(a, udas)).collect(),
        },
        Expr::Neg(e) => Expr::Neg(Box::new(resolve_udas(e, udas))),
        Expr::Not(e) => Expr::Not(Box::new(resolve_udas(e, udas))),
        Expr::Bin { op, left, right } => Expr::Bin {
            op: *op,
            left: Box::new(resolve_udas(left, udas)),
            right: Box::new(resolve_udas(right, udas)),
        },
        other => other.clone(),
    }
}

/// One select-list accumulator.
enum ItemAcc {
    Agg {
        func: AggFunc,
        arg: Option<Expr>,
        count: u64,
        sum: f64,
        min: Option<Value>,
        max: Option<Value>,
    },
    Uda {
        args: Vec<Expr>,
        state: Box<dyn UdaState>,
    },
    Plain {
        expr: Expr,
        value: Option<Value>,
    },
}

fn make_acc(item_expr: &Expr, udas: &UdaRegistry) -> Result<ItemAcc> {
    Ok(match item_expr {
        Expr::Agg { func, arg } => ItemAcc::Agg {
            func: *func,
            arg: arg.as_deref().cloned(),
            count: 0,
            sum: 0.0,
            min: None,
            max: None,
        },
        Expr::UdaCall { name, args } => ItemAcc::Uda {
            args: args.clone(),
            state: udas.create(name)?,
        },
        other => ItemAcc::Plain {
            expr: other.clone(),
            value: None,
        },
    })
}

impl ItemAcc {
    fn accumulate(
        &mut self,
        row: &RowCtx<'_>,
        env: &mut EvalEnv<'_>,
        uda_mode: UdaMode,
    ) -> Result<()> {
        match self {
            ItemAcc::Agg {
                func,
                arg,
                count,
                sum,
                min,
                max,
            } => {
                let v = match arg {
                    Some(e) => Some(eval(e, Some(row), env)?),
                    None => None,
                };
                if matches!(func, AggFunc::CountStar) {
                    *count += 1;
                    return Ok(());
                }
                let v = v.expect("non-COUNT(*) aggregates have an argument");
                if v.is_null() {
                    return Ok(());
                }
                *count += 1;
                match func {
                    AggFunc::Sum | AggFunc::Avg => *sum += v.as_f64()?,
                    AggFunc::Min => {
                        let replace = match min {
                            None => true,
                            Some(cur) => crate::expr::compare(&v, cur)? == std::cmp::Ordering::Less,
                        };
                        if replace {
                            *min = Some(v);
                        }
                    }
                    AggFunc::Max => {
                        let replace = match max {
                            None => true,
                            Some(cur) => {
                                crate::expr::compare(&v, cur)? == std::cmp::Ordering::Greater
                            }
                        };
                        if replace {
                            *max = Some(v);
                        }
                    }
                    AggFunc::Count | AggFunc::CountStar => {}
                }
                Ok(())
            }
            ItemAcc::Uda { args, state, .. } => {
                let mut argv = Vec::with_capacity(args.len());
                for a in args.iter() {
                    argv.push(eval(a, Some(row), env)?);
                }
                if uda_mode == UdaMode::StreamSerialized {
                    let buf = state.serialize_state();
                    state.load_state(&buf)?;
                }
                // Each UDA row hop is a managed call, like the CLR
                // aggregate interface.
                env.hosting.charge_call();
                state.accumulate(&argv)
            }
            ItemAcc::Plain { expr, value } => {
                if value.is_none() {
                    *value = Some(eval(expr, Some(row), env)?);
                }
                Ok(())
            }
        }
    }

    fn finish(&mut self) -> Result<Value> {
        match self {
            ItemAcc::Agg {
                func,
                count,
                sum,
                min,
                max,
                ..
            } => Ok(match func {
                AggFunc::CountStar | AggFunc::Count => Value::I64(*count as i64),
                AggFunc::Sum => {
                    if *count == 0 {
                        Value::Null
                    } else {
                        Value::F64(*sum)
                    }
                }
                AggFunc::Avg => {
                    if *count == 0 {
                        Value::Null
                    } else {
                        Value::F64(*sum / *count as f64)
                    }
                }
                AggFunc::Min => min.take().unwrap_or(Value::Null),
                AggFunc::Max => max.take().unwrap_or(Value::Null),
            }),
            ItemAcc::Uda { state, .. } => state.terminate(),
            ItemAcc::Plain { value, .. } => Ok(value.take().unwrap_or(Value::Null)),
        }
    }
}

fn item_name(item: &SelectItem, index: usize) -> String {
    if let Some(a) = &item.alias {
        return a.clone();
    }
    match &item.expr {
        Expr::Col(name) => name.clone(),
        Expr::Agg { func, .. } => format!("{func:?}").to_ascii_lowercase(),
        _ => format!("col{index}"),
    }
}

/// Executes one SELECT.
pub fn exec_select(ctx: &mut ExecCtx<'_>, stmt: &SelectStmt) -> Result<QueryResult> {
    let io_before = ctx.store.stats();
    ctx.hosting.reset();
    let t0 = Instant::now();

    let items: Vec<SelectItem> = stmt
        .items
        .iter()
        .map(|it| SelectItem {
            expr: resolve_udas(&it.expr, ctx.udas),
            alias: it.alias.clone(),
            assign: it.assign.clone(),
        })
        .collect();
    let columns: Vec<String> = items
        .iter()
        .enumerate()
        .map(|(i, it)| item_name(it, i))
        .collect();

    let has_aggregate =
        items.iter().any(|it| it.expr.contains_aggregate()) || !stmt.group_by.is_empty();

    let mut rows_scanned = 0u64;
    let mut rows: Vec<Vec<Value>> = Vec::new();

    match &stmt.from {
        None => {
            let mut env = EvalEnv {
                udfs: ctx.udfs,
                hosting: ctx.hosting,
                vars: ctx.vars,
            };
            let mut row = Vec::with_capacity(items.len());
            for it in &items {
                row.push(eval(&it.expr, None, &mut env)?);
            }
            rows.push(row);
        }
        Some(table_name) => {
            let table = ctx
                .tables
                .get(&table_name.to_ascii_lowercase())
                .cloned()
                .ok_or_else(|| EngineError::Unknown(format!("table `{table_name}`")))?;
            let schema = table.schema().clone();

            if has_aggregate {
                // Group key (possibly empty = one global group), insertion
                // ordered.
                let mut group_index: HashMap<String, usize> = HashMap::new();
                let mut groups: Vec<Vec<ItemAcc>> = Vec::new();
                if stmt.group_by.is_empty() {
                    let accs = items
                        .iter()
                        .map(|it| make_acc(&it.expr, ctx.udas))
                        .collect::<Result<Vec<_>>>()?;
                    groups.push(accs);
                    group_index.insert(String::new(), 0);
                }

                let udfs = ctx.udfs;
                let udas = ctx.udas;
                let vars = ctx.vars;
                let hosting = &mut *ctx.hosting;
                let uda_mode = ctx.uda_mode;
                let group_by = &stmt.group_by;
                let where_clause = &stmt.where_clause;
                let items_ref = &items;
                let mut inner_err: Option<EngineError> = None;

                table.scan_raw(ctx.store, |key, bytes| {
                    rows_scanned += 1;
                    let row = RowCtx {
                        schema: &schema,
                        bytes,
                        key,
                    };
                    let mut env = EvalEnv {
                        udfs,
                        hosting,
                        vars,
                    };
                    let step = (|| -> Result<()> {
                        if let Some(w) = where_clause {
                            if !eval(w, Some(&row), &mut env)?.is_true() {
                                return Ok(());
                            }
                        }
                        let gidx = if group_by.is_empty() {
                            0
                        } else {
                            let mut key_parts = String::new();
                            for g in group_by.iter() {
                                let v = eval(g, Some(&row), &mut env)?;
                                key_parts.push_str(&format!("{v:?}|"));
                            }
                            match group_index.get(&key_parts) {
                                Some(&i) => i,
                                None => {
                                    let accs = items_ref
                                        .iter()
                                        .map(|it| make_acc(&it.expr, udas))
                                        .collect::<Result<Vec<_>>>()?;
                                    groups.push(accs);
                                    let i = groups.len() - 1;
                                    group_index.insert(key_parts, i);
                                    i
                                }
                            }
                        };
                        for acc in groups[gidx].iter_mut() {
                            acc.accumulate(&row, &mut env, uda_mode)?;
                        }
                        Ok(())
                    })();
                    match step {
                        Ok(()) => Ok(true),
                        Err(e) => {
                            inner_err = Some(e);
                            Ok(false)
                        }
                    }
                })?;
                if let Some(e) = inner_err {
                    return Err(e);
                }
                for mut accs in groups {
                    let mut out = Vec::with_capacity(accs.len());
                    for acc in accs.iter_mut() {
                        out.push(acc.finish()?);
                    }
                    rows.push(out);
                }
            } else {
                let limit = stmt.top.unwrap_or(ctx.row_limit);
                let udfs = ctx.udfs;
                let vars = ctx.vars;
                let hosting = &mut *ctx.hosting;
                let where_clause = &stmt.where_clause;
                let items_ref = &items;
                let mut inner_err: Option<EngineError> = None;

                table.scan_raw(ctx.store, |key, bytes| {
                    rows_scanned += 1;
                    if rows.len() >= limit {
                        return Ok(false);
                    }
                    let row = RowCtx {
                        schema: &schema,
                        bytes,
                        key,
                    };
                    let mut env = EvalEnv {
                        udfs,
                        hosting,
                        vars,
                    };
                    let step = (|| -> Result<()> {
                        if let Some(w) = where_clause {
                            if !eval(w, Some(&row), &mut env)?.is_true() {
                                return Ok(());
                            }
                        }
                        let mut out = Vec::with_capacity(items_ref.len());
                        for it in items_ref.iter() {
                            out.push(eval(&it.expr, Some(&row), &mut env)?);
                        }
                        rows.push(out);
                        Ok(())
                    })();
                    match step {
                        Ok(()) => Ok(rows.len() < limit),
                        Err(e) => {
                            inner_err = Some(e);
                            Ok(false)
                        }
                    }
                })?;
                if let Some(e) = inner_err {
                    return Err(e);
                }
            }
        }
    }

    let cpu_seconds = t0.elapsed().as_secs_f64();
    let io = ctx.store.stats().since(&io_before);
    let sim_io_seconds = ctx.store.profile().io_seconds(&io);

    let assignments: Vec<(String, Value)> = items
        .iter()
        .enumerate()
        .filter_map(|(i, it)| {
            it.assign.as_ref().map(|name| {
                let v = rows
                    .last()
                    .and_then(|r| r.get(i))
                    .cloned()
                    .unwrap_or(Value::Null);
                (name.clone(), v)
            })
        })
        .collect();

    Ok(QueryResult {
        columns,
        rows,
        stats: QueryStats {
            rows_scanned,
            udf_calls: ctx.hosting.calls(),
            udf_overhead_ns: ctx.hosting.charged_ns(),
            cpu_seconds,
            io,
            sim_io_seconds,
        },
        assignments,
    })
}
