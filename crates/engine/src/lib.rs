//! # sqlarray-engine
//!
//! A miniature relational query engine reproducing the parts of SQL Server
//! that the paper's evaluation exercises (Dobos et al., EDBT 2011):
//!
//! * a T-SQL-flavoured dialect ([`tsql`]) covering the paper's examples —
//!   `DECLARE`/`SET`, schema-qualified UDF calls, `SELECT ... FROM ... WITH
//!   (NOLOCK)`, aggregates, `GROUP BY`;
//! * clustered-index-scan execution with per-query I/O and CPU accounting
//!   ([`exec`]);
//! * a scalar UDF registry hosting the entire array library under its
//!   original schema names ([`udf`], [`arraybind`]) plus the LAPACK/FFTW
//!   bindings ([`mathfn`]);
//! * an explicit CLR hosting-cost model ([`hosting`]) reproducing the
//!   ~2 µs/call overhead that makes queries 4 and 5 of Table 1 CPU-bound;
//! * user-defined aggregates with the per-row state-serialization mode
//!   that made the paper abandon UDAs ([`aggregate`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod arraybind;
mod batch;
pub mod engine;
pub mod exec;
pub mod expr;
pub mod faultfn;
pub mod hosting;
pub mod mathfn;
pub mod plancache;
pub mod pushdown;
pub mod sched;
pub mod session;
pub mod sugar;
pub mod tsql;
pub mod udf;
pub mod value;

pub use aggregate::{UdaMode, UdaRegistry, UdaState};
pub use engine::{Engine, EngineConfig, EngineStats};
pub use exec::{QueryResult, QueryStats};
pub use hosting::{CostClass, HostingModel, PAPER_CLR_CALL_NS};
pub use mathfn::{fft_array, gesvd_array, ifft_array, power_spectrum_array};
pub use plancache::{PlanCache, PlanCacheStats};
pub use sched::{DopScheduler, DopTicket, SchedStats};
pub use session::{Database, Prepared, Session};
pub use sqlarray_core::lifecycle::{CancelHandle, Interrupt, QueryCtx, QueryLimits};
pub use sugar::{desugar, SugarTypes};
pub use udf::UdfRegistry;
pub use value::{EngineError, Value};
