//! User-defined aggregates and the per-row state-serialization pathology.
//!
//! "Although user-defined aggregate functions seem a very elegant way of
//! implementing operations such as table to array conversion [...] the
//! state of aggregation had to be serialized via a binary stream interface
//! for each row processed by the aggregation. This turned out to be
//! prohibitive in our scenarios. In place of aggregate functions, we wrote
//! plain SQL CLR scalar functions that take a SQL query as an input
//! parameter" (§4.2).
//!
//! Both execution modes live here: [`UdaMode::InMemory`] is what a sane
//! runtime would do; [`UdaMode::StreamSerialized`] round-trips the state
//! through its binary serialization after **every row**, reproducing the
//! SQL Server 2008 CLR UDA behaviour that experiment E5 quantifies.

use crate::value::{EngineError, Result, Value};
use sqlarray_core::ops::table::ConcatBuilder;
use sqlarray_core::{ElementType, ExactSum, Scalar, StorageClass};
use std::collections::HashMap;

/// How the executor maintains aggregate state between rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UdaMode {
    /// State persists in memory between rows.
    #[default]
    InMemory,
    /// State is serialized and deserialized between every pair of rows —
    /// the SQL Server 2008 CLR contract.
    StreamSerialized,
}

/// Running state of one aggregate group.
pub trait UdaState: Send {
    /// Folds one row's argument values into the state.
    fn accumulate(&mut self, args: &[Value]) -> Result<()>;
    /// Serializes the full state (the CLR `Write(BinaryWriter)` half).
    fn serialize_state(&self) -> Vec<u8>;
    /// Restores the state from its serialization (the `Read` half).
    fn load_state(&mut self, buf: &[u8]) -> Result<()>;
    /// Combines the serialized state of a *later* scan partition into this
    /// one — the `Merge()` method of the CLR aggregate contract, which SQL
    /// Server calls when a parallel plan feeds one group from several
    /// threads. `other` is the [`serialize_state`](Self::serialize_state)
    /// output of the partial being folded in; partials are always merged
    /// in partition (key) order, so order-sensitive aggregates like
    /// `Concat` see their rows in serial scan order.
    fn merge_state(&mut self, other: &[u8]) -> Result<()>;
    /// Produces the aggregate result.
    fn terminate(&mut self) -> Result<Value>;
}

/// Factory producing fresh per-group states.
pub type UdaFactory = Box<dyn Fn() -> Box<dyn UdaState> + Send + Sync>;

/// Name → aggregate registry, case-insensitive.
#[derive(Default)]
pub struct UdaRegistry {
    map: HashMap<String, UdaFactory>,
}

impl UdaRegistry {
    /// Empty registry.
    pub fn new() -> UdaRegistry {
        UdaRegistry::default()
    }

    /// Registers an aggregate by name.
    pub fn register(
        &mut self,
        name: &str,
        factory: impl Fn() -> Box<dyn UdaState> + Send + Sync + 'static,
    ) {
        self.map
            .insert(name.to_ascii_lowercase(), Box::new(factory));
    }

    /// True when `name` is a registered aggregate.
    pub fn contains(&self, name: &str) -> bool {
        self.map.contains_key(&name.to_ascii_lowercase())
    }

    /// Creates a fresh state for `name`.
    pub fn create(&self, name: &str) -> Result<Box<dyn UdaState>> {
        self.map
            .get(&name.to_ascii_lowercase())
            .map(|f| f())
            .ok_or_else(|| EngineError::Unknown(format!("aggregate `{name}`")))
    }

    /// Registers the array aggregates for every type/class schema:
    /// `Concat` (table → array assembly) and `VectorAvg` (elementwise mean
    /// of array columns — the composite-spectrum aggregate of §2.2).
    pub fn register_array_aggregates(&mut self) {
        for elem in ElementType::ALL {
            for class in [StorageClass::Short, StorageClass::Max] {
                let schema = crate::arraybind::schema_name(elem, class);
                self.register(&format!("{schema}.Concat"), move || {
                    Box::new(ConcatUda::new(elem, class))
                });
            }
        }
        for class in [StorageClass::Short, StorageClass::Max] {
            let schema = crate::arraybind::schema_name(ElementType::Float64, class);
            self.register(&format!("{schema}.VectorAvg"), move || {
                Box::new(VectorAvgUda::new(class))
            });
        }
    }
}

/// The `Concat` aggregate: assembles an array from `(size_vector, index,
/// value)` rows (the paper's `FloatArrayMax.Concat(@l, ix, v)` call shape)
/// or from `(size_vector, value)` rows in scan order.
pub struct ConcatUda {
    elem: ElementType,
    class: StorageClass,
    builder: Option<ConcatBuilder>,
}

impl ConcatUda {
    /// New empty aggregate for one schema.
    pub fn new(elem: ElementType, class: StorageClass) -> ConcatUda {
        ConcatUda {
            elem,
            class,
            builder: None,
        }
    }

    fn ensure_builder(&mut self, size_arg: &Value) -> Result<&mut ConcatBuilder> {
        if self.builder.is_none() {
            let dims_arr = size_arg.as_array()?;
            let dims: Vec<usize> = dims_arr
                .iter_scalars()
                .map(|s| s.as_f64().map(|f| f as usize))
                .collect::<sqlarray_core::Result<_>>()?;
            self.builder =
                Some(ConcatBuilder::new(self.class, self.elem, &dims).map_err(EngineError::from)?);
        }
        // lint:allow(L005, reason = "the branch above just stored Some(builder) whenever the field was None; as_mut cannot observe None here")
        Ok(self.builder.as_mut().expect("just initialized"))
    }
}

impl UdaState for ConcatUda {
    fn accumulate(&mut self, args: &[Value]) -> Result<()> {
        match args.len() {
            2 => {
                // (size, value): fill in scan order.
                let value = scalar_from_value(&args[1], self.elem)?;
                self.ensure_builder(&args[0])?
                    .push_next(value)
                    .map_err(EngineError::from)
            }
            3 => {
                // (size, index_vector, value).
                let idx_arr = args[1].as_array()?;
                let idx: Vec<usize> = idx_arr
                    .iter_scalars()
                    .map(|s| s.as_f64().map(|f| f as usize))
                    .collect::<sqlarray_core::Result<_>>()?;
                let value = scalar_from_value(&args[2], self.elem)?;
                self.ensure_builder(&args[0])?
                    .push(&idx, value)
                    .map_err(EngineError::from)
            }
            n => Err(EngineError::Arity {
                func: "Concat".into(),
                got: n,
                want: "2..=3".into(),
            }),
        }
    }

    fn serialize_state(&self) -> Vec<u8> {
        match &self.builder {
            Some(b) => {
                let mut out = vec![1u8];
                out.extend_from_slice(&b.serialize_state());
                out
            }
            None => vec![0u8],
        }
    }

    fn load_state(&mut self, buf: &[u8]) -> Result<()> {
        if buf.is_empty() {
            return Err(EngineError::Storage("empty UDA state".into()));
        }
        self.builder = if buf[0] == 0 {
            None
        } else {
            Some(ConcatBuilder::deserialize_state(&buf[1..]).map_err(EngineError::from)?)
        };
        Ok(())
    }

    fn merge_state(&mut self, other: &[u8]) -> Result<()> {
        if other.is_empty() {
            return Err(EngineError::Storage("empty UDA state".into()));
        }
        if other[0] == 0 {
            return Ok(()); // the other partition saw no rows
        }
        let theirs = ConcatBuilder::deserialize_state(&other[1..]).map_err(EngineError::from)?;
        match &mut self.builder {
            Some(b) => b.merge(&theirs).map_err(EngineError::from),
            None => {
                self.builder = Some(theirs);
                Ok(())
            }
        }
    }

    fn terminate(&mut self) -> Result<Value> {
        match self.builder.take() {
            Some(b) => Ok(Value::Bytes(b.finish().into_blob())),
            None => Ok(Value::Null),
        }
    }
}

fn scalar_from_value(v: &Value, elem: ElementType) -> Result<Scalar> {
    Ok(Scalar::F64(v.as_f64()?).cast_to(elem)?)
}

/// Elementwise mean of an array column — composite spectra "could be very
/// easily solved using an aggregate function" (§2.2).
///
/// Element sums accumulate in [`ExactSum`] registers, so partial states
/// built by parallel scan workers merge without rounding: the parallel
/// `VectorAvg` is bit-identical to the serial one.
pub struct VectorAvgUda {
    class: StorageClass,
    sum: Option<Vec<ExactSum>>,
    dims: Vec<usize>,
    count: u64,
}

impl VectorAvgUda {
    /// New empty aggregate.
    pub fn new(class: StorageClass) -> VectorAvgUda {
        VectorAvgUda {
            class,
            sum: None,
            dims: Vec::new(),
            count: 0,
        }
    }
}

impl UdaState for VectorAvgUda {
    fn accumulate(&mut self, args: &[Value]) -> Result<()> {
        if args.len() != 1 {
            return Err(EngineError::Arity {
                func: "VectorAvg".into(),
                got: args.len(),
                want: "1..=1".into(),
            });
        }
        let a = args[0].as_array()?;
        let vals: Vec<f64> = a
            .iter_scalars()
            .map(|s| s.as_f64())
            .collect::<sqlarray_core::Result<_>>()?;
        match &mut self.sum {
            None => {
                self.dims = a.dims().to_vec();
                let mut acc: Vec<ExactSum> = vec![ExactSum::new(); vals.len()];
                for (s, v) in acc.iter_mut().zip(&vals) {
                    s.add(*v);
                }
                self.sum = Some(acc);
            }
            Some(acc) => {
                if a.dims() != self.dims.as_slice() {
                    return Err(EngineError::Type(format!(
                        "VectorAvg over mixed shapes: {:?} vs {:?}",
                        a.dims(),
                        self.dims
                    )));
                }
                for (s, v) in acc.iter_mut().zip(&vals) {
                    s.add(*v);
                }
            }
        }
        self.count += 1;
        Ok(())
    }

    fn serialize_state(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&self.count.to_le_bytes());
        out.extend_from_slice(&(self.dims.len() as u32).to_le_bytes());
        for &d in &self.dims {
            out.extend_from_slice(&(d as u64).to_le_bytes());
        }
        if let Some(sum) = &self.sum {
            for v in sum {
                out.extend_from_slice(&v.to_bytes());
            }
        }
        out
    }

    fn load_state(&mut self, buf: &[u8]) -> Result<()> {
        let corrupt = || EngineError::Storage("corrupt VectorAvg state".into());
        if buf.len() < 12 {
            return Err(corrupt());
        }
        self.count = sqlarray_core::le::u64_at(buf, 0);
        let rank = sqlarray_core::le::u32_at(buf, 8) as usize;
        let mut off = 12;
        self.dims.clear();
        for _ in 0..rank {
            if buf.len() < off + 8 {
                return Err(corrupt());
            }
            self.dims.push(sqlarray_core::le::u64_at(buf, off) as usize);
            off += 8;
        }
        let n: usize = self.dims.iter().product();
        if self.count == 0 {
            self.sum = None;
            return Ok(());
        }
        const REG: usize = ExactSum::SERIALIZED_LEN;
        if buf.len() != off + REG * n {
            return Err(corrupt());
        }
        let mut sum = Vec::with_capacity(n);
        for k in 0..n {
            sum.push(
                ExactSum::from_bytes(&buf[off + REG * k..off + REG * (k + 1)])
                    .ok_or_else(corrupt)?,
            );
        }
        self.sum = Some(sum);
        Ok(())
    }

    fn merge_state(&mut self, other: &[u8]) -> Result<()> {
        let mut theirs = VectorAvgUda::new(self.class);
        theirs.load_state(other)?;
        let Some(other_sum) = theirs.sum else {
            return Ok(()); // the other partition saw no rows
        };
        match &mut self.sum {
            None => {
                self.dims = theirs.dims;
                self.sum = Some(other_sum);
            }
            Some(acc) => {
                if theirs.dims != self.dims {
                    return Err(EngineError::Type(format!(
                        "VectorAvg merge over mixed shapes: {:?} vs {:?}",
                        theirs.dims, self.dims
                    )));
                }
                for (s, v) in acc.iter_mut().zip(&other_sum) {
                    s.merge(v);
                }
            }
        }
        self.count += theirs.count;
        Ok(())
    }

    fn terminate(&mut self) -> Result<Value> {
        match self.sum.take() {
            None => Ok(Value::Null),
            Some(sum) => {
                let mean: Vec<f64> = sum.iter().map(|v| v.value() / self.count as f64).collect();
                let a = match sqlarray_core::SqlArray::from_vec(self.class, &self.dims, &mean) {
                    Ok(a) => a,
                    Err(sqlarray_core::ArrayError::ShortTooLarge { .. }) => {
                        sqlarray_core::SqlArray::from_vec(StorageClass::Max, &self.dims, &mean)
                            .map_err(EngineError::from)?
                    }
                    Err(e) => return Err(e.into()),
                };
                Ok(Value::Bytes(a.into_blob()))
            }
        }
    }
}

/// Runs a UDA over an iterator of row argument tuples, in the given mode —
/// the helper both the executor and experiment E5 use.
pub fn run_uda(
    state: &mut Box<dyn UdaState>,
    rows: impl Iterator<Item = Vec<Value>>,
    mode: UdaMode,
) -> Result<Value> {
    for args in rows {
        if mode == UdaMode::StreamSerialized {
            // The CLR contract: state round-trips through its binary
            // serialization on every row.
            let buf = state.serialize_state();
            state.load_state(&buf)?;
        }
        state.accumulate(&args)?;
    }
    state.terminate()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn size_vec(dims: &[i64]) -> Value {
        let a =
            sqlarray_core::build::short_vector(&dims.iter().map(|&d| d as i32).collect::<Vec<_>>())
                .unwrap();
        Value::Bytes(a.into_blob())
    }

    #[test]
    fn concat_sequential_assembles_array() {
        let mut state: Box<dyn UdaState> =
            Box::new(ConcatUda::new(ElementType::Float64, StorageClass::Max));
        let rows = (0..6).map(|i| vec![size_vec(&[2, 3]), Value::F64(i as f64)]);
        let out = run_uda(&mut state, rows, UdaMode::InMemory).unwrap();
        let a = out.as_array().unwrap();
        assert_eq!(a.dims(), &[2, 3]);
        assert_eq!(
            a.to_vec::<f64>().unwrap(),
            vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]
        );
    }

    #[test]
    fn concat_indexed_matches_paper_call_shape() {
        // Concat(@l, ix, v) with @l = Vector_2(2, 2).
        let mut state: Box<dyn UdaState> =
            Box::new(ConcatUda::new(ElementType::Float64, StorageClass::Max));
        let rows = vec![
            vec![size_vec(&[2, 2]), size_vec(&[1, 1]), Value::F64(4.0)],
            vec![size_vec(&[2, 2]), size_vec(&[0, 0]), Value::F64(1.0)],
            vec![size_vec(&[2, 2]), size_vec(&[1, 0]), Value::F64(2.0)],
            vec![size_vec(&[2, 2]), size_vec(&[0, 1]), Value::F64(3.0)],
        ];
        let out = run_uda(&mut state, rows.into_iter(), UdaMode::InMemory).unwrap();
        let a = out.as_array().unwrap();
        assert_eq!(a.item(&[0, 0]).unwrap().as_f64().unwrap(), 1.0);
        assert_eq!(a.item(&[1, 1]).unwrap().as_f64().unwrap(), 4.0);
    }

    #[test]
    fn stream_serialized_mode_produces_identical_result() {
        let build = || -> Box<dyn UdaState> {
            Box::new(ConcatUda::new(ElementType::Int32, StorageClass::Short))
        };
        let rows = || (0..10i64).map(|i| vec![size_vec(&[10]), Value::I64(i * i)]);
        let mut fast = build();
        let mut slow = build();
        let a = run_uda(&mut fast, rows(), UdaMode::InMemory).unwrap();
        let b = run_uda(&mut slow, rows(), UdaMode::StreamSerialized).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_aggregate_terminates_null() {
        let mut state: Box<dyn UdaState> =
            Box::new(ConcatUda::new(ElementType::Float64, StorageClass::Max));
        let out = run_uda(&mut state, std::iter::empty(), UdaMode::InMemory).unwrap();
        assert_eq!(out, Value::Null);
    }

    #[test]
    fn vector_avg_means_elementwise() {
        let mut state: Box<dyn UdaState> = Box::new(VectorAvgUda::new(StorageClass::Short));
        let rows = (0..4).map(|i| {
            let a = sqlarray_core::build::short_vector(&[i as f64, 10.0 * i as f64]).unwrap();
            vec![Value::Bytes(a.into_blob())]
        });
        let out = run_uda(&mut state, rows, UdaMode::StreamSerialized).unwrap();
        let a = out.as_array().unwrap();
        assert_eq!(a.to_vec::<f64>().unwrap(), vec![1.5, 15.0]);
    }

    #[test]
    fn vector_avg_rejects_mixed_shapes() {
        let mut state = VectorAvgUda::new(StorageClass::Short);
        let a1 = sqlarray_core::build::short_vector(&[1.0f64, 2.0]).unwrap();
        let a2 = sqlarray_core::build::short_vector(&[1.0f64, 2.0, 3.0]).unwrap();
        state.accumulate(&[Value::Bytes(a1.into_blob())]).unwrap();
        assert!(state.accumulate(&[Value::Bytes(a2.into_blob())]).is_err());
    }

    #[test]
    fn merge_state_reassembles_partitioned_concat() {
        // Three partials, as three parallel scan partitions would build.
        let splits: [std::ops::Range<i64>; 3] = [0..3, 3..4, 4..9];
        let mut partials: Vec<Box<dyn UdaState>> = splits
            .iter()
            .map(|r| {
                let mut s: Box<dyn UdaState> =
                    Box::new(ConcatUda::new(ElementType::Float64, StorageClass::Short));
                for i in r.clone() {
                    s.accumulate(&[size_vec(&[9]), Value::F64(i as f64 * 1.5)])
                        .unwrap();
                }
                s
            })
            .collect();
        let mut merged = partials.remove(0);
        for p in &partials {
            merged.merge_state(&p.serialize_state()).unwrap();
        }
        let a = merged.terminate().unwrap();
        let arr = a.as_array().unwrap();
        assert_eq!(
            arr.to_vec::<f64>().unwrap(),
            (0..9).map(|i| i as f64 * 1.5).collect::<Vec<_>>()
        );
    }

    #[test]
    fn merge_state_with_empty_partials_is_identity() {
        let mut s: Box<dyn UdaState> =
            Box::new(ConcatUda::new(ElementType::Float64, StorageClass::Short));
        s.accumulate(&[size_vec(&[2]), Value::F64(1.0)]).unwrap();
        let empty = ConcatUda::new(ElementType::Float64, StorageClass::Short);
        s.merge_state(&empty.serialize_state()).unwrap();
        // Empty self adopting a non-empty partial also works.
        let mut fresh: Box<dyn UdaState> =
            Box::new(ConcatUda::new(ElementType::Float64, StorageClass::Short));
        fresh.merge_state(&s.serialize_state()).unwrap();
        fresh
            .accumulate(&[size_vec(&[2]), Value::F64(2.0)])
            .unwrap();
        let arr = fresh.terminate().unwrap().as_array().unwrap();
        assert_eq!(arr.to_vec::<f64>().unwrap(), vec![1.0, 2.0]);
    }

    #[test]
    fn vector_avg_merge_matches_serial() {
        let rows: Vec<Vec<Value>> = (0..8)
            .map(|i| {
                let a = sqlarray_core::build::short_vector(&[i as f64, (i * i) as f64]).unwrap();
                vec![Value::Bytes(a.into_blob())]
            })
            .collect();
        let mut serial = VectorAvgUda::new(StorageClass::Short);
        for r in &rows {
            serial.accumulate(r).unwrap();
        }
        let mut left = VectorAvgUda::new(StorageClass::Short);
        let mut right = VectorAvgUda::new(StorageClass::Short);
        for r in &rows[..3] {
            left.accumulate(r).unwrap();
        }
        for r in &rows[3..] {
            right.accumulate(r).unwrap();
        }
        left.merge_state(&right.serialize_state()).unwrap();
        assert_eq!(
            left.terminate().unwrap(),
            serial.terminate().unwrap(),
            "integer-valued partial sums must merge exactly"
        );
        // Shape mismatches are rejected at merge time too.
        let mut a = VectorAvgUda::new(StorageClass::Short);
        a.accumulate(&[Value::Bytes(
            sqlarray_core::build::short_vector(&[1.0f64])
                .unwrap()
                .into_blob(),
        )])
        .unwrap();
        let mut b = VectorAvgUda::new(StorageClass::Short);
        b.accumulate(&[Value::Bytes(
            sqlarray_core::build::short_vector(&[1.0f64, 2.0])
                .unwrap()
                .into_blob(),
        )])
        .unwrap();
        assert!(a.merge_state(&b.serialize_state()).is_err());
    }

    #[test]
    fn registry_lookup_and_creation() {
        let mut reg = UdaRegistry::new();
        reg.register_array_aggregates();
        assert!(reg.contains("FloatArrayMax.Concat"));
        assert!(reg.contains("floatarraymax.concat"));
        assert!(!reg.contains("nope"));
        let mut s = reg.create("IntArray.Concat").unwrap();
        s.accumulate(&[size_vec(&[1]), Value::I64(7)]).unwrap();
        let v = s.terminate().unwrap();
        assert_eq!(
            v.as_array().unwrap().item(&[0]).unwrap().as_f64().unwrap(),
            7.0
        );
    }

    #[test]
    fn state_round_trip_preserves_progress() {
        let mut s = ConcatUda::new(ElementType::Float64, StorageClass::Short);
        s.accumulate(&[size_vec(&[3]), Value::F64(1.0)]).unwrap();
        let buf = s.serialize_state();
        let mut s2 = ConcatUda::new(ElementType::Float64, StorageClass::Short);
        s2.load_state(&buf).unwrap();
        s2.accumulate(&[size_vec(&[3]), Value::F64(2.0)]).unwrap();
        s2.accumulate(&[size_vec(&[3]), Value::F64(3.0)]).unwrap();
        let out = s2.terminate().unwrap().as_array().unwrap();
        assert_eq!(out.to_vec::<f64>().unwrap(), vec![1.0, 2.0, 3.0]);
    }
}
