//! The shared engine: one database, many cheap sessions.
//!
//! [`Engine`] owns everything that is per-*database* — the page store and
//! table catalog behind a reader/writer lock, the immutable function
//! registries, the [plan cache](crate::plancache), and the
//! [admission-control scheduler](crate::sched). A
//! [`Session`] is per-*connection* state (variables, DOP,
//! batch size, hosting model) over an `Arc<Engine>`, so spawning a session
//! costs a handful of words, like handing out a connection from a pool.
//!
//! ## Isolation: single writer, many snapshot readers
//!
//! Statements take the database lock at statement granularity:
//!
//! * **SELECT** runs under a **read** guard — any number of sessions scan
//!   concurrently, sharing the live buffer pool;
//! * **UPDATE/DELETE** runs under the **write** guard, commits through
//!   the WAL (statement-level autocommit), and only then releases.
//!
//! Readers therefore always observe a *committed* state — never a
//! half-applied mutation — and every page a statement reads belongs to
//! the same commit epoch ([`sqlarray_storage::ScanCtx::snapshot_epoch`]
//! names it). This is the single-writer/multi-reader epoch scheme: the
//! honest stepping stone to MVCC, where readers would keep their snapshot
//! *while* a writer proceeds instead of briefly excluding it.

use crate::aggregate::UdaRegistry;
use crate::hosting::HostingModel;
use crate::plancache::{PlanCache, PlanCacheStats, DEFAULT_PLAN_CACHE_CAPACITY};
use crate::sched::{
    configured_admission_queue_cap, configured_worker_budget, DopScheduler, SchedStats,
};
use crate::session::{Database, Session};
use crate::udf::UdfRegistry;
use sqlarray_core::sync::{read_unpoisoned, write_unpoisoned};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Construction-time tuning for an [`Engine`].
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Global scan-worker budget the scheduler arbitrates
    /// (`SQLARRAY_WORKER_BUDGET`, else the configured DOP).
    pub worker_budget: usize,
    /// Parsed batches the plan cache retains.
    pub plan_cache_capacity: usize,
    /// Statements admission control will queue before refusing further
    /// arrivals with [`crate::EngineError::Overloaded`]
    /// (`SQLARRAY_ADMISSION_QUEUE`).
    pub admission_queue_cap: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            worker_budget: configured_worker_budget(),
            plan_cache_capacity: DEFAULT_PLAN_CACHE_CAPACITY,
            admission_queue_cap: configured_admission_queue_cap(),
        }
    }
}

/// Engine-wide observability: plan-cache and scheduler counters plus the
/// store's commit epoch.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineStats {
    /// Plan-cache counters.
    pub plans: PlanCacheStats,
    /// Admission-control counters.
    pub sched: SchedStats,
    /// Commits the store has accepted.
    pub committed_epoch: u64,
}

/// The shared query engine. See the module docs for the ownership story.
pub struct Engine {
    db: RwLock<Database>,
    udfs: UdfRegistry,
    udas: UdaRegistry,
    plans: PlanCache,
    sched: DopScheduler,
}

impl Engine {
    /// An engine over `db` with default configuration and the full array
    /// library registered.
    pub fn new(db: Database) -> Arc<Engine> {
        Engine::with_config(db, EngineConfig::default())
    }

    /// An engine with explicit tuning.
    pub fn with_config(db: Database, config: EngineConfig) -> Arc<Engine> {
        let mut udfs = UdfRegistry::new();
        crate::arraybind::register_all(&mut udfs);
        crate::mathfn::register_math(&mut udfs);
        crate::faultfn::register_faults(&mut udfs);
        let mut udas = UdaRegistry::new();
        udas.register_array_aggregates();
        Arc::new(Engine {
            db: RwLock::new(db),
            udfs,
            udas,
            plans: PlanCache::new(config.plan_cache_capacity),
            sched: DopScheduler::with_queue_cap(config.worker_budget, config.admission_queue_cap),
        })
    }

    /// Spawns a session with the paper's 2 µs CLR hosting cost.
    pub fn session(self: &Arc<Self>) -> Session {
        self.session_with_hosting(HostingModel::paper_clr())
    }

    /// Spawns a session with an explicit hosting model.
    pub fn session_with_hosting(self: &Arc<Self>, hosting: HostingModel) -> Session {
        Session::on_engine(Arc::clone(self), hosting)
    }

    /// Read access to the database: shared with every other concurrent
    /// reader, excluded only by a writer. Hold it no longer than one
    /// statement.
    pub fn db(&self) -> RwLockReadGuard<'_, Database> {
        // Recover-on-poison ([`sqlarray_core::sync`]): the data this lock
        // guards is only reachable through committed WAL state, so
        // continuing with the inner value is sound (recovery semantics
        // are the WAL's, not the lock's) — and scan-worker panics are
        // already contained at the fan-out boundary before they could
        // unwind through a guard.
        read_unpoisoned(&self.db)
    }

    /// Exclusive write access to the database (the single-writer half of
    /// the isolation scheme).
    pub fn db_mut(&self) -> RwLockWriteGuard<'_, Database> {
        write_unpoisoned(&self.db)
    }

    /// The shared scalar-UDF registry.
    pub fn udfs(&self) -> &UdfRegistry {
        &self.udfs
    }

    /// The shared UDA registry.
    pub fn udas(&self) -> &UdaRegistry {
        &self.udas
    }

    /// The engine's plan cache.
    pub fn plans(&self) -> &PlanCache {
        &self.plans
    }

    /// The engine's admission-control scheduler.
    pub fn sched(&self) -> &DopScheduler {
        &self.sched
    }

    /// Engine-wide counters.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            plans: self.plans.stats(),
            sched: self.sched.stats(),
            committed_epoch: self.db().store.committed_epoch(),
        }
    }

    /// Consumes a single-owner engine, giving the database back. Errors
    /// (returning `self` untouched) while other `Arc` holders — sessions
    /// or clones — are alive.
    pub fn try_into_db(self: Arc<Self>) -> std::result::Result<Database, Arc<Engine>> {
        match Arc::try_unwrap(self) {
            Ok(e) => Ok(e.db.into_inner().unwrap_or_else(|p| p.into_inner())),
            Err(arc) => Err(arc),
        }
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("worker_budget", &self.sched.budget())
            .field("plans", &self.plans.stats())
            .finish()
    }
}
