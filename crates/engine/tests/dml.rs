//! SQL-level DML: UPDATE/DELETE correctness, DOP-invariance of the WAL
//! byte stream, the `ArrayUpdate` bounded-write fast path, crash
//! recovery through the session's statement-level autocommit, a typed
//! error matrix, and a model-based differential property test.

use proptest::collection::vec;
use proptest::prelude::*;
use sqlarray_core::build;
use sqlarray_engine::{Database, EngineError, HostingModel, Session, Value};
use sqlarray_storage::{ColType, FailPlan, RowValue, Schema};
use std::collections::BTreeMap;

fn schema() -> Schema {
    Schema::new(&[
        ("id", ColType::I64),
        ("tag", ColType::I32),
        ("v", ColType::Blob),
    ])
}

/// A session over table `T(id BIGINT, tag INT, v VARBINARY(MAX))` with
/// `rows` rows; row `k` carries a 5-element float vector seeded by `k`.
fn session(rows: i64) -> Session {
    let mut db = Database::new();
    db.create_table("T", schema()).unwrap();
    for k in 0..rows {
        let comps: Vec<f64> = (0..5).map(|i| k as f64 * 10.0 + i as f64).collect();
        let arr = build::short_vector(&comps).unwrap();
        db.insert(
            "T",
            k,
            &[
                RowValue::I64(k),
                RowValue::I32(k as i32),
                RowValue::Bytes(arr.into_blob()),
            ],
        )
        .unwrap();
    }
    db.commit();
    Session::with_hosting(db, HostingModel::free())
}

fn id_tag_rows(s: &mut Session) -> Vec<(i64, i32)> {
    let r = s.query("SELECT id, tag FROM T").unwrap();
    r.rows
        .iter()
        .map(|row| {
            let Value::I64(id) = row[0] else {
                panic!("id column must be BIGINT, got {:?}", row[0])
            };
            let Value::I32(tag) = row[1] else {
                panic!("tag column must be INT, got {:?}", row[1])
            };
            (id, tag)
        })
        .collect()
}

#[test]
fn update_and_delete_basic() {
    let mut s = session(10);
    let r = s
        .execute("UPDATE T SET tag = tag + 100 WHERE id < 4")
        .unwrap();
    assert_eq!(r.len(), 1);
    assert_eq!(r[0].stats.rows_affected, 4);
    assert!(r[0].rows.is_empty());

    let r = s.execute("DELETE FROM T WHERE id >= 7").unwrap();
    assert_eq!(r[0].stats.rows_affected, 3);

    assert_eq!(
        id_tag_rows(&mut s),
        vec![
            (0, 100),
            (1, 101),
            (2, 102),
            (3, 103),
            (4, 4),
            (5, 5),
            (6, 6)
        ]
    );

    // A WHERE that matches nothing affects nothing.
    let r = s.execute("UPDATE T SET tag = 0 WHERE id > 999").unwrap();
    assert_eq!(r[0].stats.rows_affected, 0);
    let r = s.execute("DELETE FROM T WHERE id > 999").unwrap();
    assert_eq!(r[0].stats.rows_affected, 0);

    // No WHERE touches every row.
    let r = s.execute("DELETE FROM T").unwrap();
    assert_eq!(r[0].stats.rows_affected, 7);
    assert!(id_tag_rows(&mut s).is_empty());
}

#[test]
fn update_can_read_other_columns_and_blobs() {
    let mut s = session(6);
    // SET references the row's own columns, including an array item.
    s.execute("UPDATE T SET tag = id * 2 + FloatArray.Item_1(v, 1) WHERE id % 2 = 0")
        .unwrap();
    assert_eq!(
        id_tag_rows(&mut s),
        vec![(0, 1), (1, 1), (2, 25), (3, 3), (4, 49), (5, 5)]
    );
}

#[test]
fn dml_wal_stream_is_dop_invariant() {
    // The same batch at DOP 1, 2, 4 and 8 must leave byte-identical
    // durable state: pages, checksums, free list and the WAL itself.
    let batch = "UPDATE T SET tag = tag + 1 WHERE id % 3 = 0;\
                 DELETE FROM T WHERE id % 7 = 2;\
                 UPDATE T SET v = FloatArray.Vector_2(id, tag) WHERE id < 40";
    let mut base = session(120);
    base.set_dop(1);
    base.execute(batch).unwrap();
    let want_rows = id_tag_rows(&mut base);
    let want_image = base.db().store.crash_image();
    for dop in [2usize, 4, 8] {
        let mut s = session(120);
        s.set_dop(dop);
        s.execute(batch).unwrap();
        assert_eq!(id_tag_rows(&mut s), want_rows, "rows differ at dop {dop}");
        let img = s.db().store.crash_image();
        assert_eq!(img.wal, want_image.wal, "WAL bytes differ at dop {dop}");
        assert_eq!(img, want_image, "disk image differs at dop {dop}");
    }
}

#[test]
fn array_update_rewrites_only_touched_chunks() {
    // The paper's ArrayUpdate path: patching a 0.78% slice of a 16 MiB
    // stored array must rewrite only the intersecting LOB chunk pages,
    // not the 2000+ pages of the whole chain.
    const N: usize = 2 * 1024 * 1024; // 16 MiB of f64
    const REPL: usize = N / 128; // 16384 elements = 128 KiB
    const OFF: usize = 524_288;
    let data: Vec<f64> = (0..N).map(|i| i as f64).collect();
    let mut db = Database::new();
    db.create_table("T", schema()).unwrap();
    let arr = build::max_vector(&data).unwrap();
    db.insert(
        "T",
        0,
        &[
            RowValue::I64(0),
            RowValue::I32(0),
            RowValue::Bytes(arr.into_blob()),
        ],
    )
    .unwrap();
    db.commit();
    let mut s = Session::with_hosting(db, HostingModel::free());

    let stored_before = s.db().table("T").unwrap().clone();
    let before = stored_before
        .get(&mut s.db_mut().store, 0)
        .unwrap()
        .unwrap();
    let RowValue::LobRef(id_before, len_before) = before[2] else {
        panic!(
            "a 16 MiB array must spill to a LOB chain, got {:?}",
            before[2]
        )
    };

    let repl: Vec<f64> = (0..REPL).map(|i| -(i as f64)).collect();
    s.set_var(
        "r",
        Value::Bytes(build::max_vector(&repl).unwrap().into_blob()),
    );
    let r = s
        .execute(&format!(
            "UPDATE T SET v = FloatArrayMax.ArrayUpdate(v, IntArray.Vector_1({OFF}), @r) \
             WHERE id = 0"
        ))
        .unwrap();
    assert_eq!(r[0].stats.rows_affected, 1);

    // 128 KiB spans ceil(131072 / 8176) = 17 chunks, 18 when the slice
    // straddles a boundary. Allow a little headroom, but nothing close
    // to the ~2052 pages a full rewrite takes.
    let written = r[0].stats.io.pages_written;
    assert!(
        (1..=24).contains(&written),
        "expected a bounded chunk rewrite, wrote {written} pages"
    );

    // The chain was patched in place: same LOB reference, same length.
    // (Two statements: chaining `s.db()` into `s.db_mut()` would hold the
    // read guard while taking the write lock — self-deadlock.)
    let stored_after = s.db().table("T").unwrap().clone();
    let after = stored_after.get(&mut s.db_mut().store, 0).unwrap().unwrap();
    assert_eq!(after[2], RowValue::LobRef(id_before, len_before));

    // Spot-check contents through SQL on both sides of the patch.
    for (idx, want) in [
        (0usize, 0.0),
        (OFF - 1, (OFF - 1) as f64),
        (OFF, 0.0),
        (OFF + 5, -5.0),
        (OFF + REPL - 1, -((REPL - 1) as f64)),
        (OFF + REPL, (OFF + REPL) as f64),
        (N - 1, (N - 1) as f64),
    ] {
        let got = s
            .query_scalar(&format!("SELECT FloatArrayMax.Item_1(v, {idx}) FROM T"))
            .unwrap();
        assert_eq!(got, Value::F64(want), "element {idx}");
    }
}

#[test]
fn array_update_fallback_path_matches() {
    // Small arrays stay inline (no LOB chain), so the in-place patch
    // can't apply and the executor falls back to the registered UDF —
    // results must be identical in kind.
    let mut s = session(3);
    s.execute("UPDATE T SET v = FloatArray.ArrayUpdate(v, IntArray.Vector_1(2), FloatArray.Vector_2(77.0, 88.0)) WHERE id = 1")
        .unwrap();
    let r = s
        .query("SELECT FloatArray.Item_1(v, 1), FloatArray.Item_1(v, 2), FloatArray.Item_1(v, 3), FloatArray.Item_1(v, 4) FROM T WHERE id = 1")
        .unwrap();
    assert_eq!(
        r.rows[0],
        vec![
            Value::F64(11.0),
            Value::F64(77.0),
            Value::F64(88.0),
            Value::F64(14.0)
        ]
    );
    // Out-of-bounds patches surface the UDF's typed error.
    let err = s
        .execute("UPDATE T SET v = FloatArray.ArrayUpdate(v, IntArray.Vector_1(4), FloatArray.Vector_2(1.0, 2.0)) WHERE id = 1")
        .unwrap_err();
    assert!(matches!(err, EngineError::Array(_)), "got {err:?}");
}

#[test]
fn dml_crash_recovery_through_sql() {
    // Statement-level autocommit: a crash mid-UPDATE rolls back to the
    // state before the statement; a crash after it keeps it.
    let mut s = session(20);
    let pre = id_tag_rows(&mut s);
    let pre_image = s.db().store.crash_image();

    // Crash with only part of the UPDATE's log durable.
    s.db_mut().store.arm_fail(FailPlan {
        allow_records: 3,
        torn_bytes: 0,
    });
    s.execute("UPDATE T SET tag = tag + 500 WHERE id < 10")
        .unwrap();
    let crashed = s.db().store.crash_image();
    let db = Database::recover(&crashed).unwrap();
    let mut rec = Session::with_hosting(db, HostingModel::free());
    assert_eq!(
        id_tag_rows(&mut rec),
        pre,
        "partial statement must roll back"
    );

    // Replay the same statement without a crash: it persists.
    let db = Database::recover(&pre_image).unwrap();
    let mut s2 = Session::with_hosting(db, HostingModel::free());
    s2.execute("UPDATE T SET tag = tag + 500 WHERE id < 10")
        .unwrap();
    let post = id_tag_rows(&mut s2);
    assert_ne!(post, pre);
    let db = Database::recover(&s2.db().store.crash_image()).unwrap();
    let mut rec = Session::with_hosting(db, HostingModel::free());
    assert_eq!(
        id_tag_rows(&mut rec),
        post,
        "committed statement must survive"
    );
}

#[test]
fn dml_error_matrix() {
    let mut s = session(5);
    // Unknown table.
    let err = s.execute("UPDATE nope SET tag = 1").unwrap_err();
    assert!(matches!(err, EngineError::Unknown(_)), "got {err:?}");
    let err = s.execute("DELETE FROM nope").unwrap_err();
    assert!(matches!(err, EngineError::Unknown(_)), "got {err:?}");
    // Unknown SET column.
    let err = s.execute("UPDATE T SET nocol = 1").unwrap_err();
    assert!(matches!(err, EngineError::Unknown(_)), "got {err:?}");
    // Non-boolean WHERE.
    let err = s.execute("DELETE FROM T WHERE tag").unwrap_err();
    assert!(matches!(err, EngineError::Type(_)), "got {err:?}");
    let err = s.execute("UPDATE T SET tag = 0 WHERE id + 1").unwrap_err();
    assert!(matches!(err, EngineError::Type(_)), "got {err:?}");
    // A column set twice.
    let err = s.execute("UPDATE T SET tag = 1, tag = 2").unwrap_err();
    assert!(matches!(err, EngineError::Unsupported(_)), "got {err:?}");
    // INT overflow from a BIGINT expression.
    let err = s.execute("UPDATE T SET tag = 3000000000").unwrap_err();
    assert!(matches!(err, EngineError::Type(_)), "got {err:?}");
    // A failed statement must leave the table untouched.
    assert_eq!(
        id_tag_rows(&mut s),
        vec![(0, 0), (1, 1), (2, 2), (3, 3), (4, 4)]
    );
}

// --- Model-based differential test ---------------------------------------

#[derive(Debug, Clone)]
enum Op {
    /// Insert key `k` (skipped when present).
    Insert(i64),
    /// `UPDATE T SET tag = <val> WHERE id = <k>`
    Point(i64, i32),
    /// `UPDATE T SET tag = tag + <val> WHERE id % 3 = <k % 3>`
    Sweep(i64, i32),
    /// `DELETE FROM T WHERE id = <k>`
    Delete(i64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0u8..4, 0i64..24, -1000i32..1000).prop_map(|(kind, k, val)| match kind {
        0 => Op::Insert(k),
        1 => Op::Point(k, val),
        2 => Op::Sweep(k, val),
        _ => Op::Delete(k),
    })
}

fn apply_sql(s: &mut Session, op: &Op) -> u64 {
    match op {
        Op::Insert(k) => {
            let mut db = s.db_mut();
            if let Some(t) = db.table("T") {
                let t = t.clone();
                if t.get(&mut db.store, *k).unwrap().is_some() {
                    return 0;
                }
            }
            let arr = build::short_vector(&[*k as f64]).unwrap();
            db.insert(
                "T",
                *k,
                &[
                    RowValue::I64(*k),
                    RowValue::I32(*k as i32),
                    RowValue::Bytes(arr.into_blob()),
                ],
            )
            .unwrap();
            db.commit();
            1
        }
        Op::Point(k, val) => {
            let r = s
                .execute(&format!("UPDATE T SET tag = {val} WHERE id = {k}"))
                .unwrap();
            r[0].stats.rows_affected
        }
        Op::Sweep(k, val) => {
            let r = s
                .execute(&format!(
                    "UPDATE T SET tag = tag + {val} WHERE id % 3 = {}",
                    k.rem_euclid(3)
                ))
                .unwrap();
            r[0].stats.rows_affected
        }
        Op::Delete(k) => {
            let r = s.execute(&format!("DELETE FROM T WHERE id = {k}")).unwrap();
            r[0].stats.rows_affected
        }
    }
}

fn apply_model(m: &mut BTreeMap<i64, i32>, op: &Op) -> u64 {
    match op {
        Op::Insert(k) => {
            if m.contains_key(k) {
                0
            } else {
                m.insert(*k, *k as i32);
                1
            }
        }
        Op::Point(k, val) => {
            if let Some(t) = m.get_mut(k) {
                *t = *val;
                1
            } else {
                0
            }
        }
        Op::Sweep(k, val) => {
            let mut n = 0;
            for (id, t) in m.iter_mut() {
                if id.rem_euclid(3) == k.rem_euclid(3) {
                    *t = t.wrapping_add(*val);
                    n += 1;
                }
            }
            n
        }
        Op::Delete(k) => u64::from(m.remove(k).is_some()),
    }
}

proptest! {
    #[test]
    fn dml_matches_in_memory_model(
        ops in vec(op_strategy(), 1..16),
        dop_pick in any::<u8>(),
    ) {
        let dop = [1usize, 2, 4, 8][(dop_pick % 4) as usize];
        let mut s = session(8);
        s.set_dop(dop);
        let mut model: BTreeMap<i64, i32> = (0..8).map(|k| (k, k as i32)).collect();
        for op in &ops {
            let got = apply_sql(&mut s, op);
            let want = apply_model(&mut model, op);
            prop_assert!(
                got == want,
                "rows_affected {} != model {} for {:?} at dop {}",
                got, want, op, dop
            );
            let rows = id_tag_rows(&mut s);
            let expect: Vec<(i64, i32)> = model.iter().map(|(&k, &t)| (k, t)).collect();
            prop_assert!(
                rows == expect,
                "table {:?} != model {:?} after {:?} at dop {}",
                rows, expect, op, dop
            );
        }
        // The final durable image round-trips through recovery.
        let db = Database::recover(&s.db().store.crash_image()).unwrap();
        let mut rec = Session::with_hosting(db, HostingModel::free());
        let rows = id_tag_rows(&mut rec);
        let expect: Vec<(i64, i32)> = model.iter().map(|(&k, &t)| (k, t)).collect();
        prop_assert!(rows == expect, "recovered {rows:?} != model {expect:?}");
    }
}
