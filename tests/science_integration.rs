//! Integration across the science crates and the database layers: each
//! §2 use case run end to end on top of the storage engine and the array
//! type.

use sqlarray::prelude::*;
use sqlarray::spectra::{linear_grid, synth_survey, SpectrumIndex, SynthParams};
use sqlarray::turbulence::{FetchMode, PartitionSpec, Scheme, SyntheticField, TurbulenceDb};

#[test]
fn turbulence_service_round_trip_through_storage() {
    let mut store = PageStore::new();
    let field = SyntheticField::new(31, 10, 3);
    let spec = PartitionSpec::new(32, 8, 4);
    let db = TurbulenceDb::build(&mut store, &field, spec).unwrap();

    // Batch query straddling many cubes; streamed stencils must match the
    // analytic field closely with the 8-point kernel.
    let particles: Vec<[f64; 3]> = (0..200)
        .map(|i| {
            let t = i as f64 * 0.037;
            [
                (0.05 + 0.83 * t).rem_euclid(1.0),
                (0.95 - 0.61 * t).rem_euclid(1.0),
                (0.42 + 0.17 * t).rem_euclid(1.0),
            ]
        })
        .collect();
    let vels = db
        .query_particles(
            &mut store,
            &particles,
            Scheme::Lagrange8,
            FetchMode::PartialRead,
        )
        .unwrap();
    let mut worst = 0.0f64;
    for (v, p) in vels.iter().zip(&particles) {
        let truth = field.velocity(*p);
        for c in 0..3 {
            worst = worst.max((v[c] - truth[c]).abs());
        }
    }
    assert!(worst < 1e-3, "worst interpolation error {worst}");

    // The blobs live out of page: the data table itself is tiny.
    let table = db.table().clone();
    assert!(table.data_pages(&mut store).unwrap() <= 2);
    assert_eq!(table.row_count(), 64);
}

#[test]
fn spectra_survey_stored_as_blobs_and_searched() {
    // Store a synthetic survey in a table (flux blobs + redshift), read
    // it back, build the PCA index from the decoded rows, and query.
    let params = SynthParams {
        bins: 256,
        mask_prob: 0.01,
        ..SynthParams::default()
    };
    let survey = synth_survey(3, 40, &[0.1], &params);

    let mut db = Database::new();
    db.create_table(
        "spec",
        Schema::new(&[
            ("id", ColType::I64),
            ("z", ColType::F64),
            ("flux", ColType::Blob),
        ]),
    )
    .unwrap();
    for (i, s) in survey.iter().enumerate() {
        let arrays = s.to_arrays().unwrap();
        db.insert(
            "spec",
            i as i64,
            &[
                RowValue::I64(i as i64),
                RowValue::F64(s.redshift),
                RowValue::Bytes(arrays.flux.into_blob()),
            ],
        )
        .unwrap();
    }

    // Read back and verify blob payloads decode to the original flux.
    let table = db.table("spec").unwrap().clone();
    let mut restored = Vec::new();
    for (i, s) in survey.iter().enumerate() {
        let row = table.get(&mut db.store, i as i64).unwrap().unwrap();
        let blob = row[2].blob_bytes(&mut db.store).unwrap();
        let arr = sqlarray::array::SqlArray::from_blob(blob).unwrap();
        let flux: Vec<f64> = arr.to_vec().unwrap();
        assert_eq!(flux, s.flux, "row {i}");
        restored.push((i as u64, s.clone()));
    }

    let grid = linear_grid(4200.0, 8800.0, 96);
    let index = SpectrumIndex::build(&restored, &grid, 5).unwrap();
    let hits = index.similar(&survey[4], 3).unwrap();
    assert_eq!(hits[0].id, 4, "self-match first");
}

#[test]
fn nbody_density_grid_ffts_identically_in_and_out_of_the_engine() {
    use sqlarray::nbody::{DensityGrid, SynthSim};
    let sim = SynthSim {
        halos: 6,
        halo_particles: 100,
        background: 500,
        ..SynthSim::default()
    };
    let grid = DensityGrid::assign_cic(&sim.snapshot(0).particles, 16);
    let rho = grid.to_array();

    // Library path.
    let lib_ft = sqlarray::engine::fft_array(&rho).unwrap();

    // Engine UDF path.
    let mut session = Session::with_hosting(Database::new(), HostingModel::free());
    session.set_var("rho", Value::Bytes(rho.as_blob().to_vec()));
    let via_sql = session
        .query_scalar("SELECT FloatArrayMax.FFTForward(@rho)")
        .unwrap();
    let sql_ft = via_sql.as_array().unwrap();
    assert_eq!(lib_ft, sql_ft);

    // DC bin equals the total mass.
    let dc = sql_ft.item(&[0, 0, 0]).unwrap().as_c64();
    assert!((dc.re - grid.total_mass()).abs() < 1e-6 * grid.total_mass());
}

#[test]
fn octree_buckets_store_as_array_blobs() {
    use sqlarray::nbody::{Octree, SynthSim};
    // The §2.3 storage design: a few thousand particles per bucket, each
    // bucket one row holding a [n, 7] array (id, pos, vel as columns…
    // here: 7 doubles per particle: id, 3 pos, 3 vel).
    let sim = SynthSim::default();
    let tree = Octree::build(sim.snapshot(0).particles, 256);

    let mut db = Database::new();
    db.create_table(
        "buckets",
        Schema::new(&[("zkey", ColType::I64), ("pts", ColType::Blob)]),
    )
    .unwrap();

    let parts = tree.particles();
    let mut stored = 0usize;
    let mut cursor = 0usize;
    let mut key = 0i64;
    while cursor < parts.len() {
        let end = (cursor + 256).min(parts.len());
        let chunk = &parts[cursor..end];
        let n = chunk.len();
        let arr = sqlarray::array::SqlArray::from_fn(StorageClass::Max, &[n, 7], |idx| -> f64 {
            let p = &chunk[idx[0]];
            match idx[1] {
                0 => p.id as f64,
                1..=3 => p.pos[idx[1] - 1],
                _ => p.vel[idx[1] - 4],
            }
        })
        .unwrap();
        db.insert(
            "buckets",
            key,
            &[RowValue::I64(key), RowValue::Bytes(arr.into_blob())],
        )
        .unwrap();
        stored += n;
        key += 1;
        cursor = end;
    }
    assert_eq!(stored, parts.len());

    // Retrieve one bucket and pull a column vector out with Subarray —
    // "retrieving information about individual particles will require
    // array-based data access" (§2.3).
    let table = db.table("buckets").unwrap().clone();
    let row = table.get(&mut db.store, 0).unwrap().unwrap();
    let arr =
        sqlarray::array::SqlArray::from_blob(row[1].blob_bytes(&mut db.store).unwrap()).unwrap();
    let n = arr.dims()[0];
    let xs = sqlarray::array::ops::subarray::subarray(&arr, &[0, 1], &[n, 1], true).unwrap();
    assert_eq!(xs.dims(), &[n]);
    let first_x = xs.item(&[0]).unwrap().as_f64().unwrap();
    assert!((first_x - parts[0].pos[0]).abs() < 1e-12);
}
