//! Executor and session edge cases across the public API.

use sqlarray::prelude::*;

fn tiny_db(rows: i64) -> Database {
    let mut db = Database::new();
    db.create_table(
        "t",
        Schema::new(&[("id", ColType::I64), ("x", ColType::F64)]),
    )
    .unwrap();
    for k in 0..rows {
        db.insert("t", k, &[RowValue::I64(k), RowValue::F64(k as f64)])
            .unwrap();
    }
    db
}

#[test]
fn top_caps_rows_and_stops_the_scan_early() {
    let mut s = Session::with_hosting(tiny_db(1000), HostingModel::free());
    let r = s.query("SELECT TOP 7 id FROM t").unwrap();
    assert_eq!(r.rows.len(), 7);
    // The scan must not have visited all 1000 rows.
    assert!(
        r.stats.rows_scanned < 1000,
        "scanned {} rows for TOP 7",
        r.stats.rows_scanned
    );
}

#[test]
fn row_limit_guards_unbounded_projections() {
    let mut s = Session::with_hosting(tiny_db(500), HostingModel::free());
    s.row_limit = 100;
    let r = s.query("SELECT id FROM t").unwrap();
    assert_eq!(r.rows.len(), 100);
}

#[test]
fn where_errors_inside_the_scan_surface_cleanly() {
    let mut s = Session::with_hosting(tiny_db(10), HostingModel::free());
    // Division by zero mid-scan must abort with an error, not panic.
    let err = s.query("SELECT id FROM t WHERE 1 / (id - 5) > 0");
    assert!(err.is_err());
}

#[test]
fn scalar_accessor_rejects_multi_row_results() {
    let mut s = Session::with_hosting(tiny_db(3), HostingModel::free());
    assert!(s.query_scalar("SELECT id FROM t").is_err());
    assert_eq!(
        s.query_scalar("SELECT COUNT(*) FROM t").unwrap(),
        Value::I64(3)
    );
}

#[test]
fn stats_expose_cpu_percent_and_rates() {
    let mut s = Session::with_hosting(tiny_db(2000), HostingModel::free());
    s.db().store.clear_cache();
    let r = s.query("SELECT SUM(x) FROM t").unwrap();
    let st = &r.stats;
    assert!(st.exec_seconds() >= st.cpu_seconds.min(st.sim_io_seconds));
    assert!((0.0..=100.0).contains(&st.cpu_percent()));
    assert!(st.io_mb_per_sec() >= 0.0);
    assert_eq!(st.rows_scanned, 2000);
}

#[test]
fn group_by_with_uda_and_builtin_mix() {
    let mut db = Database::new();
    db.create_table(
        "v",
        Schema::new(&[
            ("id", ColType::I64),
            ("g", ColType::I64),
            ("a", ColType::Blob),
        ]),
    )
    .unwrap();
    for k in 0..12 {
        let arr = build::short_vector(&[k as f64, -(k as f64)]).unwrap();
        db.insert(
            "v",
            k,
            &[
                RowValue::I64(k),
                RowValue::I64(k % 3),
                RowValue::Bytes(arr.into_blob()),
            ],
        )
        .unwrap();
    }
    let mut s = Session::with_hosting(db, HostingModel::free());
    let r = s
        .query("SELECT g, COUNT(*), FloatArrayMax.VectorAvg(a) FROM v GROUP BY g")
        .unwrap();
    assert_eq!(r.rows.len(), 3);
    for row in &r.rows {
        assert_eq!(row[1], Value::I64(4));
        let avg = row[2].as_array().unwrap();
        let vals = avg.to_vec::<f64>().unwrap();
        assert!((vals[0] + vals[1]).abs() < 1e-12, "components mirror");
    }
}

#[test]
fn variables_persist_across_execute_calls() {
    let mut s = Session::with_hosting(Database::new(), HostingModel::free());
    s.execute("DECLARE @x FLOAT = 2.5").unwrap();
    s.execute("SET @x = @x * 2").unwrap();
    assert_eq!(s.query_scalar("SELECT @x").unwrap(), Value::F64(5.0));
    // set_var/var round trip for host-injected values.
    s.set_var("blob", Value::Bytes(vec![1, 2, 3]));
    assert_eq!(s.var("BLOB"), Some(&Value::Bytes(vec![1, 2, 3])));
}

#[test]
fn empty_table_aggregates() {
    let mut s = Session::with_hosting(tiny_db(0), HostingModel::free());
    let r = s
        .query("SELECT COUNT(*), SUM(x), MIN(x), AVG(x) FROM t")
        .unwrap();
    assert_eq!(r.rows[0][0], Value::I64(0));
    assert_eq!(r.rows[0][1], Value::Null);
    assert_eq!(r.rows[0][2], Value::Null);
    assert_eq!(r.rows[0][3], Value::Null);
}

#[test]
fn hosting_counters_reset_per_query() {
    let mut s = Session::new(tiny_db(50));
    s.execute("DECLARE @a VARBINARY(100) = FloatArray.Vector_2(1.0, 2.0)")
        .unwrap();
    let r1 = s
        .query("SELECT SUM(dbo.EmptyFunction(x, 0)) FROM t")
        .unwrap();
    assert_eq!(r1.stats.udf_calls, 50);
    let r2 = s.query("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(r2.stats.udf_calls, 0, "counter must reset between queries");
}

#[test]
fn sugar_composes_with_group_by() {
    let mut db = Database::new();
    db.create_table(
        "m",
        Schema::new(&[("id", ColType::I64), ("v", ColType::Blob)]),
    )
    .unwrap();
    for k in 0..8 {
        let arr = build::short_vector(&[k as f64, (k * k) as f64]).unwrap();
        db.insert(
            "m",
            k,
            &[RowValue::I64(k), RowValue::Bytes(arr.into_blob())],
        )
        .unwrap();
    }
    let mut s = Session::with_hosting(db, HostingModel::free());
    let types = sqlarray::engine::SugarTypes::new();
    let r = s
        .query_sugar("SELECT id % 2, SUM(v[1]) FROM m GROUP BY id % 2", &types)
        .unwrap();
    assert_eq!(r.rows.len(), 2);
    let even: f64 = [0.0f64, 4.0, 16.0, 36.0].iter().sum();
    let odd: f64 = [1.0f64, 9.0, 25.0, 49.0].iter().sum();
    assert_eq!(r.rows[0][1], Value::F64(even));
    assert_eq!(r.rows[1][1], Value::F64(odd));
}
