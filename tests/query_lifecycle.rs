//! Query-lifecycle robustness: the kill matrix.
//!
//! One shared engine must survive anything a statement does to it. These
//! tests abort queries at **every** lifecycle checkpoint (enumerated by a
//! dry run, then tripped one ordinal at a time) across DOP {1,2,4,8} and
//! both execution paths (row-at-a-time and vectorized), and assert the
//! engine stays fully usable afterwards: follow-up queries bit-identical
//! to an undisturbed replay, WAL bytes and recovery images untouched, no
//! scheduler-ticket or pool-accounting leaks. Around the matrix sit the
//! targeted aborts — asynchronous cancellation of a long scan, statement
//! timeouts, memory-budget rejections, contained worker panics, bounded
//! transient-read-fault retries, and typed admission-control refusals —
//! plus the exhaustive error-taxonomy pins the future serving layer
//! depends on.

use sqlarray_bench::rows_bit_identical;
use sqlarray_core::build;
use sqlarray_engine::{Database, Engine, EngineConfig, EngineError, HostingModel, Session, Value};
use sqlarray_storage::{ColType, RowValue, Schema, StorageError, MAX_READ_RETRIES};
use std::thread;
use std::time::{Duration, Instant};

const DOPS: [usize; 4] = [1, 2, 4, 8];

fn schema() -> Schema {
    Schema::new(&[
        ("id", ColType::I64),
        ("tag", ColType::I32),
        ("v", ColType::Blob),
    ])
}

/// `T(id BIGINT, tag INT, v VARBINARY(MAX))` with `rows` committed rows;
/// row `k` has `tag = k` and a 5-element float vector seeded by `k`.
fn seeded_db(rows: i64) -> Database {
    let mut db = Database::new();
    db.create_table("T", schema()).unwrap();
    for k in 0..rows {
        let comps: Vec<f64> = (0..5).map(|i| k as f64 * 10.0 + i as f64).collect();
        let arr = build::short_vector(&comps).unwrap();
        db.insert(
            "T",
            k,
            &[
                RowValue::I64(k),
                RowValue::I32(k as i32),
                RowValue::Bytes(arr.into_blob()),
            ],
        )
        .unwrap();
    }
    db.commit();
    db
}

/// The undisturbed replay: a pristine serial session over identical data.
fn baseline_rows(rows: i64, queries: &[&str]) -> Vec<Vec<Vec<Value>>> {
    let mut s = Session::with_hosting(seeded_db(rows), HostingModel::free());
    s.set_dop(1);
    queries.iter().map(|q| s.query(q).unwrap().rows).collect()
}

// --- The kill matrix ------------------------------------------------------

/// Statements the matrix kills: grouped aggregation (per-group state,
/// merge phase) and filtered expression projection (row emission) — the
/// two executor shapes with distinct abort surfaces.
const MATRIX_QUERIES: &[&str] = &[
    "SELECT id % 3, COUNT(*), SUM(tag) FROM T GROUP BY id % 3",
    "SELECT id, tag + 1 FROM T WHERE id % 2 = 0",
];

/// For every matrix query × DOP: a `u64::MAX` dry run counts the
/// statement's lifecycle checks, then each ordinal `1..=N` is armed as a
/// trip point. Every kill must surface `EngineError::Cancelled`, leak no
/// scheduler tickets, and leave the engine answering the same statement
/// bit-identically to the undisturbed replay. The whole massacre must
/// leave the WAL byte-for-byte untouched.
fn kill_matrix(batch_rows: usize) {
    const ROWS: i64 = 300;
    let engine = Engine::new(seeded_db(ROWS));
    let wal_before = engine.db().store.crash_image().wal;
    let want = baseline_rows(ROWS, MATRIX_QUERIES);

    for (qi, q) in MATRIX_QUERIES.iter().enumerate() {
        for dop in DOPS {
            let mut s = engine.session_with_hosting(HostingModel::free());
            s.set_dop(dop);
            s.set_batch_rows(batch_rows);

            // Dry run: count this configuration's checkpoints without
            // tripping any (and prove counting doesn't perturb results).
            s.set_cancel_after_checks(Some(u64::MAX));
            let dry = s.query(q).unwrap();
            assert!(
                rows_bit_identical(&dry.rows, &want[qi]),
                "dry run diverges at dop {dop}: `{q}`"
            );
            let points = s.last_query_ctx().unwrap().checks();
            assert!(points > 0, "no lifecycle checks at dop {dop}: `{q}`");

            for k in 1..=points {
                s.set_cancel_after_checks(Some(k));
                let err = s.query(q).unwrap_err();
                assert_eq!(
                    err,
                    EngineError::Cancelled,
                    "trip {k}/{points} dop {dop} batch {batch_rows}: `{q}`"
                );
                // No ticket leak: the aborted statement fully released
                // its admission grant.
                assert_eq!(engine.sched().in_flight(), 0, "leaked workers");
                assert_eq!(engine.sched().active(), 0, "leaked active query");
                // Post-abort health: the same session, disarmed, answers
                // the same statement exactly like the undisturbed replay.
                s.set_cancel_after_checks(None);
                let again = s.query(q).unwrap();
                assert!(
                    rows_bit_identical(&again.rows, &want[qi]),
                    "post-abort divergence after trip {k}/{points} dop {dop}: `{q}`"
                );
            }
        }
    }

    // A read-only massacre leaves no durability trace, and the engine's
    // crash image still recovers to the right answers.
    let img = engine.db().store.crash_image();
    assert_eq!(img.wal, wal_before, "kills perturbed the WAL");
    let mut recovered =
        Session::with_hosting(Database::recover(&img).unwrap(), HostingModel::free());
    for (qi, q) in MATRIX_QUERIES.iter().enumerate() {
        let rows = recovered.query(q).unwrap().rows;
        assert!(
            rows_bit_identical(&rows, &want[qi]),
            "recovery image diverges on `{q}`"
        );
    }
}

#[test]
fn kill_matrix_row_path() {
    kill_matrix(0);
}

#[test]
fn kill_matrix_batch_path() {
    kill_matrix(64);
}

// --- Asynchronous cancellation -------------------------------------------

/// Cancelling a long scan from another thread stops it within one batch
/// worth of work — not at the end of the table.
#[test]
fn cancelled_long_scan_stops_promptly() {
    const ROWS: i64 = 4000;
    let mut s = Session::with_hosting(seeded_db(ROWS), HostingModel::free());
    s.set_dop(4);
    // ~200 µs of spin per row ≈ 0.8 s of mandatory wall clock for a full
    // scan — the cancel below must beat that by a wide margin.
    let slow = "SELECT COUNT(*), SUM(dbo.SpinUs(tag, 200)) FROM T";

    let handle = s.cancel_handle();
    let killer = thread::spawn(move || {
        thread::sleep(Duration::from_millis(40));
        handle.cancel();
    });
    let t0 = Instant::now();
    let err = s.query(slow).unwrap_err();
    let elapsed = t0.elapsed();
    killer.join().unwrap();

    assert_eq!(err, EngineError::Cancelled);
    assert!(
        elapsed < Duration::from_millis(600),
        "cancel took {elapsed:?}, the full scan needs ≥ 800 ms of spin"
    );
    // The abort reports the partial work it had done.
    let partial = s
        .partial_stats()
        .expect("aborted scan reports partial stats");
    assert!(
        partial.rows_scanned < ROWS as u64,
        "scan ran to completion ({} rows) despite the cancel",
        partial.rows_scanned
    );
    // The session consumed the cancel: the next statement runs.
    assert_eq!(
        s.query_scalar("SELECT COUNT(*) FROM T").unwrap(),
        Value::I64(ROWS)
    );
}

// --- Statement timeout ----------------------------------------------------

#[test]
fn statement_timeout_aborts_with_typed_error_and_partial_stats() {
    const ROWS: i64 = 2000;
    let mut s = Session::with_hosting(seeded_db(ROWS), HostingModel::free());
    s.set_dop(2);
    s.set_statement_timeout_ms(Some(40));
    let err = s
        .query("SELECT SUM(dbo.SpinUs(tag, 200)) FROM T")
        .unwrap_err();
    assert_eq!(err, EngineError::Timeout { timeout_ms: 40 });
    let partial = s.partial_stats().expect("timeout reports partial stats");
    assert!(partial.rows_scanned < ROWS as u64);

    // Clearing the timeout restores normal service on the same session.
    s.set_statement_timeout_ms(None);
    assert_eq!(
        s.query_scalar("SELECT COUNT(*) FROM T").unwrap(),
        Value::I64(ROWS)
    );
    // 0 means "no timeout", matching the env-knob convention.
    s.set_statement_timeout_ms(Some(0));
    assert_eq!(s.statement_timeout_ms(), None);
}

// --- Memory budget --------------------------------------------------------

/// Large-blob table for the LOB-materialization charge: each `v` is a
/// ~16 KB float vector, past the in-row threshold, so scans yield lazy
/// LOB references that materialize through the charged path.
fn lob_db(rows: i64) -> Database {
    let mut db = Database::new();
    db.create_table(
        "B",
        Schema::new(&[("id", ColType::I64), ("v", ColType::Blob)]),
    )
    .unwrap();
    for k in 0..rows {
        let comps: Vec<f64> = (0..2000).map(|i| (k * 2000 + i) as f64).collect();
        let arr = build::max_vector(&comps).unwrap();
        db.insert(
            "B",
            k,
            &[RowValue::I64(k), RowValue::Bytes(arr.into_blob())],
        )
        .unwrap();
    }
    db.commit();
    db
}

#[test]
fn memory_budget_rejects_each_charging_site_and_only_those() {
    const ROWS: i64 = 400;
    let mut s = Session::with_hosting(seeded_db(ROWS), HostingModel::free());
    let projection = "SELECT id, tag FROM T";
    let grouped = "SELECT id % 3, COUNT(*), SUM(tag) FROM T GROUP BY id % 3";
    let want = baseline_rows(ROWS, &[projection, grouped]);

    // A 1-byte budget trips on the first real allocation — but a
    // row-at-a-time projection allocates nothing the accountant tracks,
    // so it must still pass: the budget meters memory, not progress.
    s.set_query_mem_bytes(1);
    s.set_batch_rows(0);
    let r = s.query(projection).unwrap();
    assert!(rows_bit_identical(&r.rows, &want[0]));

    // Aggregation state charges per group.
    let err = s.query(grouped).unwrap_err();
    match err {
        EngineError::ResourceExhausted { used, limit } => {
            assert_eq!(limit, 1);
            assert!(used > limit);
        }
        other => panic!("expected ResourceExhausted, got {other:?}"),
    }

    // Batch lane growth charges on the vectorized path.
    s.set_batch_rows(64);
    let err = s.query(projection).unwrap_err();
    assert!(
        matches!(err, EngineError::ResourceExhausted { .. }),
        "batch lanes went unmetered: {err:?}"
    );

    // A generous budget lets both through, bit-identically, and the
    // charges are observable after the fact.
    s.set_query_mem_bytes(64 << 20);
    let r = s.query(projection).unwrap();
    assert!(rows_bit_identical(&r.rows, &want[0]));
    assert!(r.stats.batches > 0, "vectorized path did not engage");
    assert!(s.last_query_ctx().unwrap().mem_used() > 0);
    let r = s.query(grouped).unwrap();
    assert!(rows_bit_identical(&r.rows, &want[1]));
}

#[test]
fn lob_materialization_is_charged_against_the_budget() {
    let mut s = Session::with_hosting(lob_db(16), HostingModel::free());
    s.set_batch_rows(0);
    let q = "SELECT SUM(dbo.EmptyFunction(v, 0)) FROM B";
    let want = s.query(q).unwrap().rows;

    // Materializing even one 8 KB blob blows a 1 KB budget.
    s.set_query_mem_bytes(1024);
    let err = s.query(q).unwrap_err();
    assert!(
        matches!(err, EngineError::ResourceExhausted { .. }),
        "LOB materialization went unmetered: {err:?}"
    );

    // Unlimited again: same answer, and the accountant saw the blobs.
    s.set_query_mem_bytes(0);
    let r = s.query(q).unwrap();
    assert!(rows_bit_identical(&r.rows, &want));
    assert!(
        s.last_query_ctx().unwrap().mem_used() >= 16 * 16000,
        "charged only {} bytes for 16 × 16 KB blobs",
        s.last_query_ctx().unwrap().mem_used()
    );
}

// --- Panic containment ----------------------------------------------------

#[test]
fn worker_panics_are_contained_at_every_dop_and_path() {
    const ROWS: i64 = 600;
    let engine = Engine::new(seeded_db(ROWS));
    let wal_before = engine.db().store.crash_image().wal;

    for dop in DOPS {
        for batch_rows in [0usize, 64] {
            let mut s = engine.session_with_hosting(HostingModel::free());
            s.set_dop(dop);
            s.set_batch_rows(batch_rows);
            let err = s
                .query("SELECT SUM(dbo.PanicIf(id, 300)) FROM T")
                .unwrap_err();
            match err {
                EngineError::WorkerPanicked(msg) => {
                    assert!(msg.contains("injected panic"), "lost the payload: {msg}")
                }
                other => panic!("expected WorkerPanicked, got {other:?}"),
            }
            // The panic folded its accounting back: no ticket leak, and
            // the shared lock is not poisoned — the same engine keeps
            // serving this session and fresh ones.
            assert_eq!(engine.sched().in_flight(), 0);
            assert_eq!(engine.sched().active(), 0);
            assert_eq!(
                s.query_scalar("SELECT COUNT(*) FROM T").unwrap(),
                Value::I64(ROWS),
                "engine unusable after a contained panic (dop {dop}, batch {batch_rows})"
            );
        }
    }
    assert_eq!(
        engine.db().store.crash_image().wal,
        wal_before,
        "a read-only panic perturbed the WAL"
    );
}

#[test]
fn aborted_dml_match_phase_leaves_no_durability_trace() {
    const ROWS: i64 = 200;
    let engine = Engine::new(seeded_db(ROWS));
    let mut s = engine.session_with_hosting(HostingModel::free());
    let wal_before = engine.db().store.crash_image().wal;

    // A cancelled match phase commits nothing: no page, no WAL byte.
    s.set_cancel_after_checks(Some(5));
    let err = s
        .execute("UPDATE T SET tag = tag + 1 WHERE tag >= 0")
        .unwrap_err();
    assert_eq!(err, EngineError::Cancelled);
    s.set_cancel_after_checks(None);
    assert_eq!(engine.db().store.crash_image().wal, wal_before);
    let partial = s
        .partial_stats()
        .expect("aborted DML reports partial stats");
    assert_eq!(partial.rows_affected, 0);

    // The engine still commits real DML afterwards, and the image
    // recovers to exactly that one statement's effect.
    s.execute("UPDATE T SET tag = 0 - tag WHERE id >= 0")
        .unwrap();
    let img = engine.db().store.crash_image();
    assert!(img.wal.len() > wal_before.len(), "commit left no WAL trace");
    let mut recovered =
        Session::with_hosting(Database::recover(&img).unwrap(), HostingModel::free());
    let sum: f64 = (0..ROWS).map(|k| k as f64).sum();
    assert_eq!(
        recovered.query_scalar("SELECT SUM(tag) FROM T").unwrap(),
        Value::F64(-sum)
    );
}

// --- Transient read faults ------------------------------------------------

#[test]
fn transient_read_faults_retry_bounded_and_deterministically() {
    const ROWS: i64 = 600;
    let mut s = Session::with_hosting(seeded_db(ROWS), HostingModel::free());
    s.set_dop(4);
    let q = "SELECT COUNT(*), SUM(tag), MIN(tag), MAX(tag) FROM T";
    let want = s.query(q).unwrap().rows;

    // Four faults at two per read: absorbed by the bounded retry path,
    // counted, answer unchanged.
    s.db().store.clear_cache();
    s.db().store.arm_read_faults(4, 2);
    let r = s.query(q).unwrap();
    assert!(rows_bit_identical(&r.rows, &want));
    assert_eq!(r.stats.io.transient_retries, 4, "{:?}", r.stats.io);
    assert_eq!(s.db().store.read_faults_remaining(), 0);

    // A burst past MAX_READ_RETRIES exhausts one read's budget and
    // surfaces the typed storage error through the engine.
    s.db().store.clear_cache();
    s.db()
        .store
        .arm_read_faults(u64::from(MAX_READ_RETRIES) * 2 + 2, MAX_READ_RETRIES + 1);
    let err = s.query(q).unwrap_err();
    match err {
        EngineError::Storage(msg) => {
            assert!(msg.contains("transient read fault"), "{msg}")
        }
        other => panic!("expected a storage error, got {other:?}"),
    }

    // Disarm; the same session recovers to the same answer.
    s.db().store.arm_read_faults(0, 0);
    s.db().store.clear_cache();
    let r = s.query(q).unwrap();
    assert!(rows_bit_identical(&r.rows, &want));
}

// --- Admission control under overload -------------------------------------

#[test]
fn overload_is_refused_and_timed_out_with_typed_errors() {
    const ROWS: i64 = 400;
    let engine = Engine::with_config(
        seeded_db(ROWS),
        EngineConfig {
            worker_budget: 1,
            admission_queue_cap: 1,
            ..EngineConfig::default()
        },
    );
    let agg = "SELECT COUNT(*), SUM(tag) FROM T";
    let want = baseline_rows(ROWS, &[agg]);

    thread::scope(|sc| {
        // The holder pins the lone budgeted worker with ~0.8 s of
        // mandatory spin; it is cancelled once the assertions are done.
        let mut hold_s = engine.session_with_hosting(HostingModel::free());
        hold_s.set_dop(1);
        let hold_cancel = hold_s.cancel_handle();
        let holder = sc.spawn(move || {
            let err = hold_s
                .query("SELECT SUM(dbo.SpinUs(tag, 2000)) FROM T")
                .unwrap_err();
            assert_eq!(err, EngineError::Cancelled);
        });
        while engine.sched().in_flight() == 0 {
            thread::yield_now();
        }

        // A queued statement's deadline expires before it ever runs:
        // AdmissionTimeout, not Timeout.
        let mut timed = engine.session_with_hosting(HostingModel::free());
        timed.set_dop(1);
        timed.set_statement_timeout_ms(Some(30));
        let err = timed.query(agg).unwrap_err();
        assert_eq!(err, EngineError::AdmissionTimeout { timeout_ms: 30 });

        // Fill the queue (depth cap 1) with a patient statement…
        let queued_before = engine.stats().sched.queued;
        let mut parked_s = engine.session_with_hosting(HostingModel::free());
        parked_s.set_dop(1);
        let parked = sc.spawn(move || parked_s.query(agg).map(|r| r.rows));
        while engine.stats().sched.queued == queued_before {
            thread::yield_now();
        }

        // …so the next arrival is refused immediately, with the typed
        // rejection a client can act on.
        let mut over = engine.session_with_hosting(HostingModel::free());
        over.set_dop(1);
        let err = over.query(agg).unwrap_err();
        assert_eq!(err, EngineError::Overloaded { waiting: 1, cap: 1 });
        assert!(err.is_retryable() && err.is_user_error());

        // Release the holder: the parked statement gets its grant and
        // completes bit-identically — overload shed load, it never
        // changed an answer.
        hold_cancel.cancel();
        let rows = parked.join().unwrap().unwrap();
        assert!(rows_bit_identical(&rows, &want[0]));
        holder.join().unwrap();
    });

    let st = engine.stats().sched;
    assert!(st.admission_timeouts >= 1, "{st:?}");
    assert!(st.rejected_overload >= 1, "{st:?}");
    assert!(st.queued >= 2, "{st:?}");
    assert!(st.wait_nanos > 0, "queued time is surfaced: {st:?}");
    assert_eq!(engine.sched().in_flight(), 0);
    assert_eq!(engine.sched().active(), 0);

    // The engine is healthy after the storm.
    let mut s = engine.session_with_hosting(HostingModel::free());
    let rows = s.query(agg).unwrap().rows;
    assert!(rows_bit_identical(&rows, &want[0]));
}

// --- Error taxonomy -------------------------------------------------------

/// The expected (`is_retryable`, `is_user_error`) classification of every
/// `EngineError` variant. The match is deliberately exhaustive: adding a
/// variant without classifying it breaks this test at compile time.
fn engine_expected(e: &EngineError) -> (bool, bool) {
    match e {
        EngineError::Parse { .. } => (false, true),
        EngineError::Unknown(_) => (false, true),
        EngineError::Type(_) => (false, true),
        EngineError::Arity { .. } => (false, true),
        EngineError::Array(_) => (false, true),
        EngineError::Storage(_) => (false, false),
        EngineError::Unsupported(_) => (false, true),
        EngineError::UnresolvedLob { .. } => (false, true),
        EngineError::Cancelled => (false, true),
        EngineError::Timeout { .. } => (true, true),
        EngineError::ResourceExhausted { .. } => (false, true),
        EngineError::WorkerPanicked(_) => (false, false),
        EngineError::AdmissionTimeout { .. } => (true, true),
        EngineError::Overloaded { .. } => (true, true),
    }
}

#[test]
fn engine_error_taxonomy_is_total_and_stable() {
    let cases = vec![
        EngineError::Parse {
            pos: 0,
            msg: "x".into(),
        },
        EngineError::Unknown("x".into()),
        EngineError::Type("x".into()),
        EngineError::Arity {
            func: "f".into(),
            got: 1,
            want: "2".into(),
        },
        EngineError::Array("x".into()),
        EngineError::Storage("x".into()),
        EngineError::Unsupported("x".into()),
        EngineError::UnresolvedLob { id: 1, len: 2 },
        EngineError::Cancelled,
        EngineError::Timeout { timeout_ms: 1 },
        EngineError::ResourceExhausted { used: 2, limit: 1 },
        EngineError::WorkerPanicked("x".into()),
        EngineError::AdmissionTimeout { timeout_ms: 1 },
        EngineError::Overloaded { waiting: 1, cap: 1 },
    ];
    for e in &cases {
        let (retryable, user) = engine_expected(e);
        assert_eq!(e.is_retryable(), retryable, "is_retryable({e})");
        assert_eq!(e.is_user_error(), user, "is_user_error({e})");
    }
}

/// Same contract for `StorageError` — the storage half of the taxonomy.
fn storage_expected(e: &StorageError) -> (bool, bool) {
    match e {
        StorageError::PageOutOfRange { .. } => (false, false),
        StorageError::RecordTooLarge { .. } => (false, false),
        StorageError::BadSlot { .. } => (false, false),
        StorageError::DuplicateKey { .. } => (false, true),
        StorageError::KeyNotFound { .. } => (false, true),
        StorageError::PageTypeMismatch { .. } => (false, false),
        StorageError::BlobRangeOutOfBounds { .. } => (false, true),
        StorageError::RowCorrupt(_) => (false, false),
        StorageError::BulkLoad(_) => (false, true),
        StorageError::SchemaMismatch(_) => (false, true),
        StorageError::PageCorrupt { .. } => (false, false),
        StorageError::WalTorn { .. } => (false, false),
        StorageError::WalCorrupt { .. } => (false, false),
        StorageError::CatalogCorrupt(_) => (false, false),
        StorageError::Interrupted(_) => (true, true),
        StorageError::ReadFaulted { .. } => (true, false),
    }
}

#[test]
fn storage_error_taxonomy_is_total_and_stable() {
    let cases = vec![
        StorageError::PageOutOfRange { page: 1, max: 0 },
        StorageError::RecordTooLarge { bytes: 2, limit: 1 },
        StorageError::BadSlot { slot: 1, count: 0 },
        StorageError::DuplicateKey { key: 1 },
        StorageError::KeyNotFound { key: 1 },
        StorageError::PageTypeMismatch {
            page: 1,
            expected: 1,
            got: 2,
        },
        StorageError::BlobRangeOutOfBounds {
            offset: 1,
            len: 1,
            total: 1,
        },
        StorageError::RowCorrupt("x".into()),
        StorageError::BulkLoad("x".into()),
        StorageError::SchemaMismatch("x".into()),
        StorageError::PageCorrupt {
            page: 1,
            stored: 1,
            computed: 2,
        },
        StorageError::WalTorn { offset: 1 },
        StorageError::WalCorrupt {
            offset: 1,
            msg: "x".into(),
        },
        StorageError::CatalogCorrupt("x".into()),
        StorageError::Interrupted(sqlarray_core::Interrupt::Cancelled),
        StorageError::ReadFaulted {
            page: 1,
            attempts: 4,
        },
    ];
    for e in &cases {
        let (retryable, user) = storage_expected(e);
        assert_eq!(e.is_retryable(), retryable, "is_retryable({e})");
        assert_eq!(e.is_user_error(), user, "is_user_error({e})");
    }
    // Typed interrupts map back to the engine's own variants — never to a
    // stringly Storage error.
    assert_eq!(
        EngineError::from(StorageError::Interrupted(
            sqlarray_core::Interrupt::Cancelled
        )),
        EngineError::Cancelled
    );
    assert_eq!(
        EngineError::from(StorageError::Interrupted(
            sqlarray_core::Interrupt::Timeout { timeout_ms: 7 }
        )),
        EngineError::Timeout { timeout_ms: 7 }
    );
    assert_eq!(
        EngineError::from(StorageError::Interrupted(
            sqlarray_core::Interrupt::MemExceeded { used: 2, limit: 1 }
        )),
        EngineError::ResourceExhausted { used: 2, limit: 1 }
    );
}
