//! Cross-crate integration: the paper's T-SQL surface executed end to end
//! against tables living in the page store.

use sqlarray::prelude::*;

fn spectra_db(rows: i64) -> Database {
    // A table of per-object spectra stored as array blobs, the §2.2
    // storage pattern.
    let mut db = Database::new();
    db.create_table(
        "spectra",
        Schema::new(&[
            ("id", ColType::I64),
            ("z", ColType::F64),
            ("flux", ColType::Blob),
        ]),
    )
    .unwrap();
    for k in 0..rows {
        let z = if k % 2 == 0 { 0.1 } else { 0.3 };
        let flux: Vec<f64> = (0..16).map(|i| (k as f64) + i as f64 * 0.01).collect();
        let arr = build::short_vector(&flux).unwrap();
        db.insert(
            "spectra",
            k,
            &[
                RowValue::I64(k),
                RowValue::F64(z),
                RowValue::Bytes(arr.into_blob()),
            ],
        )
        .unwrap();
    }
    db
}

#[test]
fn full_array_lifecycle_through_sql() {
    let mut s = Session::new(Database::new());
    let results = s
        .execute(
            "DECLARE @a VARBINARY(MAX) = FloatArray.ToMax(FloatArray.Vector_6(
                 1.0, 2.0, 3.0, 4.0, 5.0, 6.0));
             DECLARE @m VARBINARY(MAX) = FloatArrayMax.Reshape(@a, IntArray.Vector_2(3, 2));
             DECLARE @col VARBINARY(MAX) = FloatArrayMax.Subarray(@m,
                 IntArray.Vector_2(0, 1), IntArray.Vector_2(3, 1), 1);
             SELECT FloatArrayMax.ToString(@col), FloatArrayMax.Sum(@col),
                    FloatArrayMax.Rank(@col)",
        )
        .unwrap();
    let row = &results[0].rows[0];
    // Column 1 of the column-major 3x2 reshape of 1..6 is [4, 5, 6].
    assert_eq!(row[0], Value::Str("float64[3]{4,5,6}".into()));
    assert_eq!(row[1], Value::F64(15.0));
    assert_eq!(row[2], Value::I32(1));
}

#[test]
fn aggregate_queries_over_array_columns() {
    let db = spectra_db(40);
    let mut s = Session::with_hosting(db, HostingModel::free());
    // Per-redshift composite flux via the VectorAvg UDA + GROUP BY.
    let r = s
        .query("SELECT z, FloatArrayMax.VectorAvg(flux), COUNT(*) FROM spectra GROUP BY z")
        .unwrap();
    assert_eq!(r.rows.len(), 2);
    for row in &r.rows {
        assert_eq!(row[2], Value::I64(20));
        let stack = row[1].as_array().unwrap();
        assert_eq!(stack.dims(), &[16]);
        // Group z=0.1 holds even ids 0..38: mean of first bin = 19.
        if row[0] == Value::F64(0.1) {
            assert_eq!(stack.item(&[0]).unwrap().as_f64().unwrap(), 19.0);
        }
    }
}

#[test]
fn scalar_udfs_inside_where_clauses() {
    let db = spectra_db(30);
    let mut s = Session::with_hosting(db, HostingModel::free());
    // Filter on an array aggregate computed per row.
    let r = s
        .query("SELECT COUNT(*) FROM spectra WHERE FloatArray.Mean(flux) > 14.9")
        .unwrap();
    // Mean of row k's flux = k + 0.075; > 14.9 for k >= 15.
    assert_eq!(r.rows[0][0], Value::I64(15));
    assert_eq!(r.stats.udf_calls, 30);
}

#[test]
fn concat_and_fft_compose() {
    let db = spectra_db(8);
    let mut s = Session::with_hosting(db, HostingModel::free());
    s.execute(
        "DECLARE @l VARBINARY(100) = IntArray.Vector_1(8);
         DECLARE @sig VARBINARY(MAX);
         SELECT @sig = FloatArrayMax.Concat(@l, z) FROM spectra",
    )
    .unwrap();
    let sig = s.var("sig").unwrap().as_array().unwrap();
    assert_eq!(sig.count(), 8);
    // Feed the assembled vector to the engine-level FFT and check the DC
    // bin equals the sum of redshifts (0.1 and 0.3 alternating).
    let ft = sqlarray::engine::fft_array(&sig).unwrap();
    let dc = ft.item(&[0]).unwrap().as_c64();
    assert!((dc.re - (0.1 + 0.3) * 4.0).abs() < 1e-9);
    assert!(dc.im.abs() < 1e-12);
}

#[test]
fn parse_errors_and_type_errors_are_reported_not_panicked() {
    let mut s = Session::new(Database::new());
    assert!(s.execute("SELEKT 1").is_err());
    assert!(s.execute("SELECT FloatArray.Item_1(0x00FF, 0)").is_err()); // bad header
    assert!(s.execute("SELECT FloatArray.Vector_2(1.0, 'two')").is_err());
    // Arity check through the numbered-name convention.
    assert!(s
        .execute(
            "DECLARE @a VARBINARY(100) = FloatArray.Vector_2(1.0, 2.0);
             SELECT FloatArray.Size(@a, 0, 0)"
        )
        .is_err());
}

#[test]
fn point_lookups_fetch_lob_arrays() {
    // Arrays above the 8000-byte in-row limit round-trip through the LOB
    // store transparently.
    let mut db = Database::new();
    db.create_table(
        "cubes",
        Schema::new(&[("id", ColType::I64), ("v", ColType::Blob)]),
    )
    .unwrap();
    let big = sqlarray::array::SqlArray::from_fn(StorageClass::Max, &[32, 32, 32], |idx| {
        (idx[0] + idx[1] + idx[2]) as f32
    })
    .unwrap();
    db.insert(
        "cubes",
        7,
        &[RowValue::I64(7), RowValue::Bytes(big.as_blob().to_vec())],
    )
    .unwrap();
    let table = db.table("cubes").unwrap().clone();
    let row = table.get(&mut db.store, 7).unwrap().unwrap();
    match &row[1] {
        RowValue::LobRef(_, len) => assert_eq!(*len as usize, big.as_blob().len()),
        other => panic!("expected a LOB reference, got {other:?}"),
    }
    let bytes = row[1].blob_bytes(&mut db.store).unwrap();
    let back = sqlarray::array::SqlArray::from_blob(bytes).unwrap();
    assert_eq!(back, big);
}
