//! Many cheap sessions over one shared `Engine`: concurrency must be an
//! optimization, never a different answer. A phased differential
//! proptest runs N simultaneous reader sessions (at mixed DOPs and batch
//! sizes) against a single-writer DML stream and asserts every reader's
//! result is **bit-identical** to a serial single-session replay, that
//! the WAL byte stream and recovery image are unaffected by the
//! concurrent readers, and that the shared plan cache actually served
//! repeats. A separate stress test overlaps readers *with* the writer
//! and checks snapshot reads never observe a torn (uncommitted or
//! partially applied) statement.

use proptest::collection::vec;
use proptest::prelude::*;
use sqlarray_bench::rows_bit_identical;
use sqlarray_core::build;
use sqlarray_engine::{Database, Engine, HostingModel, Session, Value};
use sqlarray_storage::{ColType, RowValue, Schema};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Barrier;
use std::thread;

const READERS: usize = 4;
const READER_DOPS: [usize; READERS] = [1, 2, 4, 8];

/// Read-only statements the reader sessions hammer. Together they cover
/// scalar aggregation, filtered projection, grouped aggregation and
/// expression projection — every executor path a reader can take.
const QUERIES: &[&str] = &[
    "SELECT COUNT(*), SUM(tag), MIN(tag), MAX(tag) FROM T",
    "SELECT id, tag FROM T WHERE id % 2 = 0",
    "SELECT id % 3, COUNT(*), SUM(tag) FROM T GROUP BY id % 3",
    "SELECT id, tag + 1 FROM T WHERE tag >= 0",
];

fn schema() -> Schema {
    Schema::new(&[
        ("id", ColType::I64),
        ("tag", ColType::I32),
        ("v", ColType::Blob),
    ])
}

/// `T(id BIGINT, tag INT, v VARBINARY(MAX))` with `rows` committed rows;
/// row `k` has `tag = k` and a 5-element float vector seeded by `k`.
fn seeded_db(rows: i64) -> Database {
    let mut db = Database::new();
    db.create_table("T", schema()).unwrap();
    for k in 0..rows {
        let comps: Vec<f64> = (0..5).map(|i| k as f64 * 10.0 + i as f64).collect();
        let arr = build::short_vector(&comps).unwrap();
        db.insert(
            "T",
            k,
            &[
                RowValue::I64(k),
                RowValue::I32(k as i32),
                RowValue::Bytes(arr.into_blob()),
            ],
        )
        .unwrap();
    }
    db.commit();
    db
}

fn serial_session(rows: i64) -> Session {
    let mut s = Session::with_hosting(seeded_db(rows), HostingModel::free());
    s.set_dop(1);
    s
}

// --- Single-writer DML stream ---------------------------------------------

#[derive(Debug, Clone)]
enum Op {
    /// `UPDATE T SET tag = <val> WHERE id = <k>`
    Point(i64, i32),
    /// `UPDATE T SET tag = tag + <val> WHERE id % 3 = <k % 3>`
    Sweep(i64, i32),
    /// `DELETE FROM T WHERE id = <k>`
    Delete(i64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0u8..3, 0i64..24, -1000i32..1000).prop_map(|(kind, k, val)| match kind {
        0 => Op::Point(k, val),
        1 => Op::Sweep(k, val),
        _ => Op::Delete(k),
    })
}

fn apply(s: &mut Session, op: &Op) {
    let sql = match op {
        Op::Point(k, val) => format!("UPDATE T SET tag = {val} WHERE id = {k}"),
        Op::Sweep(k, val) => {
            format!(
                "UPDATE T SET tag = tag + {val} WHERE id % 3 = {}",
                k.rem_euclid(3)
            )
        }
        Op::Delete(k) => format!("DELETE FROM T WHERE id = {k}"),
    };
    s.execute(&sql).unwrap();
}

/// Every query's rows, in `QUERIES` order.
fn run_queries(s: &mut Session) -> Vec<Vec<Vec<Value>>> {
    QUERIES.iter().map(|q| s.query(q).unwrap().rows).collect()
}

proptest! {
    /// Phased differential check: after every committed DML statement,
    /// N reader sessions at DOP {1,2,4,8} × batch sizes {row-at-a-time,
    /// vectorized} query the shared engine **concurrently** and must each
    /// return exactly what a serial single-session replay returns. The
    /// concurrent run's WAL bytes and recovery image must equal the
    /// serial run's — readers leave no trace in the log.
    #[test]
    fn concurrent_sessions_match_serial_replay(
        ops in vec(op_strategy(), 1..5),
        batch_pick in any::<u8>(),
    ) {
        const ROWS: i64 = 24;
        let engine = Engine::new(seeded_db(ROWS));
        let mut writer = engine.session_with_hosting(HostingModel::free());
        let mut serial = serial_session(ROWS);

        for (phase, op) in ops.iter().enumerate() {
            apply(&mut writer, op);
            apply(&mut serial, op);
            let want = run_queries(&mut serial);

            // Fresh reader sessions every phase: sessions are supposed to
            // be cheap, and churning them exercises the shared plan cache.
            let got: Vec<(usize, Vec<Vec<Vec<Value>>>)> = thread::scope(|sc| {
                let handles: Vec<_> = (0..READERS)
                    .map(|r| {
                        let mut s = engine.session_with_hosting(HostingModel::free());
                        s.set_dop(READER_DOPS[r]);
                        // Half the readers take the row-at-a-time path,
                        // half the vectorized path (swap per proptest case).
                        if (r + batch_pick as usize) % 2 == 0 {
                            s.set_batch_rows(0);
                        }
                        sc.spawn(move || (r, run_queries(&mut s)))
                    })
                    .collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            });

            for (r, rows_per_query) in &got {
                for (qi, rows) in rows_per_query.iter().enumerate() {
                    prop_assert!(
                        rows_bit_identical(rows, &want[qi]),
                        "phase {phase} reader {r} (dop {}) query `{}`:\n  \
                         concurrent: {rows:?}\n  serial:     {:?}",
                        READER_DOPS[*r], QUERIES[qi], want[qi],
                    );
                }
            }
        }

        // Concurrent readers must not perturb durability: same WAL bytes,
        // and the recovered database matches the serial replay's state.
        let img = writer.db().store.crash_image();
        let want_img = serial.db().store.crash_image();
        prop_assert!(img.wal == want_img.wal, "WAL bytes differ under concurrency");
        let mut recovered =
            Session::with_hosting(Database::recover(&img).unwrap(), HostingModel::free());
        let mut reref = run_queries(&mut recovered);
        let want = run_queries(&mut serial);
        for (qi, rows) in reref.drain(..).enumerate() {
            prop_assert!(
                rows_bit_identical(&rows, &want[qi]),
                "recovered image diverges on `{}`", QUERIES[qi],
            );
        }

        // The readers re-ran the same four statements every phase: the
        // shared plan cache must have served repeats, and admission
        // control must have seen every reader.
        let stats = engine.stats();
        prop_assert!(stats.plans.hits > 0, "plan cache never hit: {:?}", stats.plans);
        prop_assert!(
            stats.sched.admitted as usize >= ops.len() * READERS,
            "scheduler admitted too few: {:?}", stats.sched,
        );
    }
}

/// Readers overlapping a live writer: every read must observe some
/// *committed* state, never a torn one. The writer flips every tag's
/// sign in one statement, so any committed snapshot satisfies
/// `SUM(tag) ∈ {S, -S}` and `COUNT(*) = ROWS`; a reader that caught the
/// update mid-flight would see anything else.
#[test]
fn snapshot_reads_never_observe_torn_writes() {
    const ROWS: i64 = 64;
    let sum = (0..ROWS).sum::<i64>() as f64; // 2016
    let engine = Engine::new(seeded_db(ROWS));
    let stop = AtomicBool::new(false);
    let start = Barrier::new(READERS + 1);

    thread::scope(|sc| {
        let (engine, stop, start) = (&engine, &stop, &start);
        let writer = sc.spawn(move || {
            let mut s = engine.session_with_hosting(HostingModel::free());
            start.wait();
            for _ in 0..60 {
                s.execute("UPDATE T SET tag = 0 - tag").unwrap();
            }
            stop.store(true, Ordering::Release);
        });

        let readers: Vec<_> = (0..READERS)
            .map(|r| {
                sc.spawn(move || {
                    let mut s = engine.session_with_hosting(HostingModel::free());
                    s.set_dop(READER_DOPS[r]);
                    start.wait();
                    let mut reads = 0u64;
                    while !stop.load(Ordering::Acquire) {
                        let rows = s.query("SELECT COUNT(*), SUM(tag) FROM T").unwrap().rows;
                        let (Value::I64(count), Value::F64(got)) = (&rows[0][0], &rows[0][1])
                        else {
                            panic!("unexpected shapes: {rows:?}");
                        };
                        assert_eq!(*count, ROWS, "snapshot lost rows");
                        assert!(
                            *got == sum || *got == -sum,
                            "torn read: SUM(tag) = {got}, expected ±{sum}",
                        );
                        reads += 1;
                    }
                    reads
                })
            })
            .collect();

        writer.join().unwrap();
        let total: u64 = readers.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(total > 0, "readers never ran");
    });

    // 60 sign flips land back on the original tags, and the image still
    // recovers cleanly after the concurrent episode.
    let img = engine.db().store.crash_image();
    let mut recovered =
        Session::with_hosting(Database::recover(&img).unwrap(), HostingModel::free());
    let flipped = recovered.query_scalar("SELECT SUM(tag) FROM T").unwrap();
    assert!(
        matches!(flipped, Value::F64(s) if s == sum),
        "recovered SUM(tag) = {flipped:?}, want {sum}"
    );
}

/// Prepared statements survive being executed from many sessions against
/// the same engine, and a statement prepared on one session is equally
/// valid on another (the plan is engine-owned, the session only holds an
/// `Arc`).
#[test]
fn prepared_statements_are_shareable_across_sessions() {
    let engine = Engine::new(seeded_db(16));
    let a = engine.session_with_hosting(HostingModel::free());
    let prepared = a
        .prepare("SELECT COUNT(*) FROM T WHERE id % 2 = 0")
        .unwrap();

    let counts: Vec<Vec<Vec<Value>>> = thread::scope(|sc| {
        let engine = &engine;
        let handles: Vec<_> = (0..READERS)
            .map(|r| {
                let p = &prepared;
                sc.spawn(move || {
                    let mut s = engine.session_with_hosting(HostingModel::free());
                    s.set_dop(READER_DOPS[r]);
                    s.execute_prepared(p).unwrap()[0].rows.clone()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for rows in &counts {
        assert_eq!(rows[0][0], Value::I64(8));
    }
    // One parse total: the first prepare missed, everything after hit.
    let stats = engine.stats();
    assert_eq!(stats.plans.misses, 1, "{:?}", stats.plans);
}
