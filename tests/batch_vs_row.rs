//! Differential suite: vectorized batch execution vs the row-at-a-time
//! interpreter.
//!
//! The standing invariant of the engine is that every query result is
//! bit-identical regardless of execution strategy.  This suite pins the
//! batch path against the row path across:
//!
//! * every construct the batch compiler handles (comparisons, wrapping
//!   integer arithmetic, float arithmetic, `AND`/`OR` short-circuit,
//!   `NOT`, unary minus, all five aggregates, `COUNT` over blob columns,
//!   blob projection through in-row and out-of-row storage, `TOP`);
//! * fallback constructs (`GROUP BY`, UDF calls) that must route both
//!   configurations through the same row interpreter;
//! * edge-case table sizes: empty, one row, exactly one batch, one batch
//!   plus one row;
//! * batch sizes {7, 1024} × DOP {1, 2, 4, 8}, compared byte-for-byte
//!   (floats by `to_bits`) against the serial row-at-a-time baseline.
//!
//! Error parity is checked too: a query that fails on the row path must
//! fail on the batch path (messages may legitimately differ in ordering
//! of discovery, but Ok-vs-Err must agree).

use proptest::prelude::*;
use sqlarray::prelude::*;
use sqlarray_bench::rows_bit_identical;
use sqlarray_core::rng::{RngCore, SeedableRng, StdRng};

/// Rows whose `id % 97 == 3` carry an out-of-row LOB payload (> 8000
/// bytes); everything else keeps a short in-row blob.
const LOB_STRIDE: i64 = 97;

fn build_session(rows: i64, seed: u64) -> Session {
    let mut db = Database::new();
    db.create_table(
        "T",
        Schema::new(&[
            ("id", ColType::I64),
            ("a", ColType::I64),
            ("b", ColType::I32),
            ("c", ColType::F64),
            ("d", ColType::F32),
            ("v", ColType::Blob),
        ]),
    )
    .unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    for k in 0..rows {
        let a = (rng.next_u64() % 2001) as i64 - 1000;
        let b = (rng.next_u64() % 2001) as i32 - 1000;
        let c = (rng.next_u64() % 10_000) as f64 / 64.0 - 70.0;
        let d = (rng.next_u64() % 10_000) as f32 / 128.0 - 30.0;
        let blob: Vec<u8> = if k % LOB_STRIDE == 3 {
            // Out-of-row payload: deterministic, > 8000 bytes.
            (0u64..9000)
                .map(|i| (i.wrapping_mul(31).wrapping_add(k as u64)) as u8)
                .collect()
        } else {
            (0..(rng.next_u64() % 24) as u8)
                .map(|i| i.wrapping_add(k as u8))
                .collect()
        };
        db.insert(
            "T",
            k,
            &[
                RowValue::I64(k),
                RowValue::I64(a),
                RowValue::I32(b),
                RowValue::F64(c),
                RowValue::F32(d),
                RowValue::Bytes(blob),
            ],
        )
        .unwrap();
    }
    Session::with_hosting(db, HostingModel::free())
}

/// Queries that must succeed and agree bit-for-bit on every configuration.
const QUERIES: &[&str] = &[
    "SELECT COUNT(*) FROM T",
    "SELECT COUNT(*), COUNT(a), COUNT(v) FROM T",
    "SELECT SUM(c), AVG(d), MIN(a), MAX(b) FROM T",
    "SELECT SUM(a + b), MIN(c * d), MAX(a % 7) FROM T WHERE a > 0",
    "SELECT id, a + b, c * 2.0, -d FROM T WHERE (a > 0 AND b <= 100) OR NOT (c < 0.0)",
    "SELECT TOP 13 id, c FROM T WHERE id % 3 = 1",
    "SELECT id, v FROM T WHERE id % 97 = 3",
    "SELECT a FROM T WHERE a > 100000",
    "SELECT SUM(c), COUNT(*) FROM T WHERE a > 100000",
    "SELECT id % 4, COUNT(*), SUM(c) FROM T GROUP BY id % 4",
    "SELECT MIN(b), MAX(d) FROM T WHERE NOT a = 0",
    "SELECT 1 + a, b - 2, c / 2.0, d FROM T WHERE a % 2 = 0 AND c > -100.0",
];

/// Queries that must fail identically on nonempty tables (both arms
/// reach a zero divisor on the first row).
const ERROR_QUERIES: &[&str] = &[
    "SELECT a / (a - a) FROM T",
    "SELECT SUM(a % (id - id)) FROM T",
];

const BATCH_SIZES: [usize; 2] = [7, 1024];
const DOPS: [usize; 4] = [1, 2, 4, 8];

fn run(s: &mut Session, sql: &str) -> std::result::Result<Vec<Vec<Value>>, String> {
    s.query(sql).map(|r| r.rows).map_err(|e| e.to_string())
}

/// Runs `sql` once on the serial row path and once per (batch, dop)
/// configuration, asserting bit-identity (or matching failure).
fn assert_differential(s: &mut Session, sql: &str) {
    s.set_batch_rows(0);
    s.set_dop(1);
    let base = run(s, sql);
    for &batch in &BATCH_SIZES {
        for &dop in &DOPS {
            s.set_batch_rows(batch);
            s.set_dop(dop);
            let got = run(s, sql);
            match (&base, &got) {
                (Ok(want), Ok(have)) => assert!(
                    rows_bit_identical(want, have),
                    "batch={batch} dop={dop} diverged for {sql:?}:\nrow:   {want:?}\nbatch: {have:?}"
                ),
                (Err(_), Err(_)) => {}
                (w, h) => panic!(
                    "batch={batch} dop={dop} Ok/Err mismatch for {sql:?}:\nrow:   {w:?}\nbatch: {h:?}"
                ),
            }
        }
    }
    // Leave the session back on defaults for the next query.
    s.set_batch_rows(sqlarray_core::batch::DEFAULT_BATCH_ROWS);
    s.set_dop(1);
}

#[test]
fn batch_matches_row_on_edge_case_table_sizes() {
    // Empty table, single row, exactly one default batch, one batch + 1.
    for (i, &rows) in [0i64, 1, 1024, 1025].iter().enumerate() {
        let mut s = build_session(rows, 0xBA7C4 + i as u64);
        for sql in QUERIES {
            assert_differential(&mut s, sql);
        }
    }
}

#[test]
fn error_queries_fail_on_both_paths() {
    let mut s = build_session(100, 0xE44);
    for sql in ERROR_QUERIES {
        s.set_batch_rows(0);
        s.set_dop(1);
        assert!(run(&mut s, sql).is_err(), "row path accepted {sql:?}");
        for &batch in &BATCH_SIZES {
            for &dop in &DOPS {
                s.set_batch_rows(batch);
                s.set_dop(dop);
                assert!(
                    run(&mut s, sql).is_err(),
                    "batch={batch} dop={dop} accepted {sql:?}"
                );
            }
        }
    }
}

#[test]
fn batch_stats_reflect_the_active_path() {
    let mut s = build_session(1025, 0x57A75);

    // Default configuration: the batch path is on and reports fills.
    let r = s.query("SELECT COUNT(*) FROM T").unwrap();
    assert!(r.stats.batches > 0, "batch path did not engage");
    assert!(
        r.stats.batch_fill > 0.0 && r.stats.batch_fill <= 1024.0,
        "implausible batch_fill {}",
        r.stats.batch_fill
    );

    // Disabled: everything runs row-at-a-time.
    s.set_batch_rows(0);
    let r = s.query("SELECT COUNT(*) FROM T").unwrap();
    assert_eq!(r.stats.batches, 0);
    assert_eq!(r.stats.batch_fill, 0.0);
    s.set_batch_rows(1024);

    // Fallback construct (GROUP BY): compiled plan is rejected, so the
    // row interpreter runs even though batching is enabled.
    let r = s
        .query("SELECT id % 4, COUNT(*) FROM T GROUP BY id % 4")
        .unwrap();
    assert_eq!(r.stats.batches, 0, "GROUP BY must fall back to rows");
}

proptest! {
    /// Randomized differential check: arbitrary seed drives both the table
    /// contents and the row count; every pool query must agree across all
    /// configurations.
    #[test]
    fn batch_matches_row_for_arbitrary_tables(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows = (rng.next_u64() % 300) as i64;
        let mut s = build_session(rows, rng.next_u64());
        // A couple of random batch sizes beyond the fixed sweep, including
        // pathological size 1.
        let batch = 1 + (rng.next_u64() % 129) as usize;
        let dop = DOPS[(rng.next_u64() % DOPS.len() as u64) as usize];
        for sql in QUERIES {
            s.set_batch_rows(0);
            s.set_dop(1);
            let base = run(&mut s, sql);
            s.set_batch_rows(batch);
            s.set_dop(dop);
            let got = run(&mut s, sql);
            match (&base, &got) {
                (Ok(want), Ok(have)) => prop_assert!(
                    rows_bit_identical(want, have),
                    "rows={} batch={} dop={} diverged for {:?}",
                    rows, batch, dop, sql
                ),
                (Err(_), Err(_)) => {}
                (w, h) => prop_assert!(
                    false,
                    "rows={} batch={} dop={} Ok/Err mismatch for {:?}: {:?} vs {:?}",
                    rows, batch, dop, sql, w, h
                ),
            }
        }
    }
}
