//! Parallel execution is an optimization, not a different query: for every
//! Table 1 query (and the other executor paths — GROUP BY, UDAs, filtered
//! projections), a parallel plan must return results **bit-identical** to
//! the serial plan. `SUM`/`AVG` guarantee this by accumulating in
//! `sqlarray_core::exact::ExactSum` (order-independent, exactly rounded);
//! ordered merges guarantee it for everything else.

use sqlarray::engine::Value;
use sqlarray_bench::{build_table1_db_with, rows_bit_identical, TABLE1_QUERIES};
use sqlarray_engine::HostingModel;

/// One definition of "bit-identical" for the whole workspace: this is the
/// same `f64`-by-bit-pattern comparison `run_table1_query` enforces on
/// every report run.
fn assert_rows_bit_identical(a: &[Vec<Value>], b: &[Vec<Value>], context: &str) {
    assert!(
        rows_bit_identical(a, b),
        "results differ ({context}):\n  serial:   {a:?}\n  parallel: {b:?}"
    );
}

#[test]
fn every_table1_query_is_dop_invariant() {
    // 5000 rows span dozens of leaf pages: DOP 3/4/8 genuinely split the
    // scan, with non-divisible chunk sizes at DOP 3.
    const ROWS: i64 = 5_000;
    for (qi, sql) in TABLE1_QUERIES.iter().enumerate() {
        let mut serial = build_table1_db_with(ROWS, HostingModel::free());
        serial.set_dop(1);
        let baseline = serial.query(sql).unwrap();
        assert_eq!(baseline.stats.dop, 1);
        for dop in [3usize, 4, 8] {
            let mut par = build_table1_db_with(ROWS, HostingModel::free());
            par.set_dop(dop);
            let got = par.query(sql).unwrap();
            assert!(
                got.stats.dop > 1,
                "Q{} did not fan out at dop {dop}",
                qi + 1
            );
            assert_rows_bit_identical(
                &baseline.rows,
                &got.rows,
                &format!("Q{} at dop {dop}", qi + 1),
            );
        }
    }
}

#[test]
fn group_by_and_projections_are_dop_invariant() {
    let queries = [
        // GROUP BY with exact-sum partials merged across workers.
        "SELECT id % 7, COUNT(*), SUM(v1), AVG(v3) FROM Tscalar GROUP BY id % 7",
        // Group keys that straddle partition boundaries.
        "SELECT id % 2, MIN(v2), MAX(v2) FROM Tscalar GROUP BY id % 2",
        // Filtered ordered projection with TOP.
        "SELECT TOP 13 id, v1 * v2 FROM Tscalar WHERE id % 5 = 0",
        // UDA partial-state merge (VectorAvg partials combine exactly on
        // these finite inputs).
        "SELECT id % 2, FloatArrayMax.VectorAvg(v) FROM Tvector GROUP BY id % 2",
    ];
    for sql in queries {
        let mut serial = build_table1_db_with(3_000, HostingModel::free());
        serial.set_dop(1);
        let baseline = serial.query(sql).unwrap();
        for dop in [2usize, 5] {
            let mut par = build_table1_db_with(3_000, HostingModel::free());
            par.set_dop(dop);
            let got = par.query(sql).unwrap();
            assert_eq!(baseline.columns, got.columns);
            assert_rows_bit_identical(&baseline.rows, &got.rows, &format!("{sql} at dop {dop}"));
        }
    }
}

#[test]
fn simulated_io_accounting_is_dop_invariant() {
    // The start-of-scan residency snapshot makes the simulated disk
    // deterministic, and `PageStore::finish_scan` stitches the
    // sequential/random classification across partition boundaries — so a
    // cold scan's counters, the simulated head, and the live pool's
    // recency order are all **exactly** serial at any DOP.
    let sql = "SELECT COUNT(*) FROM Tvector WITH (NOLOCK)";
    let mut serial = build_table1_db_with(5_000, HostingModel::free());
    serial.set_dop(1);
    serial.db().store.clear_cache();
    let a = serial.query(sql).unwrap();
    for dop in [2usize, 6] {
        let mut par = build_table1_db_with(5_000, HostingModel::free());
        par.set_dop(dop);
        par.db().store.clear_cache();
        let b = par.query(sql).unwrap();
        assert_eq!(a.stats.io, b.stats.io, "IoStats diverged at dop {dop}");
        assert_eq!(
            a.stats.sim_io_seconds.to_bits(),
            b.stats.sim_io_seconds.to_bits(),
            "simulated disk seconds diverged at dop {dop}"
        );
        assert_eq!(
            serial.db().store.seek_position(),
            par.db().store.seek_position(),
            "simulated head diverged at dop {dop}"
        );
        assert_eq!(
            serial.db().store.pool().keys_mru_order(),
            par.db().store.pool().keys_mru_order(),
            "live pool state diverged at dop {dop}"
        );
    }
}

#[test]
fn linalg_kernels_are_dop_invariant() {
    // The dense linalg kernels honour the same contract as the executor:
    // bit-identical to serial at DOP 1/2/4/8, serial inside a
    // with_serial_kernels scope. (The linalg crate's own test suite
    // sweeps shapes property-style; this is the workspace-level smoke
    // check against the blocked + parallel paths at once.)
    use sqlarray::linalg::{blas, pca, Matrix};

    let bits = |a: &[f64], b: &[f64]| a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits());

    let a = Matrix::from_fn(160, 130, |i, j| ((i * 7 + j * 13) % 29) as f64 - 14.0);
    let b = Matrix::from_fn(130, 96, |i, j| ((i * 11 + j * 3) % 31) as f64 - 15.0);
    let naive = blas::gemm_naive(&a, &b);
    for dop in [1usize, 2, 4, 8] {
        let got = blas::gemm_with_dop(&a, &b, dop);
        assert!(
            bits(got.as_slice(), naive.as_slice()),
            "blocked gemm diverged from naive at dop {dop}"
        );
    }
    let pinned = sqlarray_core::parallel::with_serial_kernels(|| blas::gemm(&a, &b));
    assert!(bits(pinned.as_slice(), naive.as_slice()));

    let data = Matrix::from_fn(400, 32, |i, j| {
        ((i as f64) * 0.03).sin() * (j as f64 + 1.0) + ((i * j) % 7) as f64 * 0.1
    });
    let serial_fit = pca::fit_with_dop(&data, 8, 1);
    for dop in [2usize, 4, 8] {
        let par_fit = pca::fit_with_dop(&data, 8, dop);
        assert!(
            bits(
                par_fit.components.as_slice(),
                serial_fit.components.as_slice()
            ) && bits(&par_fit.explained_variance, &serial_fit.explained_variance),
            "pca fit diverged at dop {dop}"
        );
    }
}

#[test]
fn dop_env_override_and_setter_interact_sanely() {
    let mut s = build_table1_db_with(100, HostingModel::free());
    // Whatever the environment default, the setter wins and clamps.
    s.set_dop(0);
    assert_eq!(s.dop(), 1);
    s.set_dop(16);
    assert_eq!(s.dop(), 16);
    // A 100-row table fits in one leaf page: the scan stays serial even
    // at DOP 16, and still answers correctly.
    let r = s.query("SELECT COUNT(*) FROM Tscalar").unwrap();
    assert_eq!(r.rows[0][0], Value::I64(100));
    assert_eq!(r.stats.dop, 1);
}
