//! Shape assertions for the Table 1 reproduction (experiment E1/E2/E3):
//! the qualitative results the paper reports must hold at reduced scale.

use sqlarray_bench::{build_table1_db, run_table1, storage_overhead};

// The two performance-shape tests compare CPU-per-row against the 2 µs
// hosting charge; unoptimized builds inflate the interpreter's share and
// invalidate the comparison, so they only run under `--release`
// (`cargo test --release -p sqlarray --test table1_shape -- --ignored`
// runs them explicitly from a debug session).

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "performance shape requires an optimized build"
)]
fn table1_shape_holds_at_reduced_scale() {
    let mut session = build_table1_db(30_000);
    let rows = run_table1(&mut session);
    let (q1, q2, q3, q4, q5) = (&rows[0], &rows[1], &rows[2], &rows[3], &rows[4]);

    // Queries 1-3 are I/O-bound: CPU share well below half.
    assert!(q1.cpu_percent < 50.0, "Q1 CPU {:.0}%", q1.cpu_percent);
    assert!(q2.cpu_percent < 50.0, "Q2 CPU {:.0}%", q2.cpu_percent);
    assert!(q3.cpu_percent < 60.0, "Q3 CPU {:.0}%", q3.cpu_percent);

    // Queries 4-5 are CPU-bound ("easily lead to CPU-bound query
    // performance", §7.1).
    assert!(q4.cpu_percent > 90.0, "Q4 CPU {:.0}%", q4.cpu_percent);
    assert!(q5.cpu_percent > 90.0, "Q5 CPU {:.0}%", q5.cpu_percent);

    // The UDF queries are several times slower than the native scans
    // (paper: 133 s and 109 s vs 18-25 s).
    assert!(q4.exec_seconds > 3.0 * q1.exec_seconds);
    assert!(q5.exec_seconds > 3.0 * q1.exec_seconds);
    // Q4 does real work on top of Q5's empty calls.
    assert!(q4.cpu_seconds > q5.cpu_seconds);

    // The effective I/O rate collapses for the CPU-bound queries
    // (paper: 1150 MB/s → 215/265 MB/s).
    assert!(q4.io_mb_per_sec < 0.6 * q1.io_mb_per_sec);

    // Q2 scans the fatter table: more I/O time than Q1, same row count
    // (paper ratio 25/18 ≈ 1.39).
    assert!(q2.io_seconds > 1.15 * q1.io_seconds);
    assert_eq!(q1.rows, q2.rows);

    // One managed call per row for Q4/Q5.
    assert_eq!(q4.udf_calls, 30_000);
    assert_eq!(q5.udf_calls, 30_000);
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "performance shape requires an optimized build"
)]
fn clr_call_cost_is_near_two_microseconds() {
    let mut session = build_table1_db(20_000);
    let rows = run_table1(&mut session);
    let q3 = &rows[2];
    let q5 = &rows[4];
    // §7.1: "a cost of about 2 µs per CLR function call".
    let per_call = (q5.cpu_seconds - q3.cpu_seconds).max(0.0) / q5.udf_calls as f64 * 1e6;
    assert!(
        (1.0..5.0).contains(&per_call),
        "empty CLR call cost {per_call:.2} us, expected ~2 us"
    );
}

#[test]
fn storage_overhead_matches_the_43_percent_claim() {
    let mut session = build_table1_db(20_000);
    let (scalar_bpr, vector_bpr, ratio) = storage_overhead(&mut session);
    // §6.2: 24 bytes of array header per row made Tvector 43 % bigger.
    assert!(
        (1.25..1.65).contains(&ratio),
        "ratio {ratio:.2} (scalar {scalar_bpr:.1} B/row, vector {vector_bpr:.1} B/row)"
    );
    // The absolute per-row delta is the header plus blob-column framing:
    // between 24 and 40 bytes.
    let delta = vector_bpr - scalar_bpr;
    assert!(
        (20.0..44.0).contains(&delta),
        "per-row overhead {delta:.1} B"
    );
}
