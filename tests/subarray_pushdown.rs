//! Subarray/Item pushdown over stored LOB arrays: correctness, page
//! bounds, and the bit-identity contract.
//!
//! A max array stored out-of-row reaches an expression as a lazy
//! `Value::Lob` reference. `Subarray(col, …)` / `Item_k(col, …)` over
//! such a column must (a) return exactly what materializing the full
//! blob and subsetting in memory would return, at every DOP, and (b)
//! touch only the LOB pages the requested region intersects — the
//! paper's §3.3 partial-read claim, measured on `IoStats.pages_read`.

use proptest::prelude::*;
use sqlarray_core::ops::subarray;
use sqlarray_core::rng::{RngCore, SeedableRng, StdRng};
use sqlarray_core::{SqlArray, StorageClass};
use sqlarray_engine::{Database, HostingModel, Session, Value};
use sqlarray_storage::{ColType, RowValue, Schema, PAGE_SIZE};

/// LOB chunk payload per page (mirrors `sqlarray_storage::blob`).
const CHUNK_DATA: usize = PAGE_SIZE - 16;

/// A session over one `Tcube(id, v)` table whose `v` column holds one
/// max-class f64 array per row, plus the source arrays for reference.
fn cube_session(dims: &[usize], rows: i64) -> (Session, Vec<SqlArray>) {
    let mut db = Database::new();
    db.create_table(
        "Tcube",
        Schema::new(&[("id", ColType::I64), ("v", ColType::Blob)]),
    )
    .unwrap();
    let mut arrays = Vec::new();
    for k in 0..rows {
        let a = SqlArray::from_fn(StorageClass::Max, dims, |idx| {
            let mut lin = 0.0;
            for (axis, &i) in idx.iter().enumerate() {
                lin = lin * 1000.0 + i as f64 + axis as f64 * 0.25;
            }
            lin + 1e6 * k as f64
        })
        .unwrap();
        db.insert(
            "Tcube",
            k,
            &[RowValue::I64(k), RowValue::Bytes(a.as_blob().to_vec())],
        )
        .unwrap();
        arrays.push(a);
    }
    (Session::with_hosting(db, HostingModel::free()), arrays)
}

fn vec3(v: &[usize]) -> String {
    format!("IntArray.Vector_3({}, {}, {})", v[0], v[1], v[2])
}

/// The pushdown form: `Subarray` applied directly to the base LOB column.
fn pushdown_sql(offset: &[usize], size: &[usize]) -> String {
    format!(
        "SELECT id, FloatArrayMax.Subarray(v, {}, {}, 0) FROM Tcube",
        vec3(offset),
        vec3(size)
    )
}

/// The full-materialize form: an identity `Reshape` resolves the whole
/// LOB first, so the inner call yields bytes and `Subarray` runs the
/// in-memory path.
fn full_sql(dims: &[usize], offset: &[usize], size: &[usize]) -> String {
    format!(
        "SELECT id, FloatArrayMax.Subarray(FloatArrayMax.Reshape(v, {}), {}, {}, 0) FROM Tcube",
        vec3(dims),
        vec3(offset),
        vec3(size)
    )
}

#[test]
fn pushdown_matches_in_memory_subarray_at_every_dop() {
    let dims = [24usize, 20, 18]; // 67.5 kB payload: out-of-row
    let (mut s, arrays) = cube_session(&dims, 3);
    let offset = [3usize, 5, 2];
    let size = [7usize, 4, 9];
    let expected: Vec<Vec<Value>> = arrays
        .iter()
        .enumerate()
        .map(|(k, a)| {
            let sub = subarray::subarray(a, &offset, &size, false).unwrap();
            vec![Value::I64(k as i64), Value::Bytes(sub.into_blob())]
        })
        .collect();
    for dop in [1usize, 2, 4, 8] {
        s.set_dop(dop);
        let r = s.query(&pushdown_sql(&offset, &size)).unwrap();
        assert_eq!(r.rows, expected, "pushdown rows diverged at dop {dop}");
        let f = s.query(&full_sql(&dims, &offset, &size)).unwrap();
        assert_eq!(
            f.rows, expected,
            "full-materialize rows diverged at dop {dop}"
        );
    }
}

#[test]
fn pushdown_accounting_is_dop_invariant() {
    let dims = [24usize, 24, 24];
    let offset = [2usize, 3, 4];
    let size = [5usize, 5, 5];
    let run = |dop: usize| {
        let (mut s, _) = cube_session(&dims, 4);
        s.set_dop(dop);
        s.db().store.clear_cache();
        let r = s.query(&pushdown_sql(&offset, &size)).unwrap();
        let db = s.db();
        let seek = db.store.seek_position();
        let mru = db.store.pool().keys_mru_order();
        drop(db);
        (
            r.rows,
            r.stats.io,
            r.stats.sim_io_seconds.to_bits(),
            seek,
            mru,
        )
    };
    let serial = run(1);
    for dop in [2usize, 4, 8] {
        assert_eq!(
            run(dop),
            serial,
            "pushdown accounting diverged at dop {dop}"
        );
    }
}

#[test]
fn item_pushdown_matches_full_read() {
    let dims = [16usize, 16, 16]; // 32 kB payload: out-of-row
    let (mut s, arrays) = cube_session(&dims, 2);
    for dop in [1usize, 3] {
        s.set_dop(dop);
        let r = s
            .query("SELECT id, FloatArrayMax.Item_3(v, 11, 7, 13) FROM Tcube")
            .unwrap();
        for (k, row) in r.rows.iter().enumerate() {
            let expect = arrays[k].item(&[11, 7, 13]).unwrap();
            assert_eq!(row[1], Value::from(expect), "dop {dop}, row {k}");
        }
    }
}

#[test]
fn small_region_of_large_array_reads_bounded_pages() {
    // 64×64×32 f64 = 1 MiB payload → 129 chunk pages: the blob spans
    // well over 100 pages.
    let dims = [64usize, 64, 32];
    let (mut s, _) = cube_session(&dims, 1);
    let blob_pages = (dims.iter().product::<usize>() * 8).div_ceil(CHUNK_DATA);
    assert!(blob_pages >= 100, "fixture too small: {blob_pages} pages");

    // A contiguous slab (full leading axes): 64×64×2 = 64 KiB region.
    let offset = [0usize, 0, 17];
    let size = [64usize, 64, 2];
    let region_bytes = size.iter().product::<usize>() * 8;
    let region_pages = region_bytes.div_ceil(PAGE_SIZE) as u64;

    s.set_dop(1);
    s.db().store.clear_cache();
    let r = s.query(&pushdown_sql(&offset, &size)).unwrap();
    // ⌈region bytes / page size⌉ (+1 for straddling a chunk boundary)
    // plus index/root overhead: B-tree internals + leaf + LOB root +
    // the header-prefix chunk.
    let overhead = 8;
    assert!(
        r.stats.io.pages_read <= region_pages + 1 + overhead,
        "pushdown read {} pages for a {}-page region",
        r.stats.io.pages_read,
        region_pages
    );

    // The full-materialize form must read the whole blob.
    s.db().store.clear_cache();
    let f = s.query(&full_sql(&dims, &offset, &size)).unwrap();
    assert!(
        f.stats.io.pages_read >= blob_pages as u64,
        "full path read only {} of {blob_pages} blob pages",
        f.stats.io.pages_read
    );
    assert!(
        f.stats.io.pages_read >= 10 * r.stats.io.pages_read,
        "pushdown saved less than 10x: {} vs {}",
        f.stats.io.pages_read,
        r.stats.io.pages_read
    );
    // Same result either way.
    assert_eq!(r.rows, f.rows);
}

#[test]
fn bare_lob_projection_returns_bytes_not_placeholder() {
    let dims = [16usize, 16, 16];
    let (mut s, arrays) = cube_session(&dims, 2);
    let r = s.query("SELECT v FROM Tcube").unwrap();
    assert_eq!(r.rows.len(), 2);
    for (k, row) in r.rows.iter().enumerate() {
        assert_eq!(
            row[0],
            Value::Bytes(arrays[k].as_blob().to_vec()),
            "row {k} did not materialize the LOB"
        );
    }
}

#[test]
fn lob_columns_behave_like_inline_blobs_not_placeholders() {
    let dims = [16usize, 16, 16];
    let (mut s, arrays) = cube_session(&dims, 2);
    // A LOB column in a numeric position errors exactly like an inline
    // blob would — a typed error, never a silently comparable
    // `<lob:…>` placeholder string (the old behavior produced a Str
    // that *compared* and *concatenated* without complaint).
    let err = s.query("SELECT v + 1 FROM Tcube").unwrap_err();
    assert!(
        matches!(err, sqlarray_engine::EngineError::Type(_)),
        "expected the inline-blob type error, got {err:?}"
    );
    // Comparisons materialize the LOB and compare bytewise, identically
    // on either side of the 8 kB in-row limit.
    let r = s.query("SELECT COUNT(*) FROM Tcube WHERE v = v").unwrap();
    assert_eq!(r.rows[0][0], Value::I64(2));
    // MIN/MAX over a LOB column order the blobs bytewise.
    let r = s.query("SELECT MIN(v), MAX(v) FROM Tcube").unwrap();
    let blobs: Vec<&[u8]> = arrays.iter().map(|a| a.as_blob()).collect();
    let min = blobs.iter().min().unwrap().to_vec();
    let max = blobs.iter().max().unwrap().to_vec();
    assert_eq!(r.rows[0][0], Value::Bytes(min));
    assert_eq!(r.rows[0][1], Value::Bytes(max));
}

#[test]
fn unresolved_lob_error_is_typed_when_no_reader_exists() {
    use sqlarray_engine::EngineError;
    // Outside any storage context a lazy reference cannot resolve: the
    // typed error (not a placeholder string) is the contract.
    let v = Value::Lob { id: 3, len: 9000 };
    assert!(matches!(
        v.as_f64(),
        Err(EngineError::UnresolvedLob { id: 3, len: 9000 })
    ));
}

proptest! {
    /// Pushdown `Subarray` equals full-read + in-memory `subarray`
    /// byte-for-byte at DOP 1/2/4/8, for arbitrary region shapes over
    /// arbitrary (out-of-row) cube dimensions.
    #[test]
    fn pushdown_equals_in_memory_for_arbitrary_regions(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pick = |lo: usize, hi: usize| lo + (rng.next_u64() as usize) % (hi - lo + 1);
        // 11³ × 8 B = 10.6 kB minimum: always past the 8 kB in-row limit.
        let dims = [pick(11, 16), pick(11, 16), pick(11, 16)];
        let offset = [pick(0, dims[0] - 1), pick(0, dims[1] - 1), pick(0, dims[2] - 1)];
        let size = [
            pick(1, dims[0] - offset[0]),
            pick(1, dims[1] - offset[1]),
            pick(1, dims[2] - offset[2]),
        ];
        let (mut s, arrays) = cube_session(&dims, 2);
        let expected: Vec<Vec<Value>> = arrays
            .iter()
            .enumerate()
            .map(|(k, a)| {
                let sub = subarray::subarray(a, &offset, &size, false).unwrap();
                vec![Value::I64(k as i64), Value::Bytes(sub.into_blob())]
            })
            .collect();
        for dop in [1usize, 2, 4, 8] {
            s.set_dop(dop);
            let r = s.query(&pushdown_sql(&offset, &size)).unwrap();
            prop_assert_eq!(&r.rows, &expected);
            let f = s.query(&full_sql(&dims, &offset, &size)).unwrap();
            prop_assert_eq!(&f.rows, &expected);
        }
    }

    /// Pages touched for a region are bounded by the chunk pages the
    /// region's byte runs intersect, plus constant index overhead.
    #[test]
    fn pushdown_page_touches_are_bounded_by_the_region(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pick = |lo: usize, hi: usize| lo + (rng.next_u64() as usize) % (hi - lo + 1);
        let dims = [pick(16, 24), pick(16, 24), pick(16, 24)];
        let offset = [pick(0, dims[0] - 1), pick(0, dims[1] - 1), pick(0, dims[2] - 1)];
        let size = [
            pick(1, dims[0] - offset[0]),
            pick(1, dims[1] - offset[1]),
            pick(1, dims[2] - offset[2]),
        ];
        let (mut s, arrays) = cube_session(&dims, 1);
        // The exact set of chunk pages the planned byte runs intersect.
        let header = sqlarray_core::Header::decode(arrays[0].as_blob()).unwrap();
        let runs = header.region_byte_runs(&offset, &size).unwrap();
        let mut chunks = std::collections::BTreeSet::new();
        for (off, len) in runs {
            for c in off / CHUNK_DATA..=(off + len - 1) / CHUNK_DATA {
                chunks.insert(c);
            }
        }
        s.set_dop(1);
        s.db().store.clear_cache();
        let r = s.query(&pushdown_sql(&offset, &size)).unwrap();
        // Chunk pages + B-tree internals/leaf + LOB root + header chunk.
        let overhead = 8u64;
        prop_assert!(
            r.stats.io.pages_read <= chunks.len() as u64 + overhead,
            "read {} pages for {} intersecting chunks", r.stats.io.pages_read, chunks.len()
        );
    }
}
