//! # sqlarray
//!
//! A Rust reproduction of *"Array Requirements for Scientific Applications
//! and an Implementation for Microsoft SQL Server"* (Dobos, Szalay,
//! Blakeley, Budavári, Csabai, Tomic, Milovanovic, Tintor, Jovanovic —
//! EDBT 2011, arXiv:1110.1729).
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`array`](mod@array) | `sqlarray-core` | the array blob format: header, short/max storage classes, column-major payload, `Item`/`Subarray`/`Reshape`/`Cast`/aggregates, streamed partial reads |
//! | [`storage`] | `sqlarray-storage` | 8 kB slotted pages, buffer pool with I/O accounting, clustered B+trees, in-row vs LOB blobs, z-order keys |
//! | [`engine`] | `sqlarray-engine` | T-SQL-flavoured parser and executor, the sixteen `FloatArray.*`-style UDF schemas, CLR hosting-cost model, UDAs with stream-serialized state |
//! | [`linalg`] | `sqlarray-linalg` | LAPACK substitute: SVD (`gesvd`), QR, least squares, NNLS, eigen, PCA — cache-blocked + parallel at the session DOP, bit-identical to serial |
//! | [`fft`] | `sqlarray-fft` | FFTW substitute: planned radix-2/Bluestein, real and n-D transforms |
//! | [`turbulence`] | `sqlarray-turbulence` | Sec. 2.1 workload: z-order blob partitioning, ghost zones, Lagrange/PCHIP interpolation service |
//! | [`spectra`] | `sqlarray-spectra` | Sec. 2.2 workload: flux-conserving resampling, composites, PCA + masked least squares, kd-tree search |
//! | [`nbody`] | `sqlarray-nbody` | Sec. 2.3 workload: octrees, FOF halos, merger trees, CIC density, power spectra, correlation functions, light cones |
//!
//! ## The paper's first example, in five lines
//!
//! ```
//! use sqlarray::engine::{Database, Session};
//!
//! let mut session = Session::new(Database::new());
//! let v = session.query_scalar(
//!     "DECLARE @a VARBINARY(100) = FloatArray.Vector_5(1.0, 2.0, 3.0, 4.0, 5.0);
//!      SELECT FloatArray.Item_1(@a, 3)",
//! ).unwrap();
//! assert_eq!(v, sqlarray::engine::Value::F64(4.0));
//! ```

#![forbid(unsafe_code)]

pub use sqlarray_core as array;
pub use sqlarray_engine as engine;
pub use sqlarray_fft as fft;
pub use sqlarray_linalg as linalg;
pub use sqlarray_nbody as nbody;
pub use sqlarray_spectra as spectra;
pub use sqlarray_storage as storage;
pub use sqlarray_turbulence as turbulence;

/// The most commonly used types across the workspace.
pub mod prelude {
    pub use sqlarray_core::prelude::*;
    pub use sqlarray_engine::{Database, HostingModel, Session, Value};
    pub use sqlarray_storage::{ColType, PageStore, RowValue, Schema, Table};
}
