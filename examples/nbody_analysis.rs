//! The cosmological N-body analysis suite (§2.3): FOF halos, merger
//! links, CIC density → FFT power spectrum (through the array engine),
//! two-point correlation, and a light cone.
//!
//! ```text
//! cargo run --release --example nbody_analysis
//! ```

use sqlarray::engine::{Database, Session, Value};
use sqlarray::nbody::{
    build_lightcone, friends_of_friends, link_catalogs, power_spectrum, two_point_correlation,
    DensityGrid, LightconeSpec, Octree, SynthSim,
};

fn main() {
    let sim = SynthSim {
        halos: 16,
        halo_particles: 250,
        background: 4000,
        halo_radius: 0.012,
        ..SynthSim::default()
    };
    let snap0 = sim.snapshot(0);
    let snap1 = sim.snapshot(1);
    println!(
        "synthetic simulation: {} particles per snapshot",
        snap0.particles.len()
    );

    // --- Octree bucketing (the billion-row reduction of §2.3) -----------
    let tree = Octree::build(snap0.particles.clone(), 512);
    println!(
        "octree: {} leaves (≤ {} particles each) instead of {} particle rows",
        tree.leaf_count(),
        tree.bucket_size(),
        tree.len()
    );
    let lod = tree.decimate(16);
    println!(
        "decimated visualization sample: {} weighted points",
        lod.len()
    );

    // --- FOF halos + merger links ------------------------------------------
    let h0 = friends_of_friends(&snap0.particles, 0.015, 30);
    let h1 = friends_of_friends(&snap1.particles, 0.015, 30);
    println!(
        "\nFOF: {} halos at t0 (largest {}), {} at t1",
        h0.len(),
        h0[0].size(),
        h1.len()
    );
    let links = link_catalogs(&h0, &h1, 0.5);
    println!(
        "merger links t0→t1: {} (shared-particle fractions:",
        links.len()
    );
    for l in links.iter().take(5) {
        println!(
            "  halo {} → halo {}: {:.0}% of {} members",
            l.from,
            l.to,
            l.fraction * 100.0,
            h0[l.from].size()
        );
    }
    println!("  ...)");

    // --- CIC density → power spectrum, through the array engine -------------
    let grid = DensityGrid::assign_cic(&snap0.particles, 32);
    let delta = grid.to_array();
    println!(
        "\nCIC grid 32^3 packed as a {} array blob ({} bytes)",
        delta.elem(),
        delta.as_blob().len()
    );

    // The §5.3 path: hand the blob to the in-server FFT UDF.
    let mut session = Session::new(Database::new());
    session.set_var("rho", Value::Bytes(delta.as_blob().to_vec()));
    let dc = session
        .query_scalar("SELECT ComplexArrayMax.Item_3(FloatArrayMax.FFTForward(@rho), 0, 0, 0)")
        .expect("in-engine FFT");
    if let Value::Bytes(b) = &dc {
        let re = f64::from_le_bytes(b[..8].try_into().unwrap());
        println!(
            "DC mode from the in-engine FFT = {:.1} (total mass {:.1})",
            re,
            grid.total_mass()
        );
    }

    let ps = power_spectrum(&grid);
    println!("\nbinned power spectrum (k in fundamental modes):");
    println!("{:>8} {:>14} {:>8}", "k", "P(k)", "modes");
    for bin in ps.iter().take(8) {
        println!("{:>8.2} {:>14.6} {:>8}", bin.k, bin.power, bin.modes);
    }

    // --- Two-point correlation ------------------------------------------------
    let xi = two_point_correlation(&snap0.particles, 0.01, 0.1);
    println!("\ntwo-point correlation:");
    println!("{:>14} {:>12} {:>10}", "r range", "xi(r)", "pairs");
    for bin in xi.iter().take(6) {
        println!(
            "{:>6.3}-{:<6.3} {:>12.2} {:>10}",
            bin.r_lo, bin.r_hi, bin.xi, bin.pairs
        );
    }
    assert!(
        xi[0].xi > 1.0,
        "clustered field must correlate on small scales"
    );

    // --- Light cone --------------------------------------------------------------
    let cone = build_lightcone(
        &sim,
        &[3, 2, 1, 0],
        &LightconeSpec {
            apex: [0.5, 0.5, 0.5],
            dir: [0.577, 0.577, 0.577],
            half_angle: 0.35,
            shell_width: 0.12,
        },
    );
    println!(
        "\nlight cone: {} particles across 4 look-back shells",
        cone.len()
    );
    let receding = cone.iter().filter(|e| e.v_radial > 0.0).count();
    println!(
        "{} receding / {} approaching (radial Doppler)",
        receding,
        cone.len() - receding
    );
    println!("\nnbody_analysis: done");
}
