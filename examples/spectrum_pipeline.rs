//! The spectrum-database pipeline (§2.2): synthesize a survey, stack
//! composites by redshift, fit a PCA basis, expand spectra with masked
//! least squares, and run a kd-tree similarity search.
//!
//! ```text
//! cargo run --release --example spectrum_pipeline
//! ```

use sqlarray::spectra::{
    composite_by_redshift, linear_grid, synth_spectrum, synth_survey, SpectralClass, SpectrumIndex,
    SynthParams,
};

fn main() {
    let params = SynthParams {
        bins: 512,
        noise: 0.03,
        mask_prob: 0.01,
        ..SynthParams::default()
    };
    let redshifts = [0.05, 0.15, 0.25, 0.35];
    let survey = synth_survey(17, 120, &redshifts, &params);
    println!(
        "synthesized {} spectra ({} bins, {:.0}% masked pixels, classes alternate)",
        survey.len(),
        params.bins,
        params.mask_prob * 100.0
    );

    // --- Composites grouped by redshift (the SQL GROUP BY use case) -----
    let grid = linear_grid(4200.0, 8800.0, 200);
    let stacks = composite_by_redshift(&survey, &grid, 0.1).expect("stack");
    println!("\nredshift bin   members' mean z   stacked S/N proxy");
    for (center, stack) in &stacks {
        let snr: f64 = stack
            .flux
            .iter()
            .zip(&stack.error)
            .filter(|&(_, e)| *e > 0.0)
            .map(|(f, e)| (f / e).abs())
            .sum::<f64>()
            / stack.len() as f64;
        println!("{center:>10.2}{:>18.3}{snr:>16.1}", stack.redshift);
    }

    // --- PCA basis + similarity index ------------------------------------
    let items: Vec<(u64, _)> = survey
        .iter()
        .cloned()
        .enumerate()
        .map(|(i, s)| (i as u64, s))
        .collect();
    let index = SpectrumIndex::build(&items, &grid, 8).expect("index");
    println!(
        "\nPCA basis: k = {}, explained variance ratio = {:.4}",
        index.pca().k(),
        index.pca().explained_ratio()
    );

    // --- Query: a fresh emission-line object ------------------------------
    let probe = synth_spectrum(20_001, SpectralClass::Emission, 0.15, &params);
    let hits = index.similar(&probe, 8).expect("query");
    println!("\nnearest neighbours of a fresh emission-line spectrum:");
    println!("rank   id   class        distance");
    let mut same_class = 0;
    for (rank, hit) in hits.iter().enumerate() {
        let class = if hit.id % 2 == 0 {
            "emission"
        } else {
            "absorption"
        };
        if hit.id % 2 == 0 {
            same_class += 1;
        }
        println!(
            "{:>4} {:>4}   {:<12} {:.5}",
            rank + 1,
            hit.id,
            class,
            hit.distance
        );
    }
    println!(
        "\n{} of {} neighbours share the query's class",
        same_class,
        hits.len()
    );
    assert!(same_class * 2 > hits.len(), "classification failed");

    // --- Masked expansion: damage the probe and re-query --------------------
    let mut damaged = probe.clone();
    for i in (30..damaged.len()).step_by(23) {
        damaged.flags[i] = 1;
        damaged.flux[i] = -9999.0;
    }
    let clean_top: Vec<u64> = hits.iter().take(3).map(|h| h.id).collect();
    let damaged_hits = index.similar(&damaged, 3).expect("query");
    let damaged_top: Vec<u64> = damaged_hits.iter().map(|h| h.id).collect();
    println!("top-3 neighbours clean {clean_top:?} vs damaged {damaged_top:?}");
    let damaged_same_class = damaged_top.iter().filter(|id| *id % 2 == 0).count();
    println!(
        "masked least squares keeps the damaged query in the emission cluster: \
         {damaged_same_class}/3 same-class hits"
    );
    assert!(damaged_same_class >= 2, "masked expansion drifted classes");
    println!("\nspectrum_pipeline: done");
}
