//! The turbulence particle-query service (§2.1): build a z-order
//! partitioned velocity database, query interpolated velocities at
//! particle positions, and compare interpolation schemes and fetch
//! strategies.
//!
//! ```text
//! cargo run --release --example turbulence_service
//! ```

use sqlarray::storage::PageStore;
use sqlarray::turbulence::{FetchMode, PartitionSpec, Scheme, SyntheticField, TurbulenceDb};

fn main() {
    // A 64³ synthetic isotropic field, partitioned into 16³ cubes with
    // 4-voxel ghost zones (scaled-down version of the paper's
    // 1024³ / (64+8)³ layout).
    let field = SyntheticField::new(7, 16, 4);
    let spec = PartitionSpec::new(64, 16, 4);
    let mut store = PageStore::new();
    println!(
        "building turbulence db: grid {}^3, cubes of ({}+{})^3, blob {} kB ...",
        spec.grid_n,
        spec.block,
        2 * spec.ghost,
        spec.blob_bytes() / 1024
    );
    let db = TurbulenceDb::build(&mut store, &field, spec).expect("build");
    let table = db.table().clone();
    println!(
        "stored {} blobs, {} data pages, file {:.1} MB",
        table.row_count(),
        table.data_pages(&mut store).unwrap(),
        store.file_bytes() as f64 / (1024.0 * 1024.0)
    );

    // A batch of "sensor" particles along a streamline-ish path.
    let particles: Vec<[f64; 3]> = (0..1000)
        .map(|i| {
            let t = i as f64 * 0.013;
            [
                (0.2 + 0.61 * t).rem_euclid(1.0),
                (0.8 - 0.37 * t).rem_euclid(1.0),
                (0.5 + 0.23 * t).rem_euclid(1.0),
            ]
        })
        .collect();

    println!("\nscheme      rms error   max error   (vs analytic field, 1000 particles)");
    for scheme in [
        Scheme::Nearest,
        Scheme::Pchip,
        Scheme::Lagrange4,
        Scheme::Lagrange6,
        Scheme::Lagrange8,
    ] {
        let vels = db
            .query_particles(&mut store, &particles, scheme, FetchMode::PartialRead)
            .expect("query");
        let mut sq = 0.0f64;
        let mut maxe = 0.0f64;
        for (v, p) in vels.iter().zip(&particles) {
            let truth = field.velocity(*p);
            for c in 0..3 {
                let e = (v[c] - truth[c]).abs();
                sq += e * e;
                maxe = maxe.max(e);
            }
        }
        let rms = (sq / (3.0 * particles.len() as f64)).sqrt();
        println!("{scheme:?}\t{rms:>12.2e}{maxe:>12.2e}");
    }

    // I/O comparison: streamed stencil vs whole blob (the §2.1 "6 MB for
    // an 8-point interpolation is overkill" observation).
    println!("\nfetch mode      bytes/query   pages/query   (Lagrange-8, cold cache)");
    for mode in [FetchMode::PartialRead, FetchMode::FullBlob] {
        store.clear_cache();
        store.reset_stats();
        db.query_particles(&mut store, &particles[..100], Scheme::Lagrange8, mode)
            .expect("query");
        let st = store.stats();
        println!(
            "{:<14}{:>12.0}{:>14.1}",
            format!("{mode:?}"),
            st.bytes_read() as f64 / 100.0,
            st.pages_read as f64 / 100.0
        );
    }
    println!("\nturbulence_service: done");
}
