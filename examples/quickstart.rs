//! Quickstart: every T-SQL example from the paper (§5.1–§5.3), executed
//! against the reproduced engine, plus the equivalent direct Rust API.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use sqlarray::engine::{Database, Session, Value};
use sqlarray::prelude::*;

fn main() {
    let mut session = Session::new(Database::new());

    // --- §5.1: create a vector, read an item --------------------------
    let item = session
        .query_scalar(
            "DECLARE @a VARBINARY(100) = FloatArray.Vector_5(1.0, 2.0, 3.0, 4.0, 5.0);
             SELECT FloatArray.Item_1(@a, 3)",
        )
        .unwrap();
    println!("FloatArray.Item_1(Vector_5(1..5), 3)      = {item}");

    // --- §5.1: matrices are listed row-major, stored column-major ------
    let m_item = session
        .query_scalar(
            "DECLARE @m VARBINARY(100) = FloatArray.Matrix_2(0.1, 0.2, 0.3, 0.4);
             SELECT FloatArray.Item_2(@m, 1, 0)",
        )
        .unwrap();
    println!("FloatArray.Item_2(Matrix_2(...), 1, 0)    = {m_item}");

    // --- §5.1: subarray with offset/size vectors ------------------------
    let batch = session
        .execute(
            "DECLARE @a VARBINARY(MAX) = FloatArray.ToMax(FloatArray.Vector_8(
                 0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0));
             DECLARE @m VARBINARY(MAX) = FloatArrayMax.Reshape(@a, IntArray.Vector_2(2, 4));
             DECLARE @b VARBINARY(MAX) = FloatArrayMax.Subarray(@m,
                 IntArray.Vector_2(0, 1), IntArray.Vector_2(2, 2), 0);
             SELECT FloatArrayMax.ToString(@b)",
        )
        .unwrap();
    println!(
        "Subarray of a reshaped 2x4:               = {}",
        batch[0].rows[0][0]
    );

    // --- §5.1: update an item -------------------------------------------
    let updated = session
        .query_scalar(
            "DECLARE @a VARBINARY(100) = FloatArray.Vector_3(1.0, 2.0, 3.0);
             SET @a = FloatArray.UpdateItem_1(@a, 1, 4.5);
             SELECT FloatArray.ToString(@a)",
        )
        .unwrap();
    println!("After UpdateItem_1(@a, 1, 4.5)            = {updated}");

    // --- §5.3: in-server FFT ---------------------------------------------
    let results = session
        .execute(
            "DECLARE @a VARBINARY(MAX) = FloatArray.ToMax(FloatArray.Vector_8(
                 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0));
             DECLARE @ft VARBINARY(MAX) = ComplexArrayMax.FFTForward(@a);
             SELECT ComplexArrayMax.Item_1(@ft, 0), ComplexArrayMax.Count(@ft)",
        )
        .unwrap();
    println!(
        "FFTForward(ones[8]): bin0 = {}, bins = {}",
        results[0].rows[0][0], results[0].rows[0][1]
    );

    // --- §5.3: in-server SVD ----------------------------------------------
    let s = session
        .query_scalar(
            "DECLARE @m VARBINARY(100) = FloatArray.Matrix_2(3.0, 0.0, 0.0, 2.0);
             SELECT FloatArray.ToString(FloatArray.GesvdS(@m))",
        )
        .unwrap();
    println!("GesvdS(diag(3,2))                         = {s}");

    // --- §5.2: the .NET-style client conversion, in Rust -------------------
    // double[] v = dr.SqlFloatArray(dr.GetSqlBinary(1));
    let arr = build::short_vector(&[1.0f64, 2.0, 3.0]).unwrap();
    let blob = arr.as_blob().to_vec(); // what the VARBINARY column holds
    let back = SqlArray::from_blob(blob).unwrap();
    let v: Vec<f64> = back.to_vec().unwrap();
    println!("client round-trip through the blob        = {v:?}");

    // --- Aggregates over arrays and type conversions ------------------------
    let stats = session
        .execute(
            "DECLARE @a VARBINARY(100) = FloatArray.Vector_5(1.0, 2.0, 3.0, 4.0, 5.0);
             SELECT FloatArray.Sum(@a), FloatArray.Mean(@a), FloatArray.Std(@a),
                    IntArray.ToString(FloatArray.ConvertTo(@a, 'int32'))",
        )
        .unwrap();
    let row = &stats[0].rows[0];
    println!(
        "Sum / Mean / Std / as int32               = {} / {} / {:.4} / {}",
        row[0],
        row[1],
        row[2].as_f64().unwrap(),
        row[3]
    );

    // --- Runtime type checks (the §3.5 flag bytes at work) ------------------
    let err = session.query_scalar(
        "DECLARE @i VARBINARY(100) = IntArray.Vector_2(1, 2);
         SELECT FloatArray.Item_1(@i, 0)",
    );
    println!(
        "int blob into FloatArray schema           = {:?}",
        err.unwrap_err()
    );

    // --- Table-backed query with the Concat aggregate (§5.1) ----------------
    let mut db = Database::new();
    db.create_table(
        "samples",
        Schema::new(&[("id", ColType::I64), ("x", ColType::F64)]),
    )
    .unwrap();
    for k in 0..6 {
        db.insert(
            "samples",
            k,
            &[RowValue::I64(k), RowValue::F64((k * k) as f64)],
        )
        .unwrap();
    }
    let mut session = Session::new(db);
    session
        .execute(
            "DECLARE @l VARBINARY(100) = IntArray.Vector_1(6);
             DECLARE @a VARBINARY(MAX);
             SELECT @a = FloatArrayMax.Concat(@l, x) FROM samples",
        )
        .unwrap();
    let assembled = session.var("a").unwrap().as_array().unwrap();
    println!(
        "Concat over table rows                    = {}",
        sqlarray::array::fmt::to_string(&assembled)
    );
    assert_eq!(
        assembled.to_vec::<f64>().unwrap(),
        vec![0.0, 1.0, 4.0, 9.0, 16.0, 25.0]
    );

    // --- §8 wishlist: array-notation sugar -----------------------------
    let types = sqlarray::engine::SugarTypes::new();
    session
        .execute("DECLARE @s VARBINARY(100) = FloatArray.Vector_5(1.0, 2.0, 3.0, 4.0, 5.0)")
        .unwrap();
    let sugared = session
        .query_sugar("SELECT @s[3], FloatArray.Sum(@s[1:4])", &types)
        .unwrap();
    println!(
        "sugar: @s[3] = {}, Sum(@s[1:4]) = {}",
        sugared.rows[0][0], sugared.rows[0][1]
    );
    session.execute_sugar("SET @s[0] = 10.0", &types).unwrap();
    let updated0 = session.query_sugar("SELECT @s[0]", &types).unwrap();
    assert_eq!(updated0.rows[0][0], Value::F64(10.0));

    // --- parallel scans: DOP > 1 is an optimization, not a different
    // query ---------------------------------------------------------------
    let mut db = Database::new();
    db.create_table(
        "big",
        Schema::new(&[("id", ColType::I64), ("x", ColType::F64)]),
    )
    .unwrap();
    for k in 0..20_000i64 {
        db.insert(
            "big",
            k,
            &[RowValue::I64(k), RowValue::F64((k as f64).sin())],
        )
        .unwrap();
    }
    let mut session = Session::new(db);
    session.set_dop(1);
    let serial = session.query("SELECT SUM(x), COUNT(*) FROM big").unwrap();
    session.set_dop(4);
    let parallel = session.query("SELECT SUM(x), COUNT(*) FROM big").unwrap();
    assert_eq!(serial.rows, parallel.rows, "bit-identical at any DOP");
    println!(
        "parallel scan: SUM over 20k rows at DOP {} = {} (identical to serial; \
         {} workers, {:.2}x CPU/wall)",
        session.dop(),
        parallel.rows[0][0],
        parallel.stats.dop,
        parallel.stats.measured_speedup()
    );

    // Bonus: Value interop sanity.
    assert_eq!(item, Value::F64(4.0));
    println!("\nquickstart: all checks passed");
}
