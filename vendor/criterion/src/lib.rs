//! Offline stand-in for the `criterion` benchmark harness.
//!
//! This workspace builds without network access, so the real statistics
//! engine is replaced by a small adaptive wall-clock timer: each
//! `bench_function` warms up once, then doubles the iteration count until
//! the measured batch exceeds a time floor, and reports mean ns/iter. The
//! API mirrors the subset the `benches/` targets use — `Criterion`,
//! `benchmark_group`, `Bencher::iter` / `iter_batched`, [`BatchSize`],
//! [`black_box`], and the `criterion_group!` / `criterion_main!` macros —
//! so swapping the real crate back in is a manifest-only change.

use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box`, criterion's optimizer barrier.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost. The stub runs one routine
/// call per setup regardless; the variants exist for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Fresh setup for every routine invocation.
    PerIteration,
    /// A fixed number of batches.
    NumBatches(u64),
    /// A fixed number of iterations per batch.
    NumIterations(u64),
}

/// Times a closure; handed to the `|b| ...` callback of `bench_function`.
pub struct Bencher {
    measured: Option<(u64, Duration)>,
    budget: Duration,
}

impl Bencher {
    fn new(budget: Duration) -> Self {
        Bencher {
            measured: None,
            budget,
        }
    }

    /// Measures `routine` by doubling the iteration count until the batch
    /// runs for at least the sample budget.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        black_box(routine()); // warm-up, and a correctness smoke-run
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= self.budget || iters >= 1 << 24 {
                self.measured = Some((iters, elapsed));
                return;
            }
            iters = iters.saturating_mul(2);
        }
    }

    /// Measures `routine` on inputs produced by `setup`, excluding setup
    /// time from the measurement.
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        black_box(routine(setup())); // warm-up
        let mut iters: u64 = 1;
        loop {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let elapsed = start.elapsed();
            if elapsed >= self.budget || iters >= 1 << 24 {
                self.measured = Some((iters, elapsed));
                return;
            }
            iters = iters.saturating_mul(2);
        }
    }
}

/// The top-level harness handle, mirroring `criterion::Criterion`.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep full `cargo bench` runs quick; raise for steadier numbers.
        let ms = std::env::var("CRITERION_SAMPLE_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(20u64);
        Criterion {
            budget: Duration::from_millis(ms),
        }
    }
}

impl Criterion {
    /// Benchmarks a single function.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into(), self.budget, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup {
            criterion: self,
            name,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub's sampling is adaptive.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Benchmarks one function within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            &format!("{}/{}", self.name, id.into()),
            self.criterion.budget,
            f,
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, budget: Duration, mut f: F) {
    let mut b = Bencher::new(budget);
    f(&mut b);
    match b.measured {
        Some((iters, elapsed)) => {
            let per_iter = elapsed.as_nanos() as f64 / iters as f64;
            eprintln!(
                "{id:<48} {:>14} ns/iter  ({iters} iters)",
                format_ns(per_iter)
            );
        }
        None => eprintln!("{id:<48} (no measurement: Bencher::iter never called)"),
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3}e9", ns / 1e9)
    } else if ns >= 1000.0 {
        format!("{:.1}", ns)
    } else {
        format!("{:.3}", ns)
    }
}

/// Declares a function that runs each listed benchmark target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
