//! The case-driving loop behind the `proptest!` macro.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Why a single proptest case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assertion failed; the message explains what.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is discarded, not failed.
    Reject,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runs `f` on a sequence of deterministic RNG streams until the
/// configured number of cases (default 64, override with
/// `PROPTEST_CASES`) has executed, panicking on the first failure.
pub fn run<F>(name: &str, mut f: F)
where
    F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
{
    let cases: u64 = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);
    let base = fnv1a(name);
    let mut executed: u64 = 0;
    let mut rejected: u64 = 0;
    let mut case: u64 = 0;
    while executed < cases {
        let seed = base ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = StdRng::seed_from_u64(seed);
        match f(&mut rng) {
            Ok(()) => executed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected <= cases.saturating_mul(64).max(1024),
                    "proptest `{name}`: too many cases rejected by prop_assume! \
                     ({rejected} rejects for {executed} executed cases)"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest `{name}` failed at case {case} (seed {seed:#x}):\n{msg}")
            }
        }
        case += 1;
    }
}
