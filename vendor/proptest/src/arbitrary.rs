//! `any::<T>()` — full-range generation for primitive types.

use rand::rngs::StdRng;
use rand::RngCore;

use crate::strategy::Strategy;

/// Types with a canonical "anything at all" strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Generates any value of `T` (full bit patterns for integers and floats).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        // Any bit pattern: includes subnormals, infinities, and NaNs, like
        // real proptest's edge-case-heavy `any::<f64>()`.
        f64::from_bits(rng.next_u64())
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        f32::from_bits(rng.next_u64() as u32)
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut StdRng) -> Self {
        char::from_u32((rng.next_u64() % 0xD800) as u32).unwrap_or('\u{FFFD}')
    }
}
