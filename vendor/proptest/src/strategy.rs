//! The [`Strategy`] trait and its combinators.

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value-tree/shrinking machinery: a
/// strategy is just a deterministic function of the case RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns for
    /// it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}
