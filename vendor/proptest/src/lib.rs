//! Offline stand-in for the `proptest` crate.
//!
//! Provides the subset of the proptest API the workspace's property tests
//! use: the [`proptest!`] macro, [`strategy::Strategy`] with
//! `prop_map`/`prop_flat_map`, [`arbitrary::any`], range and tuple
//! strategies, [`collection::vec`] / [`collection::btree_set`],
//! [`strategy::Just`], and the `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from real proptest: cases are drawn from a deterministic
//! per-test SplitMix64 stream (seeded from the test name), there is **no
//! shrinking**, and failures report the failing case index and seed
//! instead of a minimized input. The number of cases per test defaults to
//! 64 and can be overridden with `PROPTEST_CASES`.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Namespace mirror of the real crate's `prop::` paths (`prop::collection::vec`, ...).
pub mod prop {
    pub use crate::collection;
}

/// One-stop import, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// ```ignore
/// proptest! {
///     #[test]
///     fn addition_commutes(a in 0i64..100, b in 0i64..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run(stringify!($name), |__pt_rng| {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), __pt_rng);)+
                    $body
                    ::core::result::Result::Ok(())
                });
            }
        )*
    };
}

/// Like `assert!`, but fails the current proptest case instead of
/// panicking directly (so the runner can report the case seed).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Like `assert_eq!`, for proptest cases.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
                __l, __r
            )));
        }
    }};
}

/// Like `assert_ne!`, for proptest cases.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `left != right`\n  both: `{:?}`",
                __l
            )));
        }
    }};
}

/// Discards the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
