//! Collection strategies: `vec` and `btree_set`.

use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// An inclusive size band for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl SizeRange {
    fn pick(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.lo..=self.hi)
    }
}

/// Strategy for `Vec<T>` with element strategy `S`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generates vectors whose length falls in `size` and whose elements come
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeSet<T>`.
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generates ordered sets whose size falls in `size` where the element
/// domain permits (duplicates are retried a bounded number of times).
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let target = self.size.pick(rng);
        let mut set = BTreeSet::new();
        let mut attempts = 0usize;
        while set.len() < target && attempts < 64 * target.max(1) {
            set.insert(self.element.generate(rng));
            attempts += 1;
        }
        set
    }
}
