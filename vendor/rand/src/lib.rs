//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds without network access, so instead of the real
//! `rand` this vendored crate provides the small API subset the test and
//! bench code relies on: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! and the [`Rng`] methods `gen`, `gen_range`, and `gen_bool`. The
//! generator is SplitMix64 — deterministic, seedable, and statistically
//! solid for test-data synthesis (it is *not* cryptographic, and neither
//! is this crate a drop-in for every `rand` API).
//!
//! This deliberately mirrors `sqlarray_core::rng` rather than re-exporting
//! it: the stub stays self-contained so that swapping the real `rand`
//! back in (see `[workspace.dependencies]`) deletes `vendor/rand`
//! wholesale with no workspace coupling to unwind. Keep the two in sync
//! when touching sampling behavior.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Returns the next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Returns the next uniform 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose entire stream is a function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution
    /// (`f64`/`f32`: uniform in `[0, 1)`; integers: uniform over the full
    /// range; `bool`: fair coin).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<T: RngCore> Rng for T {}

/// Types samplable from their "standard" distribution via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::sample(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = <$t as Standard>::sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// Deterministic generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard test generator: SplitMix64.
    ///
    /// Unlike the real `rand::rngs::StdRng` (ChaCha-based) this is not
    /// cryptographically secure; it is deterministic in the seed, which is
    /// all the test suites require.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen::<u64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let f = rng.gen_range(-2.5f64..7.5);
            assert!((-2.5..7.5).contains(&f));
            let i = rng.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&i));
            let u = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1_500..3_500).contains(&hits), "hits = {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
    }
}
